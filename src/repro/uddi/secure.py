"""Security for UDDI registries (§4.1).

Three mechanisms, matching the paper's three properties:

* **Access-controlled registry** (:class:`AccessControlledRegistry`) —
  integrity + confidentiality "using the standard mechanisms adopted by
  conventional DBMSs": a policy evaluator filters every inquiry and
  publish operation.  Sound in a two-party deployment or with a *trusted*
  discovery agency.

* **Authenticated registry** (:class:`AuthenticatedRegistry`) — the
  Merkle mechanism of [4] for *untrusted* third-party agencies: each
  provider signs one summary signature per entry; partial answers carry
  filler hashes so the requestor recomputes and checks the signature
  locally (:func:`verify_authenticated_answer`).

* **Encrypted registry** (:class:`EncryptedRegistry`) — confidentiality
  against an untrusted agency: providers publish entries encrypted per
  their policies plus a keyed searchable index; the agency matches blind
  tokens without learning field values ("exploiting such solution
  requires the ability of querying encrypted data").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import AuthenticationError, RegistryError
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action
from repro.core.subjects import Subject
from repro.crypto.hashing import sha256_hex
from repro.crypto.keys import KeyStore
from repro.crypto.rsa import PublicKey, PrivateKey, sign, verify
from repro.crypto.symmetric import Ciphertext
from repro.merkle.xml_merkle import (
    FillerHashes,
    build_partial_view,
    merkle_hash,
    view_hash,
)
from repro.uddi.model import BusinessEntity, BusinessService
from repro.uddi.registry import ServiceOverview, UddiRegistry
from repro.xmldb.model import Element
from repro.xmldb.parser import parse_element
from repro.xmldb.serializer import serialize_element


# ---------------------------------------------------------------------------
# 1. Access-controlled registry (two-party / trusted third party)
# ---------------------------------------------------------------------------

class AccessControlledRegistry:
    """A UDDI registry guarded by a :class:`PolicyEvaluator`.

    Resource paths: ``uddi/<registry>/<business_key>`` for entity-level
    operations and ``uddi/<registry>/<business_key>/<service_key>`` for
    service-level ones, so policies can protect whole entries or single
    services.
    """

    def __init__(self, registry: UddiRegistry,
                 evaluator: PolicyEvaluator) -> None:
        self.registry = registry
        self.evaluator = evaluator

    def _resource(self, business_key: str, service_key: str = "") -> str:
        path = f"uddi/{self.registry.name}/{business_key}"
        if service_key:
            path = f"{path}/{service_key}"
        return path

    def save_business(self, subject: Subject,
                      entity: BusinessEntity) -> BusinessEntity:
        self.evaluator.enforce(subject, Action.WRITE,
                               self._resource(entity.business_key))
        return self.registry.save_business(entity, subject.identity.name)

    def get_business_detail(self, subject: Subject,
                            business_key: str) -> BusinessEntity:
        self.evaluator.enforce(subject, Action.READ,
                               self._resource(business_key))
        return self.registry.get_business_detail(business_key)

    def get_service_detail(self, subject: Subject,
                           service_key: str) -> BusinessService:
        service = self.registry.get_service_detail(service_key)
        business_key = self._business_of_service(service_key)
        self.evaluator.enforce(subject, Action.READ,
                               self._resource(business_key, service_key))
        return service

    def find_service(self, subject: Subject, name_pattern: str = "*",
                     category: str | None = None) -> list[ServiceOverview]:
        """Browse inquiry filtered to rows the subject may read."""
        rows = self.registry.find_service(name_pattern, category)
        return [row for row in rows
                if self.evaluator.check(
                    subject, Action.READ,
                    self._resource(row.business_key, row.service_key))]

    def _business_of_service(self, service_key: str) -> str:
        for entity in self.registry.businesses():
            for service in entity.services:
                if service.service_key == service_key:
                    return entity.business_key
        raise RegistryError(f"unknown service {service_key!r}")


# ---------------------------------------------------------------------------
# 1b. UDDI v3 element signing (two-party adequate, third-party not)
# ---------------------------------------------------------------------------
# "The latest UDDI specifications allow one to optionally sign some of
# the elements in a registry, according to the W3C XML Signature syntax.
# This technique can be successfully employed in a two-party
# architecture.  However, it does not fit well in the third-party model"
# (§4.1) — a per-element signature authenticates a whole element, but a
# requestor who receives a *combination* of portions from different
# structures cannot link them back to one signed entry.  We provide it
# for fidelity; the Merkle mechanism below is the third-party answer.

def sign_entry_elements(entity: BusinessEntity, provider: str,
                        private_key: PrivateKey):
    """Sign each businessService element of an entry separately
    (UDDI v3 style).  Returns a SignatureManifest."""
    from repro.xmlsec.signature import sign_portions

    element = entity.to_element()
    services = element.find("businessServices")
    portions = services.element_children if services is not None else []
    return sign_portions(list(portions), provider, private_key)


def verify_entry_element(manifest, service_element,
                         provider_key: PublicKey) -> bool:
    """Verify one businessService element against the manifest."""
    from repro.xmlsec.signature import verify_portion

    return verify_portion(manifest, service_element, provider_key)


# ---------------------------------------------------------------------------
# 2. Merkle-authenticated registry (untrusted third party, [4])
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EntrySignature:
    """A provider's summary signature over one registry entry."""

    provider: str
    business_key: str
    root_hash: str
    signature: int

    def verify(self, provider_key: PublicKey) -> bool:
        return verify(provider_key,
                      f"{self.provider}:{self.business_key}:{self.root_hash}",
                      self.signature)


def sign_entry(entity: BusinessEntity, provider: str,
               private_key: PrivateKey) -> EntrySignature:
    root_hash = merkle_hash(entity.to_element())
    return EntrySignature(
        provider, entity.business_key, root_hash,
        sign(private_key, f"{provider}:{entity.business_key}:{root_hash}"))


@dataclass(frozen=True)
class AuthenticatedAnswer:
    """A partial query answer plus everything needed to verify it."""

    view: Element
    fillers: FillerHashes
    entry_signature: EntrySignature

    def proof_hash_count(self) -> int:
        return len(self.fillers)


class AuthenticatedRegistry:
    """Third-party registry returning Merkle-verifiable partial answers.

    The agency holds full entries and signatures but is *not* trusted:
    every answer can be checked locally by the requestor.  A
    ``tamper_with_answers`` flag simulates a compromised agency for the
    benchmarks.
    """

    def __init__(self, registry: UddiRegistry) -> None:
        self.registry = registry
        self._signatures: dict[str, EntrySignature] = {}
        self.tamper_with_answers = False

    def publish(self, entity: BusinessEntity,
                entry_signature: EntrySignature, provider: str
                ) -> BusinessEntity:
        if entry_signature.business_key != entity.business_key:
            raise RegistryError("signature is for a different entry")
        saved = self.registry.save_business(entity, provider)
        self._signatures[entity.business_key] = entry_signature
        return saved

    def entry_signature(self, business_key: str) -> EntrySignature:
        try:
            return self._signatures[business_key]
        except KeyError:
            raise RegistryError(
                f"no signature for business {business_key!r}") from None

    def get_business_detail(self, business_key: str) -> AuthenticatedAnswer:
        """Drill-down: the whole entry (trivial fillers)."""
        entity = self.registry.get_business_detail(business_key)
        view = entity.to_element().deep_copy()
        if self.tamper_with_answers:
            self._tamper(view)
        return AuthenticatedAnswer(view, FillerHashes(),
                                   self._signatures[business_key])

    def get_service_detail(self, service_key: str) -> AuthenticatedAnswer:
        """Drill-down on one service: a pruned view of its entry."""
        for entity in self.registry.businesses():
            for service in entity.services:
                if service.service_key != service_key:
                    continue
                element = entity.to_element()

                def keep(node: Element) -> bool:
                    return (node.tag == "businessService"
                            and node.attributes.get("serviceKey")
                            == service_key)

                view, fillers = build_partial_view(element, keep)
                if self.tamper_with_answers:
                    self._tamper(view)
                return AuthenticatedAnswer(
                    view, fillers,
                    self._signatures[entity.business_key])
        raise RegistryError(f"unknown service {service_key!r}")

    @staticmethod
    def _tamper(view: Element) -> None:
        for node in view.iter():
            if node.tag == "accessPoint" and node.text:
                node.set_text("http://attacker.example/intercept")
                return
        for node in view.iter():
            if node.text:
                node.set_text(node.text + "-forged")
                return


def verify_authenticated_answer(answer: AuthenticatedAnswer,
                                provider_key: PublicKey) -> None:
    """Requestor-side check: raise AuthenticationError if the answer does
    not recompute to the provider-signed summary signature."""
    if not answer.entry_signature.verify(provider_key):
        raise AuthenticationError(
            "entry signature does not verify under the provider key")
    recomputed = view_hash(answer.view, answer.fillers)
    if recomputed != answer.entry_signature.root_hash:
        raise AuthenticationError(
            "answer does not recompute to the signed summary (the "
            "discovery agency altered the content)")


# ---------------------------------------------------------------------------
# 3. Encrypted registry (untrusted third party, confidentiality)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EncryptedEntry:
    """An entry as the agency stores it: opaque blob + blind index."""

    business_key: str
    blob: Ciphertext
    index_tokens: frozenset[str]


def _index_token(index_key: str, field: str, value: str) -> str:
    return sha256_hex(f"uddi-index:{index_key}:{field}={value.lower()}")


class EncryptedRegistry:
    """Confidentiality against the agency via client-side encryption.

    The provider encrypts each entry under its own key (distributed
    out-of-band to entitled requestors) and publishes deterministic
    keyed tokens for searchable fields.  The agency can match tokens but
    cannot read names, categories or access points.
    """

    INDEXED_FIELDS = ("service_name", "category", "business_name")

    def __init__(self) -> None:
        self._entries: dict[str, EncryptedEntry] = {}

    # -- provider side ------------------------------------------------------

    @staticmethod
    def encrypt_entry(entity: BusinessEntity, key_store: KeyStore,
                      key_id: str, index_key: str) -> EncryptedEntry:
        payload = serialize_element(entity.to_element())
        tokens: set[str] = set()
        tokens.add(_index_token(index_key, "business_name", entity.name))
        for service in entity.services:
            tokens.add(_index_token(index_key, "service_name",
                                    service.name))
            if service.category:
                tokens.add(_index_token(index_key, "category",
                                        service.category))
        return EncryptedEntry(entity.business_key,
                              key_store.encrypt(key_id, payload),
                              frozenset(tokens))

    def publish(self, entry: EncryptedEntry) -> None:
        self._entries[entry.business_key] = entry

    # -- agency side (blind) ----------------------------------------------------

    def find_by_token(self, token: str) -> list[EncryptedEntry]:
        return [e for key, e in sorted(self._entries.items())
                if token in e.index_tokens]

    def all_entries(self) -> list[EncryptedEntry]:
        return [self._entries[k] for k in sorted(self._entries)]

    # -- requestor side -----------------------------------------------------------

    @staticmethod
    def search_token(index_key: str, field: str, value: str) -> str:
        if field not in EncryptedRegistry.INDEXED_FIELDS:
            raise RegistryError(f"field {field!r} is not indexed")
        return _index_token(index_key, field, value)

    @staticmethod
    def decrypt_entry(entry: EncryptedEntry,
                      key_store: KeyStore) -> BusinessEntity:
        payload = key_store.decrypt(entry.blob).decode("utf-8")
        element = parse_element(payload)
        return _entity_from_element(element)


def _entity_from_element(element: Element) -> BusinessEntity:
    """Rebuild a BusinessEntity from its canonical XML form."""
    from repro.uddi.model import BindingTemplate, BusinessService

    def text_of(parent: Element, tag: str) -> str:
        child = parent.find(tag)
        return child.text if child is not None else ""

    services: list[BusinessService] = []
    services_node = element.find("businessServices")
    for service_node in (services_node.element_children
                         if services_node is not None else []):
        bindings: list[BindingTemplate] = []
        bindings_node = service_node.find("bindingTemplates")
        for binding_node in (bindings_node.element_children
                             if bindings_node is not None else []):
            refs_node = binding_node.find("tModelInstanceDetails")
            tmodel_keys = tuple(
                ref.attributes["tModelKey"]
                for ref in (refs_node.element_children
                            if refs_node is not None else []))
            bindings.append(BindingTemplate(
                binding_node.attributes["bindingKey"],
                text_of(binding_node, "accessPoint"),
                text_of(binding_node, "description"),
                tmodel_keys))
        services.append(BusinessService(
            service_node.attributes["serviceKey"],
            text_of(service_node, "name"),
            text_of(service_node, "description"),
            text_of(service_node, "category"),
            tuple(bindings)))
    return BusinessEntity(
        element.attributes["businessKey"],
        text_of(element, "name"),
        text_of(element, "description"),
        text_of(element, "contact"),
        tuple(services))
