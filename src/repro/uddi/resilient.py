"""Federated UDDI under partial failure (§2.2, §4.1 + ``repro.faults``).

UDDI registries federate across operator sites, so a client talks to
*replicas* that can crash, lose acknowledgements, apply a write twice,
or serve reads from a lagging snapshot.  This module models exactly
that and builds the resilient client path on top:

* :class:`FaultyRegistry` — one replica: a :class:`UddiRegistry` behind
  a fault gate.  Crash windows, lost requests, lost *acks* (the write
  applies, the confirmation doesn't — the case idempotency keys exist
  for), duplicate application, deferred (reordered) writes and
  stale-snapshot reads, all scheduled by the replica's fault site
  ``registry:<name>``.  Reads come back with the replica's write
  version so clients can detect staleness (read-your-writes watermark).
* :class:`FederatedRegistry` — fans writes out to every replica and
  reads from the first replica that answers.
* :class:`ResilientUddiClient` — retry-with-backoff around both, with
  per-write idempotency keys and the watermark check.  Under any
  bounded fault plan the client either converges every replica to the
  fault-free registry state (equal :meth:`UddiRegistry.state_digest`)
  or raises a typed :class:`TransportError` subclass.
"""

from __future__ import annotations

import copy
from typing import Callable, TypeVar

from repro.core.errors import (
    CorruptMessage,
    MessageDropped,
    RegistryError,
    ReplicaUnavailable,
    StaleRead,
    TransportError,
)
from repro.faults.clock import FaultClock
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind
from repro.faults.resilience import (
    RetryPolicy,
    RetryTelemetry,
    idempotency_key,
    retry_with_backoff,
)
from repro.uddi.model import BusinessEntity, TModel
from repro.uddi.registry import UddiRegistry

T = TypeVar("T")


class FaultyRegistry:
    """One registry replica behind a fault gate."""

    def __init__(self, registry: UddiRegistry,
                 faults: FaultInjector | None = None) -> None:
        self.registry = registry
        self.faults = faults
        self.site = f"registry:{registry.name}"
        #: Monotonic write counter — the client's staleness watermark.
        self.write_version = 0
        self._snapshot: UddiRegistry | None = None
        self._snapshot_version = 0
        self._deferred_writes: list[Callable[[], object]] = []

    # -- fault gate --------------------------------------------------------

    def _gate(self, is_write: bool) -> dict[str, bool]:
        """Consult the injector; raise for faults that kill the call.

        Returns flags for the faults the caller must apply itself
        (stale reads, duplicate/deferred/ack-lost writes).
        """
        flags = {"stale": False, "duplicate": False, "defer": False,
                 "ack_lost": False}
        if self.faults is None:
            self._flush_deferred()
            return flags
        events = self.faults.step(self.site)
        for event in events:
            if event.kind is FaultKind.CRASH:
                raise ReplicaUnavailable(
                    f"replica {self.registry.name!r} is down")
            if event.kind is FaultKind.CORRUPT:
                # In-flight bit rot; the frame checksum catches it, so
                # the caller sees a detected, retryable error — never
                # garbled registry data (fail closed).
                raise CorruptMessage(
                    f"response from {self.registry.name!r} failed its "
                    f"frame checksum")
            if event.kind is FaultKind.DROP:
                if is_write:
                    flags["ack_lost"] = True  # applies, ack lost below
                else:
                    raise MessageDropped(
                        f"inquiry to {self.registry.name!r} lost")
            if event.kind is FaultKind.REORDER:
                if is_write:
                    flags["defer"] = True
                else:
                    raise MessageDropped(
                        f"reply from {self.registry.name!r} overtaken")
            if event.kind is FaultKind.STALE_READ and not is_write:
                flags["stale"] = True
            if event.kind is FaultKind.DUPLICATE and is_write:
                flags["duplicate"] = True
        self._flush_deferred()
        return flags

    def _flush_deferred(self) -> None:
        pending, self._deferred_writes = self._deferred_writes, []
        for write in pending:
            write()

    # -- reads -------------------------------------------------------------

    def inquiry(self, method: str, *args) -> tuple[object, int]:
        """Run a ``get_xxx``/``find_xxx`` inquiry.

        Returns ``(value, write_version)``; a stale read serves both
        from the lagging snapshot, so the version honestly reveals the
        lag to watermark-checking clients.
        """
        flags = self._gate(is_write=False)
        if flags["stale"] and self._snapshot is not None:
            try:
                value = getattr(self._snapshot, method)(*args)
            except RegistryError as exc:
                # The snapshot predates a write the live registry has;
                # a "not found" from it is a stale answer, not a fact.
                raise StaleRead(
                    f"{method} served from snapshot at version "
                    f"{self._snapshot_version} (replica is at "
                    f"{self.write_version}): {exc}") from exc
            return value, self._snapshot_version
        return getattr(self.registry, method)(*args), self.write_version

    # -- writes ------------------------------------------------------------

    def publish(self, method: str, *args, key: str | None = None) -> object:
        """Run a publisher-API write with fault semantics applied."""
        flags = self._gate(is_write=True)

        def apply() -> object:
            # A replayed retry (key already in the ledger) changes no
            # state, so it must not advance the version either —
            # replicas that converged to the same writes must agree on
            # their version, or the client watermark would flag honest
            # reads from the replica whose counter ran behind.
            replay = key is not None and self.registry.has_applied(key)
            if not replay:
                self._snapshot = copy.deepcopy(self.registry)
                self._snapshot_version = self.write_version
            result = getattr(self.registry, method)(
                *args, idempotency_key=key)
            if not replay:
                self.write_version += 1
            if flags["duplicate"]:
                # At-least-once application: without the idempotency
                # key this would double-apply (and double-count).
                getattr(self.registry, method)(*args, idempotency_key=key)
            return result

        if flags["defer"]:
            self._deferred_writes.append(apply)
            raise MessageDropped(
                f"write to {self.registry.name!r} overtaken in transit")
        result = apply()
        if flags["ack_lost"]:
            raise MessageDropped(
                f"acknowledgement from {self.registry.name!r} lost "
                f"(the write DID apply)")
        return result


class FederatedRegistry:
    """A federation of replicas: write-all, read-first-available."""

    def __init__(self, replicas: list[FaultyRegistry]) -> None:
        if not replicas:
            raise RegistryError("a federation needs at least one replica")
        self.replicas = replicas

    def publish(self, method: str, *args, key: str | None = None) -> object:
        """Apply the write on every replica; any failure is reported
        after the remaining replicas were still attempted, so a retry
        (same idempotency key) completes the stragglers without
        double-applying on the ones that succeeded."""
        result: object = None
        first_error: TransportError | None = None
        for replica in self.replicas:
            try:
                result = replica.publish(method, *args, key=key)
            except TransportError as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return result

    def inquiry(self, method: str, *args) -> tuple[object, int]:
        """Read from the first replica that answers."""
        last_error: TransportError | None = None
        for replica in self.replicas:
            try:
                # Staleness is the *caller's* contract here: the
                # federation returns (result, write_version) and
                # ResilientUddiClient._read checks that watermark
                # against its read-your-writes floor before accepting.
                return replica.inquiry(method, *args)  # lint: allow=LINT-REPLICAREAD
            except TransportError as exc:
                last_error = exc
        assert last_error is not None
        raise last_error


class ResilientUddiClient:
    """Retrying client over a federation; the wired UDDI path."""

    def __init__(self, federation: FederatedRegistry,
                 policy: RetryPolicy | None = None,
                 clock: FaultClock | None = None) -> None:
        self.federation = federation
        self.policy = policy if policy is not None else RetryPolicy()
        if clock is not None:
            self.clock = clock
        else:
            injectors = [r.faults for r in federation.replicas
                         if r.faults is not None]
            self.clock = injectors[0].clock if injectors else FaultClock()
        self.telemetry = RetryTelemetry()
        #: Accumulated across every call (``telemetry`` resets per call).
        self.total_attempts = 0
        self.total_backoff_ticks = 0
        self._watermark = 0

    # -- plumbing ----------------------------------------------------------

    def _retry(self, operation: Callable[[], T], key: str) -> T:
        self.telemetry = RetryTelemetry()
        try:
            return retry_with_backoff(operation, self.policy, self.clock,
                                      key=key, telemetry=self.telemetry)
        finally:
            self.total_attempts += self.telemetry.attempts
            self.total_backoff_ticks += self.telemetry.backoff_ticks

    def _read(self, method: str, *args) -> object:
        def attempt() -> object:
            value, version = self.federation.inquiry(method, *args)
            if version < self._watermark:
                raise StaleRead(
                    f"{method} answered at version {version}, but this "
                    f"client already wrote version {self._watermark}")
            return value

        return self._retry(attempt, key=f"read:{method}:{args!r}")

    def _write(self, method: str, *args, key_parts: tuple[str, ...]) -> object:
        key = idempotency_key(method, *key_parts)

        def attempt() -> object:
            result = self.federation.publish(method, *args, key=key)
            self._watermark = max(
                r.write_version for r in self.federation.replicas)
            return result

        return self._retry(attempt, key=f"write:{key}")

    # -- publisher API ------------------------------------------------------

    def save_business(self, entity: BusinessEntity,
                      publisher: str) -> BusinessEntity:
        return self._write(
            "save_business", entity, publisher,
            key_parts=(publisher, entity.business_key, repr(entity)))

    def save_tmodel(self, tmodel: TModel, publisher: str) -> TModel:
        return self._write(
            "save_tmodel", tmodel, publisher,
            key_parts=(publisher, tmodel.tmodel_key, repr(tmodel)))

    # -- inquiry API --------------------------------------------------------

    def get_business_detail(self, business_key: str) -> BusinessEntity:
        return self._read("get_business_detail", business_key)

    def get_service_detail(self, service_key: str):
        return self._read("get_service_detail", service_key)

    def find_business(self, name_pattern: str = "*"):
        return self._read("find_business", name_pattern)

    def find_service(self, name_pattern: str = "*",
                     category: str | None = None):
        return self._read("find_service", name_pattern, category)
