"""The UDDI registry: storage plus the two inquiry patterns of §2.2.

"Searching facilities provided by UDDI registries are of two different
types ... drill-down pattern inquiries (i.e., get_xxx API functions),
which return a whole core data structure, and browse pattern inquiries
(i.e., find_xxx API functions), which return overview information about
the registered data."

:class:`UddiRegistry` implements both patterns over the five core data
structures, plus the publisher API (save/delete) with ownership tracking —
the hook the secure registry of :mod:`repro.uddi.secure` builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterator

from repro.core.errors import RegistryError
from repro.crypto.hashing import combine, sha256_hex
from repro.faults.resilience import IdempotencyLedger
from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    PublisherAssertion,
    TModel,
)


@dataclass(frozen=True)
class ServiceOverview:
    """Browse-pattern result row: overview info, not the full structure."""

    business_key: str
    business_name: str
    service_key: str
    service_name: str
    category: str


@dataclass(frozen=True)
class BusinessOverview:
    """Browse-pattern result row for find_business."""

    business_key: str
    name: str
    description: str
    service_count: int


def business_part(key: str, owner: str, entity: BusinessEntity) -> str:
    """Canonical digest part for one business (shared with the sharded
    registry so shard digests merge byte-identically)."""
    return f"biz:{key}:{owner}:{sha256_hex(repr(entity))}"


def tmodel_part(key: str, tmodel: TModel) -> str:
    """Canonical digest part for one tModel."""
    return f"tmodel:{key}:{sha256_hex(repr(tmodel))}"


def assertion_part(assertion: PublisherAssertion) -> str:
    """Canonical digest part for one publisher assertion."""
    return f"assert:{sha256_hex(repr(assertion))}"


class UddiRegistry:
    """An in-memory UDDI registry."""

    def __init__(self, name: str = "registry") -> None:
        self.name = name
        self._businesses: dict[str, BusinessEntity] = {}
        self._owners: dict[str, str] = {}
        self._tmodels: dict[str, TModel] = {}
        self._assertions: list[PublisherAssertion] = []
        self._write_ledger = IdempotencyLedger()
        self.inquiry_count = 0
        self.publish_count = 0

    # -- publisher API ------------------------------------------------------

    def save_business(self, entity: BusinessEntity, publisher: str,
                      idempotency_key: str | None = None) -> BusinessEntity:
        """Insert or update a business entity, enforcing ownership.

        With an *idempotency_key*, a retried save whose first attempt
        already applied (the acknowledgement was what got lost) replays
        the recorded outcome instead of applying — and counting — twice.
        """
        def apply() -> BusinessEntity:
            existing_owner = self._owners.get(entity.business_key)
            if existing_owner is not None and existing_owner != publisher:
                raise RegistryError(
                    f"business {entity.business_key!r} belongs to "
                    f"{existing_owner!r}, not {publisher!r}")
            self._businesses[entity.business_key] = entity
            self._owners[entity.business_key] = publisher
            self.publish_count += 1
            return entity

        if idempotency_key is None:
            return apply()
        return self._write_ledger.apply(idempotency_key, apply)

    def delete_business(self, business_key: str, publisher: str) -> None:
        owner = self._owners.get(business_key)
        if owner is None:
            raise RegistryError(f"unknown business {business_key!r}")
        if owner != publisher:
            raise RegistryError(
                f"business {business_key!r} belongs to {owner!r}")
        del self._businesses[business_key]
        del self._owners[business_key]
        self.purge_assertions(business_key)

    def purge_assertions(self, business_key: str) -> int:
        """Drop every assertion naming *business_key* on either side.

        Public (rather than folded into delete_business) because in a
        sharded registry the assertions referencing a deleted business
        may live on *other* shards than the business itself.
        """
        kept = [a for a in self._assertions
                if business_key not in (a.from_key, a.to_key)]
        removed = len(self._assertions) - len(kept)
        self._assertions = kept
        return removed

    def save_tmodel(self, tmodel: TModel, publisher: str,
                    idempotency_key: str | None = None) -> TModel:
        def apply() -> TModel:
            self._tmodels[tmodel.tmodel_key] = tmodel
            self.publish_count += 1
            return tmodel

        if idempotency_key is None:
            return apply()
        return self._write_ledger.apply(idempotency_key, apply)

    def add_assertion(self, assertion: PublisherAssertion,
                      publisher: str,
                      idempotency_key: str | None = None) -> None:
        """Record one side of a relationship assertion."""
        def apply() -> None:
            owner_side = self._owners.get(assertion.from_key)
            if owner_side != publisher:
                raise RegistryError(
                    "assertions must be filed by the owner of their fromKey")
            self._assertions.append(assertion)
            self.publish_count += 1

        if idempotency_key is None:
            apply()
        else:
            self._write_ledger.apply(idempotency_key, apply)

    def has_applied(self, idempotency_key: str) -> bool:
        """True if a write under *idempotency_key* already applied —
        a retry carrying this key will replay, not re-apply."""
        return idempotency_key in self._write_ledger

    def owner_of(self, business_key: str) -> str:
        try:
            return self._owners[business_key]
        except KeyError:
            raise RegistryError(f"unknown business {business_key!r}") from None

    # -- drill-down inquiries (get_xxx) -------------------------------------

    def get_business_detail(self, business_key: str) -> BusinessEntity:
        self.inquiry_count += 1
        try:
            return self._businesses[business_key]
        except KeyError:
            raise RegistryError(f"unknown business {business_key!r}") from None

    def get_service_detail(self, service_key: str) -> BusinessService:
        self.inquiry_count += 1
        for entity in self._businesses.values():
            for service in entity.services:
                if service.service_key == service_key:
                    return service
        raise RegistryError(f"unknown service {service_key!r}")

    def get_binding_detail(self, binding_key: str) -> BindingTemplate:
        self.inquiry_count += 1
        for entity in self._businesses.values():
            for service in entity.services:
                for binding in service.bindings:
                    if binding.binding_key == binding_key:
                        return binding
        raise RegistryError(f"unknown binding {binding_key!r}")

    def get_tmodel_detail(self, tmodel_key: str) -> TModel:
        self.inquiry_count += 1
        try:
            return self._tmodels[tmodel_key]
        except KeyError:
            raise RegistryError(f"unknown tModel {tmodel_key!r}") from None

    # -- browse inquiries (find_xxx) ------------------------------------------

    def find_business(self, name_pattern: str = "*") -> list[BusinessOverview]:
        """Case-insensitive glob match over business names."""
        self.inquiry_count += 1
        rows = [
            BusinessOverview(e.business_key, e.name, e.description,
                             len(e.services))
            for e in self._businesses.values()
            if fnmatchcase(e.name.lower(), name_pattern.lower())]
        return sorted(rows, key=lambda r: r.business_key)

    def find_service(self, name_pattern: str = "*",
                     category: str | None = None) -> list[ServiceOverview]:
        self.inquiry_count += 1
        rows: list[ServiceOverview] = []
        for entity in self._businesses.values():
            for service in entity.services:
                if not fnmatchcase(service.name.lower(),
                                   name_pattern.lower()):
                    continue
                if category is not None and service.category != category:
                    continue
                rows.append(ServiceOverview(
                    entity.business_key, entity.name,
                    service.service_key, service.name, service.category))
        return sorted(rows, key=lambda r: r.service_key)

    def find_tmodel(self, name_pattern: str = "*") -> list[TModel]:
        self.inquiry_count += 1
        return sorted(
            (t for t in self._tmodels.values()
             if fnmatchcase(t.name.lower(), name_pattern.lower())),
            key=lambda t: t.tmodel_key)

    def find_related_businesses(self, business_key: str) -> list[str]:
        """Businesses related by *mutually asserted* relationships."""
        self.inquiry_count += 1
        forward = {(a.from_key, a.to_key, a.relationship)
                   for a in self._assertions}
        related: set[str] = set()
        for from_key, to_key, relationship in forward:
            if (to_key, from_key, relationship) not in forward:
                continue  # one-sided assertions stay invisible
            if from_key == business_key:
                related.add(to_key)
            elif to_key == business_key:
                related.add(from_key)
        return sorted(related)

    # -- state fingerprinting ---------------------------------------------------

    def state_digest(self) -> str:
        """One digest over the registry's entire observable state.

        The convergence oracle of the chaos suite: a retried run under
        faults and the fault-free run must end with equal digests.
        Deliberately excludes the operation counters — *how many tries*
        it took is allowed to differ; *what the registry says* is not.
        """
        parts = [part for _, part in self.state_parts()]
        return combine(*parts) if parts else sha256_hex("empty-registry")

    def state_parts(self) -> list[tuple[tuple, str]]:
        """The digest parts with their canonical sort keys.

        Each entry is ``(sort_key, part)``; sort keys order businesses
        before tModels before assertions, then by key (or assertion
        repr).  A sharded registry concatenates every shard's parts,
        sorts by the same keys and combines — producing a digest
        byte-identical to one monolithic registry holding the union.
        """
        parts: list[tuple[tuple, str]] = []
        for key in sorted(self._businesses):
            parts.append(((0, key), business_part(
                key, self._owners.get(key, ""), self._businesses[key])))
        for key in sorted(self._tmodels):
            parts.append(((1, key), tmodel_part(key, self._tmodels[key])))
        for assertion in sorted(self._assertions, key=repr):
            parts.append(((2, repr(assertion)),
                          assertion_part(assertion)))
        return parts

    # -- enumeration -----------------------------------------------------------

    def business_keys(self) -> list[str]:
        return sorted(self._businesses)

    def businesses(self) -> Iterator[BusinessEntity]:
        for key in self.business_keys():
            yield self._businesses[key]

    def tmodels(self) -> list[TModel]:
        """Every stored tModel, sorted by key (a copy)."""
        return [self._tmodels[key] for key in sorted(self._tmodels)]

    def assertions(self) -> list[PublisherAssertion]:
        """Every filed assertion in filing order (a copy)."""
        return list(self._assertions)

    def __len__(self) -> int:
        return len(self._businesses)
