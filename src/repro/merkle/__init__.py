"""Merkle hash trees: the authentication backbone of [3] and [4].

:mod:`repro.merkle.tree` — binary trees over flat leaf sequences (UDDI
entries); :mod:`repro.merkle.xml_merkle` — structure-preserving hashing of
XML documents with filler hashes for pruned views.
"""

from repro.merkle.tree import (
    MerkleProof,
    MerkleTree,
    ProofStep,
    hash_children,
    hash_leaf,
    verify_subset,
)
from repro.merkle.xml_merkle import (
    PRUNED_MARKER_TAG,
    PRUNED_PATH_ATTR,
    FillerHashes,
    build_partial_view,
    content_hash,
    document_hash,
    is_pruned_marker,
    make_pruned_marker,
    merkle_hash,
    original_paths_of_view,
    verify_view,
    view_hash,
)

__all__ = [
    "FillerHashes", "MerkleProof", "MerkleTree", "PRUNED_MARKER_TAG",
    "PRUNED_PATH_ATTR", "ProofStep", "build_partial_view",
    "content_hash", "document_hash",
    "hash_children", "hash_leaf", "is_pruned_marker",
    "make_pruned_marker", "merkle_hash", "original_paths_of_view",
    "verify_subset", "verify_view", "view_hash",
]
