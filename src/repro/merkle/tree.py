"""Generic Merkle hash trees over ordered leaf sequences.

The authentication mechanism of [4] rests on Merkle trees: the owner signs
a single *summary signature* (the root hash); a third party can later
prove that any subset of leaves belongs to the signed whole by supplying
the missing sibling hashes.  This module provides the binary-tree variant
used for UDDI entries and flat leaf lists; :mod:`repro.merkle.xml_merkle`
provides the structure-preserving variant for XML documents.

Leaves are hashed with a domain separator distinct from internal nodes,
preventing the classical second-preimage trick where an internal node is
presented as a leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.errors import ConfigurationError, IntegrityError
from repro.crypto.hashing import combine, sha256_hex

_LEAF_PREFIX = "leaf:"
_NODE_PREFIX = "node:"


def hash_leaf(data: bytes | str) -> str:
    if isinstance(data, bytes):
        data = data.decode("utf-8", errors="replace")
    return sha256_hex(_LEAF_PREFIX + data)


def hash_children(left: str, right: str) -> str:
    return combine(_NODE_PREFIX, left, right)


@dataclass(frozen=True)
class ProofStep:
    """One sibling hash on the leaf-to-root path."""

    sibling: str
    sibling_on_left: bool


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for one leaf at a given index."""

    leaf_index: int
    steps: tuple[ProofStep, ...]

    def compute_root(self, leaf_data: bytes | str) -> str:
        digest = hash_leaf(leaf_data)
        for step in self.steps:
            if step.sibling_on_left:
                digest = hash_children(step.sibling, digest)
            else:
                digest = hash_children(digest, step.sibling)
        return digest

    def verify(self, leaf_data: bytes | str, root: str) -> bool:
        return self.compute_root(leaf_data) == root

    def __len__(self) -> int:
        return len(self.steps)


class MerkleTree:
    """Binary Merkle tree over an ordered sequence of leaf payloads.

    With an odd number of nodes at a level the last node is promoted
    (Bitcoin-style duplication is avoided because it admits ambiguity).
    """

    def __init__(self, leaves: Sequence[bytes | str]) -> None:
        if not leaves:
            raise ConfigurationError("a Merkle tree needs at least one leaf")
        self._leaf_data = [l if isinstance(l, str) else
                           l.decode("utf-8", errors="replace")
                           for l in leaves]
        self._levels: list[list[str]] = [
            [hash_leaf(l) for l in self._leaf_data]]
        while len(self._levels[-1]) > 1:
            current = self._levels[-1]
            next_level: list[str] = []
            for i in range(0, len(current) - 1, 2):
                next_level.append(hash_children(current[i], current[i + 1]))
            if len(current) % 2 == 1:
                next_level.append(current[-1])
            self._levels.append(next_level)

    @property
    def root(self) -> str:
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._levels[0])

    def leaf_hash(self, index: int) -> str:
        return self._levels[0][index]

    def proof(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at *index*."""
        if not 0 <= index < self.leaf_count:
            raise ConfigurationError(
                f"leaf index {index} out of range 0..{self.leaf_count - 1}")
        steps: list[ProofStep] = []
        position = index
        for level in self._levels[:-1]:
            size = len(level)
            if position == size - 1 and size % 2 == 1:
                # Promoted node: carried to the next level unchanged, where
                # it sits after the size//2 pair hashes.
                position = size // 2
                continue
            if position % 2 == 0:
                steps.append(ProofStep(level[position + 1],
                                       sibling_on_left=False))
            else:
                steps.append(ProofStep(level[position - 1],
                                       sibling_on_left=True))
            position //= 2
        return MerkleProof(index, tuple(steps))

    def update_leaf(self, index: int, data: bytes | str) -> int:
        """Replace the leaf at *index*, rehashing only its root path.

        Mirrors the pairing rules of :meth:`proof` — promoted odd nodes
        are copied upward unchanged — so the resulting levels are
        identical to rebuilding the tree from scratch (asserted by the
        equivalence tests).  Returns the number of hash computations
        performed: O(log n), against the 2n-1 of a full rebuild — the
        shape benchmark A5 measures.
        """
        if not 0 <= index < self.leaf_count:
            raise ConfigurationError(
                f"leaf index {index} out of range 0..{self.leaf_count - 1}")
        if isinstance(data, bytes):
            data = data.decode("utf-8", errors="replace")
        self._leaf_data[index] = data
        self._levels[0][index] = hash_leaf(data)
        operations = 1
        position = index
        for level_index, level in enumerate(self._levels[:-1]):
            size = len(level)
            above = self._levels[level_index + 1]
            if position == size - 1 and size % 2 == 1:
                # Promoted node: carried to the next level unchanged.
                position = size // 2
                above[position] = level[size - 1]
                continue
            pair = position - (position % 2)
            position //= 2
            above[position] = hash_children(level[pair], level[pair + 1])
            operations += 1
        return operations

    def verify_leaf(self, index: int, data: bytes | str) -> bool:
        return self.proof(index).verify(data, self.root)

    # -- aligned node access (anti-entropy diffing) ----------------------
    #
    # Two trees built over the same number of leaves have *identical*
    # shapes (the promotion rule is a function of level width alone), so
    # a replica can walk both trees top-down in lockstep and descend
    # only into subtrees whose node hashes differ — the O(log n)-per-
    # discrepancy divergence search of repro.replica.antientropy.

    @property
    def level_count(self) -> int:
        """Number of levels, leaves (level 0) through root."""
        return len(self._levels)

    def level_width(self, level: int) -> int:
        return len(self._levels[level])

    def node_hash(self, level: int, index: int) -> str:
        """Hash of node *index* at *level* (0 = leaves)."""
        if not 0 <= level < len(self._levels):
            raise ConfigurationError(
                f"level {level} out of range 0..{len(self._levels) - 1}")
        nodes = self._levels[level]
        if not 0 <= index < len(nodes):
            raise ConfigurationError(
                f"node index {index} out of range 0..{len(nodes) - 1} "
                f"at level {level}")
        return nodes[index]

    def children_of(self, level: int, index: int) -> tuple[int, ...]:
        """Indices at ``level - 1`` feeding node ``(level, index)``.

        A promoted odd node has exactly one child (itself, one level
        down); every other node has the usual pair.  Because the shape
        depends only on the leaf count, these indices line up between
        any two trees with equal ``leaf_count`` — the property the
        lockstep diff relies on.
        """
        if not 1 <= level < len(self._levels):
            raise ConfigurationError(
                f"level {level} has no children "
                f"(valid: 1..{len(self._levels) - 1})")
        if not 0 <= index < len(self._levels[level]):
            raise ConfigurationError(
                f"node index {index} out of range at level {level}")
        below = len(self._levels[level - 1])
        if below % 2 == 1 and index == below // 2:
            return (below - 1,)
        return (2 * index, 2 * index + 1)


def verify_subset(root: str, leaves: Iterable[tuple[int, bytes | str]],
                  proofs: Iterable[MerkleProof]) -> bool:
    """Verify several (index, data) leaves against one signed root."""
    for (index, data), proof in zip(leaves, proofs):
        if proof.leaf_index != index:
            raise IntegrityError(
                f"proof is for leaf {proof.leaf_index}, data is for {index}")
        if not proof.verify(data, root):
            return False
    return True
