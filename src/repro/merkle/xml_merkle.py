"""Merkle hashing of XML trees (the [3]/[4] construction).

Each element's *Merkle hash* covers its tag, a hash of its local content
(attributes + text), and the ordered Merkle hashes of its element
children::

    Ch(e)  = H(attrs(e) | text(e))                  -- content hash
    Mh(e)  = H(tag(e) | Ch(e) | Mh(c1) | ... | Mh(ck))

A signature over Mh(root) — the *summary signature* — commits to the
entire document.  When a receiver is entitled to only a partial view, the
sender supplies :class:`FillerHashes` of two kinds:

* **subtree fillers** — Mh of completely pruned subtrees (marked in the
  view with :func:`make_pruned_marker` placeholders);
* **content fillers** — Ch of elements whose structure is visible but
  whose local content was stripped (Author-X connectors and NAVIGATE
  nodes).

Together these are the "set of additional hash values, referring to the
missing portions" of §4.1, and let the receiver recompute Mh(root)
without learning any hidden content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.errors import IntegrityError
from repro.crypto.hashing import combine
from repro.xmldb.model import Document, Element

_XML_NODE_PREFIX = "xmlnode:"
_XML_CONTENT_PREFIX = "xmlcontent:"


def content_hash(node: Element) -> str:
    """Hash of an element's local content (attributes + direct text)."""
    attrs = "|".join(f"{k}={v}" for k, v in sorted(node.attributes.items()))
    return combine(_XML_CONTENT_PREFIX, attrs, node.text)


def node_hash(tag: str, local_hash: str, child_hashes: list[str]) -> str:
    """Compose one element's Merkle hash from already-computed parts.

    The single place the Mh(e) recurrence is spelled out, shared by the
    recursive :func:`merkle_hash`, the :class:`IncrementalXmlHasher`, and
    the snapshot layer's cross-epoch subtree cache
    (:class:`repro.snap.intern.InternPool`) — three caching strategies,
    one hash definition, so their results are interchangeable.
    """
    return combine(_XML_NODE_PREFIX, tag, local_hash, *child_hashes)


def merkle_hash(node: Element) -> str:
    """The Merkle hash of an element subtree."""
    child_hashes = [merkle_hash(child) for child in node.element_children]
    return node_hash(node.tag, content_hash(node), child_hashes)


def document_hash(document: Document) -> str:
    return merkle_hash(document.root)


class IncrementalXmlHasher:
    """Maintains ``merkle_hash(root)`` under point mutations.

    A full :func:`merkle_hash` recomputation is O(n) per edit; republishing
    a large document after a one-element update should cost O(depth).
    The hasher caches Ch and Mh per element — keyed by the
    :class:`Element` objects themselves, which hash by identity; holding
    them as keys also pins them, so a freed element's recycled ``id`` can
    never alias a cache entry — and a mutation drops exactly the dirty
    leaf-to-root path.  The next :meth:`root_hash` then recomputes only
    what changed.

    Use either the mutation helpers (:meth:`set_text`,
    :meth:`set_attribute`, :meth:`remove_attribute`, :meth:`insert_child`,
    :meth:`remove_child`), or mutate the document directly and call
    :meth:`invalidate` on every touched element.

    ``hash_operations`` counts Ch/Mh computations since construction,
    giving benchmarks a timing-independent way to demonstrate the
    O(depth)-vs-O(n) shape.
    """

    def __init__(self, document: Document) -> None:
        self.document = document
        self._content: dict[Element, str] = {}
        self._merkle: dict[Element, str] = {}
        self.hash_operations = 0

    # -- hashing --------------------------------------------------------

    def _content_hash(self, node: Element) -> str:
        cached = self._content.get(node)
        if cached is None:
            self.hash_operations += 1
            cached = content_hash(node)
            self._content[node] = cached
        return cached

    def _merkle_hash(self, node: Element) -> str:
        cached = self._merkle.get(node)
        if cached is None:
            child_hashes = [self._merkle_hash(child)
                            for child in node.element_children]
            self.hash_operations += 1
            cached = node_hash(node.tag, self._content_hash(node),
                               child_hashes)
            self._merkle[node] = cached
        return cached

    def root_hash(self) -> str:
        """The document's Merkle hash, recomputing only dirty paths."""
        return self._merkle_hash(self.document.root)

    # -- invalidation ---------------------------------------------------

    def invalidate(self, node: Element, content: bool = True) -> None:
        """Mark *node* dirty after an external mutation.

        Drops the node's cached hashes and the Merkle hashes of its
        ancestor chain; pass ``content=False`` when only the child list
        changed (the local content hash is still valid).
        """
        if content:
            self._content.pop(node, None)
        self._merkle.pop(node, None)
        for ancestor in node.ancestors():
            self._merkle.pop(ancestor, None)

    def _drop_subtree(self, node: Element) -> None:
        for descendant in node.iter():
            self._content.pop(descendant, None)
            self._merkle.pop(descendant, None)

    # -- tracked mutations ---------------------------------------------

    def set_text(self, node: Element, text: str) -> None:
        node.set_text(text)
        self.invalidate(node)

    def set_attribute(self, node: Element, name: str, value: str) -> None:
        node.set_attribute(name, value)
        self.invalidate(node)

    def remove_attribute(self, node: Element, name: str) -> None:
        node.remove_attribute(name)
        self.invalidate(node)

    def insert_child(self, parent: Element, child: Element) -> None:
        parent.append(child)
        self.invalidate(parent, content=False)

    def remove_child(self, parent: Element, child: Element) -> None:
        parent.remove(child)
        self._drop_subtree(child)
        self.invalidate(parent, content=False)

    # -- oracle ---------------------------------------------------------

    def verify_against_rebuild(self) -> bool:
        """Does the incremental root hash equal a from-scratch rebuild?"""
        return self.root_hash() == merkle_hash(self.document.root)


@dataclass(frozen=True)
class FillerHashes:
    """Hashes for portions missing from a view.

    ``subtrees`` maps original node paths of fully pruned subtrees to
    their Merkle hashes; ``contents`` maps original node paths of
    content-stripped (connector/navigate) elements to their content
    hashes.  Paths use ``Element.node_path()`` of the *original* document.
    """

    subtrees: Mapping[str, str] = field(default_factory=dict)
    contents: Mapping[str, str] = field(default_factory=dict)

    def subtree(self, original_path: str) -> str:
        try:
            return self.subtrees[original_path]
        except KeyError:
            raise IntegrityError(
                f"missing filler hash for pruned subtree {original_path}"
            ) from None

    def __len__(self) -> int:
        return len(self.subtrees) + len(self.contents)


PRUNED_MARKER_TAG = "__pruned__"
PRUNED_PATH_ATTR = "path"


def make_pruned_marker(original_path: str) -> Element:
    """A placeholder element standing in for an elided subtree."""
    return Element(PRUNED_MARKER_TAG, {PRUNED_PATH_ATTR: original_path})


def is_pruned_marker(node: Element) -> bool:
    return node.tag == PRUNED_MARKER_TAG


def original_paths_of_view(view_root: Element,
                           root_path: str | None = None) -> dict[int, str]:
    """Map id(view node) -> its node path in the *original* document.

    Pruned markers occupy the sibling slots of the subtrees they replace,
    so original same-tag sibling indexes are recovered by counting markers
    under the tag recorded in their ``path`` attribute.
    """
    if root_path is None:
        root_path = f"/{view_root.tag}[1]"
    paths: dict[int, str] = {}

    def walk(node: Element, path: str) -> None:
        paths[id(node)] = path
        counters: dict[str, int] = {}
        for child in node.element_children:
            if is_pruned_marker(child):
                original = child.attributes.get(PRUNED_PATH_ATTR, "")
                tag = original.strip("/").split("/")[-1].split("[")[0]
                counters[tag] = counters.get(tag, 0) + 1
                paths[id(child)] = original
                continue
            counters[child.tag] = counters.get(child.tag, 0) + 1
            walk(child, f"{path}/{child.tag}[{counters[child.tag]}]")

    walk(view_root, root_path)
    return paths


def view_hash(view_root: Element, fillers: FillerHashes) -> str:
    """Recompute the original document's Merkle hash from a partial view.

    Content fillers are consulted *only* for elements whose visible local
    content is empty — an element carrying attributes or text is always
    hashed from what the receiver actually sees, so a publisher cannot
    mask tampered content behind a filler.
    """
    paths = original_paths_of_view(view_root)

    def compute(node: Element) -> str:
        if is_pruned_marker(node):
            return fillers.subtree(node.attributes[PRUNED_PATH_ATTR])
        stripped = not node.attributes and not node.text
        path = paths[id(node)]
        if stripped and path in fillers.contents:
            local = fillers.contents[path]
        else:
            local = content_hash(node)
        child_hashes = [compute(child) for child in node.element_children]
        return combine(_XML_NODE_PREFIX, node.tag, local, *child_hashes)

    return compute(view_root)


def verify_view(view_root: Element, fillers: FillerHashes,
                expected_root_hash: str) -> bool:
    """True if the partial view + fillers reproduce the signed root hash."""
    return view_hash(view_root, fillers) == expected_root_hash


def build_partial_view(root: Element, keep) -> tuple[Element, FillerHashes]:
    """Build a verifiable partial view of *root*.

    *keep* is a predicate over elements; subtrees rooted at a kept element
    are copied whole.  Ancestors of kept elements become content-stripped
    shells (their content hashes go into the fillers), every other subtree
    is replaced by a pruned marker with its Merkle hash in the fillers.

    Returns ``(view_root, fillers)`` such that
    ``view_hash(view_root, fillers) == merkle_hash(root)``.  This is the
    building block of the authenticated UDDI registry [4]: "the discovery
    agency sends the requestor a set of additional hash values, referring
    to the missing portions, that make it able to locally perform the
    computation of the summary signature".
    """
    subtrees: dict[str, str] = {}
    contents: dict[str, str] = {}

    def kept_below(node: Element) -> bool:
        return any(keep(d) for d in node.iter())

    def build(node: Element) -> Element:
        if keep(node):
            return node.deep_copy()
        if not kept_below(node):
            path = node.node_path()
            subtrees[path] = merkle_hash(node)
            return make_pruned_marker(path)
        shell = Element(node.tag)
        if node.attributes or node.text:
            contents[node.node_path()] = content_hash(node)
        for child in node.element_children:
            shell.append(build(child))
        return shell

    view_root = build(root)
    return view_root, FillerHashes(subtrees, contents)
