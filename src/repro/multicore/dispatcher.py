"""The multicore front end: admission here, evaluation per core.

:class:`MulticoreGateway` is the process-per-core successor to the
single-loop :class:`~repro.gateway.core.AsyncRequestGateway`.  The
dispatcher process keeps everything that must be globally consistent —
token-bucket/DRR/watermark admission (the same
:class:`~repro.gateway.admission.AdmissionController` machinery), the
authoritative :class:`~repro.gateway.engine.EpochalShardRouter`, delta
versioning, stats — and ships evaluation to N worker processes, each
running its own asyncio loop over the shards ``{s : s % N == i}``.

Lifecycle:

* :meth:`start` forks the workers (``fork`` start method: the compiled
  router and snapshot store are inherited, never pickled) and runs the
  seed handshake — each worker recomputes its shards' compiled-table
  digests and must match the dispatcher's
  :class:`~repro.multicore.image.PolicyImage`, else
  :class:`~repro.core.errors.SeedMismatch` (fail closed);
* policy changes go through :meth:`apply_delta`: applied to the local
  authority first, then broadcast as a versioned
  :class:`~repro.multicore.image.PolicyDelta`; workers enforce the
  replica tier's contiguity discipline, so a worker that missed a
  version answers typed and is retired
  (:class:`~repro.core.errors.WorkerDiverged`) instead of serving
  stale policy;
* requests are admitted exactly like the async gateway (typed
  ``Overloaded``/``AdmissionRejected``), batched per tick, grouped by
  owning worker and shipped as pickle-5 frames; subjects are interned
  per worker (first frame carries the object, later frames an int
  key); decisions come back as compact id tuples and are surfaced as
  :class:`RemoteDecision` — attribute-compatible with
  :class:`~repro.core.evaluator.Decision` for serialization, so the
  byte-identity oracle runs the same code against both tiers.

Fault semantics: the injector is stepped per dispatched frame at
``mcore:worker<i>`` with the same FaultKind → TransportError mapping as
both existing gateways; a CRASH (or :meth:`kill_worker`) retires the
worker and every later request owned by it fails typed
:class:`~repro.core.errors.ReplicaUnavailable` — degraded, never
wrong.  ``workers=0`` runs the same worker code in-process on the
caller's task with every message still round-tripped through the frame
codec: the deterministic mode the handshake tests and the chaos
battery drive.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
import time
from collections import deque
from typing import AsyncIterator, Sequence

from repro.core.errors import (
    AdmissionRejected,
    ConfigurationError,
    CorruptMessage,
    MessageDropped,
    Overloaded,
    ReplicaUnavailable,
    SeedMismatch,
    StaleRead,
    WorkerDiverged,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind
from repro.gateway.admission import (
    AdmissionController,
    Clock,
    DeficitRoundRobin,
    TenantConfig,
)
from repro.gateway.engine import EpochalShardRouter
from repro.gateway.stats import GatewayStats
from repro.gateway.streaming import DEFAULT_CHUNK_SIZE
from repro.multicore.frames import (
    read_frame_async,
    roundtrip,
    write_frame_async,
)
from repro.multicore.image import PolicyDelta, PolicyImage
from repro.multicore.worker import (
    ShardWorker,
    worker_process_main,
)

#: FaultKind → typed TransportError (same mapping as both gateways).
_FAULT_ERRORS = {
    FaultKind.CRASH: lambda site: ReplicaUnavailable(
        f"worker behind {site} is down"),
    FaultKind.DROP: lambda site: MessageDropped(
        f"frame to {site} lost in transit"),
    FaultKind.REORDER: lambda site: MessageDropped(
        f"frame to {site} arrived out of order and was discarded"),
    FaultKind.CORRUPT: lambda site: CorruptMessage(
        f"frame to {site} failed its checksum"),
    FaultKind.STALE_READ: lambda site: StaleRead(
        f"worker behind {site} served a lagging snapshot"),
}

_FAULT_ORDER = (FaultKind.CRASH, FaultKind.CORRUPT, FaultKind.STALE_READ,
                FaultKind.DROP, FaultKind.REORDER)


class _PolicyRef:
    """Id-only stand-in for a Policy in a remote decision."""

    __slots__ = ("policy_id",)

    def __init__(self, policy_id: int) -> None:
        self.policy_id = policy_id

    def __repr__(self) -> str:
        return f"Policy#{self.policy_id}"


class RemoteDecision:
    """A worker's decision, reconstructed dispatcher-side.

    Shaped like :class:`~repro.core.evaluator.Decision` where it
    matters for serialization and verdict checks: ``granted``,
    ``reason``, ``determining.policy_id``, ``applicable[i].policy_id``.
    """

    __slots__ = ("granted", "determining", "applicable", "reason")

    def __init__(self, granted: bool, determining_id: int | None,
                 applicable_ids: Sequence[int], reason: str) -> None:
        self.granted = granted
        self.determining = (_PolicyRef(determining_id)
                            if determining_id is not None else None)
        self.applicable = tuple(_PolicyRef(i) for i in applicable_ids)
        self.reason = reason

    def __bool__(self) -> bool:
        return self.granted

    def __repr__(self) -> str:
        verdict = "grant" if self.granted else "deny"
        return f"RemoteDecision({verdict}: {self.reason})"


def decision_from_wire(wire: tuple) -> RemoteDecision:
    granted, determining_id, applicable_ids, reason = wire
    return RemoteDecision(granted, determining_id, applicable_ids, reason)


class _ProcessChannel:
    """One forked worker: socket, FIFO reply matching, liveness."""

    in_process = False

    def __init__(self, process, sock) -> None:
        self.process = process
        self.sock = sock
        self.reader = None
        self.writer = None
        self.dead: Exception | None = None
        self._futures: deque = deque()
        self._reader_task: asyncio.Task | None = None

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            sock=self.sock)
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                reply = await read_frame_async(self.reader)
                if self._futures:
                    future = self._futures.popleft()
                    if not future.done():
                        future.set_result(reply)
        except (asyncio.IncompleteReadError, ConnectionError,
                CorruptMessage) as exc:
            self.dead = exc
            while self._futures:
                future = self._futures.popleft()
                if not future.done():
                    future.set_exception(ReplicaUnavailable(
                        f"worker channel failed: {exc}"))

    async def request(self, message: tuple) -> tuple:
        if self.dead is not None:
            raise ReplicaUnavailable(
                f"worker channel is down: {self.dead}")
        future = asyncio.get_running_loop().create_future()
        self._futures.append(future)
        await write_frame_async(self.writer, message)
        return await future

    def kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.kill()

    async def close(self) -> None:
        if self.dead is None and self.writer is not None:
            try:
                await self.request(("stop",))
            except (ReplicaUnavailable, ConnectionError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception) as exc:
                # Teardown path: channel errors were already surfaced
                # to their pending futures.
                del exc
        if self.writer is not None:
            self.writer.close()
        if self.process is not None:
            self.process.join(timeout=5)
            if self.process.is_alive():  # pragma: no cover - stuck child
                self.process.kill()
                self.process.join(timeout=5)


class _InProcessChannel:
    """``workers=0``: the worker object runs on the caller's task, with
    every message and reply still round-tripped through the frame codec
    so anything that would not survive the wire fails here too."""

    in_process = True

    def __init__(self, worker: ShardWorker) -> None:
        self.worker = worker
        self.dead: Exception | None = None

    async def request(self, message: tuple) -> tuple:
        if self.dead is not None:
            raise ReplicaUnavailable(
                f"worker channel is down: {self.dead}")
        reply = await self.worker.handle(roundtrip(message))
        return roundtrip(reply)

    def kill(self) -> None:
        self.dead = ReplicaUnavailable("worker killed")

    async def close(self) -> None:
        self.dead = self.dead or ReplicaUnavailable("gateway closed")


class MulticoreGateway:
    """Process-per-core serving over digest-verified compiled shards.

    *policies* is an iterable of :class:`~repro.core.policy.Policy` (or
    a prebuilt compiled :class:`EpochalShardRouter`); *store* is an
    optional snapshot store enabling :meth:`stream_document`.
    ``workers=N`` forks N processes at :meth:`start`; ``workers=0``
    creates ``logical_workers`` in-process workers instead — the
    deterministic mode (same submissions + same fault plan ⇒ same
    responses), which still exercises the frame codec on every hop.
    """

    def __init__(self, policies, store=None, *,
                 workers: int = 2,
                 logical_workers: int = 2,
                 shard_count: int | None = None,
                 queue_limit: int = 4096,
                 high_watermark: int | None = None,
                 low_watermark: int | None = None,
                 batch_size: int = 64,
                 default_tenant: TenantConfig | None = TenantConfig(),
                 clock: Clock = time.perf_counter,
                 faults: FaultInjector | None = None,
                 fault_site: str = "mcore",
                 auto_dispatch: bool = True,
                 worker_router: EpochalShardRouter | None = None) -> None:
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self.worker_count = workers if workers > 0 else logical_workers
        if self.worker_count < 1:
            raise ConfigurationError("need at least one logical worker")
        self.in_process = workers == 0
        if hasattr(policies, "shard_for_path"):
            self.router = policies
            self._policy_list = list(self.router.policies())
        else:
            self._policy_list = list(policies)
            self.router = EpochalShardRouter.from_policies(
                self._policy_list,
                shard_count=shard_count or max(4, self.worker_count),
                compile_policies=True)
        if not self.router.compile_policies:
            raise ConfigurationError(
                "multicore serving requires compile_policies=True: the "
                "seed handshake verifies compiled-table digests")
        self.store = store
        self.batch_size = batch_size
        self.default_tenant = default_tenant
        self.clock = clock
        self.faults = faults
        self.fault_site = fault_site
        self.auto_dispatch = auto_dispatch
        self.admission = AdmissionController(
            clock, queue_limit=queue_limit,
            high_watermark=high_watermark, low_watermark=low_watermark)
        self.stats = GatewayStats()
        self._drr = DeficitRoundRobin()
        self._known_tenants: set[str] = set()
        self._wake = asyncio.Event()
        self._dispatcher: asyncio.Task | None = None
        self._closing = False
        self._started = False
        self._started_at = clock()
        self._delta_version = 0
        self._batch_counter = 0
        self._stream_counter = 0
        self._store_dirty = False
        # The in-process mode evaluates against a *separate* router
        # built from the same policies — the stand-in for the fork
        # image — so local delta application cannot double-apply.
        self._worker_router = worker_router
        self._channels: list = []
        self._retired: list[Exception | None] = []
        # Subject interning: id(subject) -> (key, strong ref); the ref
        # pins the id so it cannot be recycled under us.
        self._subject_keys: dict[int, tuple[int, object]] = {}
        self._acked_subjects: list[set[int]] = []

    # -- topology ----------------------------------------------------------

    def worker_for_shard(self, shard: int) -> int:
        return shard % self.worker_count

    def owned_shards(self, worker_id: int) -> tuple[int, ...]:
        return tuple(s for s in range(self.router.shard_count)
                     if s % self.worker_count == worker_id)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "MulticoreGateway":
        """Fork (or instantiate) the workers and run the seed
        handshake; raises :class:`SeedMismatch` on any digest
        disagreement."""
        if self._started:
            return self
        if self.in_process:
            if self._worker_router is None:
                self._worker_router = EpochalShardRouter.from_policies(
                    self._policy_list,
                    shard_count=self.router.shard_count,
                    compile_policies=True)
            for worker_id in range(self.worker_count):
                worker = ShardWorker(
                    worker_id, self._worker_router,
                    self.owned_shards(worker_id), store=self.store)
                self._channels.append(_InProcessChannel(worker))
        else:
            context = multiprocessing.get_context("fork")
            for worker_id in range(self.worker_count):
                parent_sock, child_sock = socket.socketpair()
                worker = ShardWorker(
                    worker_id, self.router,
                    self.owned_shards(worker_id), store=self.store)
                process = context.Process(
                    target=worker_process_main,
                    args=(child_sock, worker),
                    name=f"mcore-worker{worker_id}", daemon=True)
                process.start()
                child_sock.close()
                channel = _ProcessChannel(process, parent_sock)
                await channel.connect()
                self._channels.append(channel)
        self._retired = [None] * self.worker_count
        self._acked_subjects = [set() for _ in range(self.worker_count)]
        self._started = True
        await self._seed_all()
        return self

    async def _seed_all(self) -> None:
        for worker_id, channel in enumerate(self._channels):
            image = PolicyImage.of_router(
                self.router, self.owned_shards(worker_id),
                version=self._delta_version)
            reply = await channel.request(("seed", image))
            if reply[0] != "seed-ok":
                raise SeedMismatch(
                    f"worker {worker_id} failed the seed handshake: "
                    f"{reply[2] if len(reply) > 2 else reply}")

    async def close(self, drain: bool = True) -> None:
        self._closing = True
        self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if drain:
            await self.process_pending()
        else:
            for _, future, _ in self._drr.drain_all():
                if not future.done():
                    future.set_exception(AdmissionRejected(
                        "gateway closed before evaluation"))
        for channel in self._channels:
            await channel.close()

    async def __aenter__(self) -> "MulticoreGateway":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- tenants -----------------------------------------------------------

    def register(self, tenant: str,
                 config: TenantConfig | None = None) -> TenantConfig:
        config = config if config is not None else self.default_tenant
        if config is None:
            raise ConfigurationError(
                f"no config for tenant {tenant!r} and no default")
        self.admission.register(tenant, config)
        self._drr.register(tenant, config.quantum)
        self._known_tenants.add(tenant)
        return config

    def _ensure_tenant(self, tenant: str) -> None:
        if tenant not in self._known_tenants:
            self.register(tenant)

    def _drain_rate(self) -> float:
        elapsed = max(self.clock() - self._started_at, 1e-3)
        return self.stats.completed / elapsed

    def pending(self) -> int:
        return self._drr.pending()

    # -- admission ---------------------------------------------------------

    def _admit(self, tenant: str, amount: float = 1.0) -> None:
        if self._closing:
            raise AdmissionRejected("gateway is shutting down")
        if not self._started:
            raise ConfigurationError(
                "gateway not started; call await gateway.start() first")
        self._ensure_tenant(tenant)
        try:
            self.admission.admit(tenant, self._drr.pending(),
                                 self._drain_rate(), amount=amount)
        except Overloaded:
            with self.stats._lock:
                self.stats.shed += 1
            raise
        except AdmissionRejected:
            with self.stats._lock:
                self.stats.rejected += 1
            raise

    def submit_nowait(self, tenant: str, request) -> asyncio.Future:
        """Admit one request or raise the typed refusal; the future
        resolves to a :class:`RemoteDecision` (or the typed transport
        error its frame was converted into)."""
        self._admit(tenant)
        future = asyncio.get_running_loop().create_future()
        self._drr.push(tenant, (request, future, self.clock()))
        with self.stats._lock:
            self.stats.admitted += 1
        self._kick()
        return future

    def submit_batch_nowait(self, tenant: str,
                            requests: Sequence) -> asyncio.Future:
        """Admit *requests* as one unit — one admission decision
        charging ``len(requests)`` tokens, one future resolving to the
        decision list in submission order.  The cheap way to amortize
        admission over closed-loop batches."""
        if not requests:
            raise ConfigurationError("empty batch")
        self._admit(tenant, amount=float(len(requests)))
        loop = asyncio.get_running_loop()
        futures = [loop.create_future() for _ in requests]
        now = self.clock()
        for request, future in zip(requests, futures):
            self._drr.push(tenant, (request, future, now))
        with self.stats._lock:
            self.stats.admitted += len(requests)
        self._kick()
        return asyncio.gather(*futures)

    async def submit(self, tenant: str, request) -> RemoteDecision:
        return await self.submit_nowait(tenant, request)

    def _kick(self) -> None:
        self._wake.set()
        if self.auto_dispatch and self._dispatcher is None:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name="mcore-dispatcher")

    # -- the dispatch loop -------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            if self._drr.pending() == 0:
                if self._closing:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            await asyncio.sleep(0)
            batch = self._drr.take(self.batch_size)
            if batch:
                await self._evaluate(batch)

    async def process_pending(self) -> int:
        """Drain everything queued on the caller's task — with
        ``workers=0`` this is fully deterministic: same submissions +
        same fault plan ⇒ same responses in the same order."""
        processed = 0
        while self._drr.pending():
            batch = self._drr.take(self.batch_size)
            if not batch:
                break
            await self._evaluate(batch)
            processed += len(batch)
        return processed

    async def _evaluate(self, batch: list) -> None:
        dequeued_at = self.clock()
        with self.stats._lock:
            self.stats.batches += 1
            enqueue = self.stats.stage("enqueue")
            for _, _, submitted_at in batch:
                wait = dequeued_at - submitted_at
                self.stats.queue_wait_s += wait
                enqueue.record(wait)

        groups: dict[int, list] = {}
        for request, future, submitted_at in batch:
            shard = self.router.shard_for_path(request.path)
            groups.setdefault(self.worker_for_shard(shard), []).append(
                (shard, request, future, submitted_at))

        jobs = [self._evaluate_group(worker_id, groups[worker_id])
                for worker_id in sorted(groups)]
        if len(jobs) == 1:
            await jobs[0]
        else:
            await asyncio.gather(*jobs)

    def _intern(self, subject, new_subjects: dict, acked: set) -> int:
        entry = self._subject_keys.get(id(subject))
        if entry is None:
            key = len(self._subject_keys)
            self._subject_keys[id(subject)] = (key, subject)
        else:
            key = entry[0]
        if key not in acked:
            new_subjects[key] = subject
        return key

    async def _evaluate_group(self, worker_id: int, group: list) -> None:
        error = self._group_error(worker_id)
        reply = None
        if error is None:
            acked = self._acked_subjects[worker_id]
            new_subjects: dict[int, object] = {}
            entries = []
            for shard, request, _, _ in group:
                subject, action, path, payload = request.triple()
                key = self._intern(subject, new_subjects, acked)
                entries.append((shard, key, action, str(path), payload))
            self._batch_counter += 1
            frame = ("eval", self._batch_counter, tuple(entries),
                     new_subjects)
            sent_at = self.clock()
            try:
                reply = await self._channels[worker_id].request(frame)
            except ReplicaUnavailable as exc:
                self._retired[worker_id] = exc
                error = exc
            else:
                wall = self.clock() - sent_at
                error = self._reply_error(worker_id, reply)
                if error is None:
                    acked.update(new_subjects)
                    eval_s = reply[4]
                    finished = self.clock()
                    with self.stats._lock:
                        self.stats.evaluate_s += eval_s
                        self.stats.completed += len(group)
                        self.stats.stage("evaluate").record(eval_s)
                        self.stats.stage("ipc").record(
                            max(wall - eval_s, 0.0))
                        for _, _, _, submitted_at in group:
                            self.stats.latency.record(
                                finished - submitted_at)
                    for (_, _, future, _), wire in zip(group, reply[3]):
                        if not future.done():
                            future.set_result(decision_from_wire(wire))
        if error is not None:
            with self.stats._lock:
                self.stats.failed += len(group)
            for _, _, future, _ in group:
                if not future.done():
                    future.set_exception(error)

    def _group_error(self, worker_id: int) -> Exception | None:
        """Retirement, then injected faults — worst event wins."""
        retired = self._retired[worker_id]
        if retired is not None:
            # Keep the retirement's own type: a diverged worker keeps
            # answering WorkerDiverged, a killed one ReplicaUnavailable.
            return retired
        if self.faults is None:
            return None
        site = f"{self.fault_site}:worker{worker_id}"
        events = self.faults.step(site)
        for kind in _FAULT_ORDER:
            if any(event.kind is kind for event in events):
                error = _FAULT_ERRORS[kind](site)
                if kind is FaultKind.CRASH:
                    # A crashed worker stays crashed: typed degradation
                    # for everything it owned, byte-identical service
                    # from everyone else.
                    self._retired[worker_id] = error
                    self._channels[worker_id].kill()
                return error
        return None

    def _reply_error(self, worker_id: int,
                     reply: tuple) -> Exception | None:
        if reply[0] in ("eval-ok", "stream-ok"):
            return None
        detail = reply[3] if len(reply) > 3 else reply
        if detail == "diverged":
            error: Exception = WorkerDiverged(
                f"worker {worker_id} missed a policy delta and refuses "
                "to serve stale authorization")
        elif detail == "unseeded":
            error = SeedMismatch(
                f"worker {worker_id} was asked to evaluate before its "
                "seed handshake completed")
        else:
            error = ReplicaUnavailable(
                f"worker {worker_id} replied {reply[0]}: {detail}")
        self._retired[worker_id] = error
        return error

    # -- policy administration (delta shipping) ----------------------------

    async def apply_delta(self, adds: Sequence = (),
                          removes: Sequence = ()) -> PolicyDelta:
        """Apply a policy change locally, then ship it to every live
        worker as one contiguous versioned delta.

        *removes* may hold Policy objects or policy ids.  Digests are
        re-verified from every ack; disagreement raises
        :class:`SeedMismatch`, a version gap answers
        :class:`WorkerDiverged` and retires the worker.
        """
        if not self._started:
            raise ConfigurationError(
                "gateway not started; call await gateway.start() first")
        remove_ids = tuple(
            p if isinstance(p, int) else p.policy_id for p in removes)
        # Local authority first: removes, then adds — the worker-side
        # order, so digests re-converge.
        if remove_ids:
            wanted = set(remove_ids)
            for policy in [p for p in self.router.policies()
                           if p.policy_id in wanted]:
                self.router.remove(policy)
        for policy in adds:
            self.router.add(policy)
        self._delta_version += 1
        delta = PolicyDelta(self._delta_version, tuple(adds), remove_ids)
        with self.stats._lock:
            self.stats.writes += 1
            self.stats.epochs_advanced += 1
        await self._broadcast_delta(delta)
        return delta

    async def _broadcast_delta(self, delta: PolicyDelta) -> None:
        for worker_id, channel in enumerate(self._channels):
            if self._retired[worker_id] is not None:
                continue
            try:
                reply = await channel.request(("delta", delta))
            except ReplicaUnavailable as exc:
                self._retired[worker_id] = exc
                continue
            if reply[0] == "delta-gap":
                error = WorkerDiverged(
                    f"worker {worker_id} is at watermark {reply[3]} and "
                    f"refused non-contiguous delta v{reply[2]}")
                self._retired[worker_id] = error
                raise error
            if reply[0] != "delta-ok":
                raise ConfigurationError(
                    f"unexpected delta reply {reply[0]!r}")
            expected = PolicyImage.of_router(
                self.router, self.owned_shards(worker_id),
                version=delta.version)
            mismatches = expected.mismatches(reply[3])
            if mismatches:
                error = SeedMismatch(
                    f"worker {worker_id} diverged after delta "
                    f"v{delta.version}: {mismatches}")
                self._retired[worker_id] = error
                raise error

    async def add_policy(self, policy) -> PolicyDelta:
        return await self.apply_delta(adds=(policy,))

    async def remove_policy(self, policy) -> PolicyDelta:
        return await self.apply_delta(removes=(policy,))

    # -- chaos -------------------------------------------------------------

    def kill_worker(self, worker_id: int) -> None:
        """Kill one worker (the chaos overlay's hammer): its process
        dies and every request owned by it from now on fails typed
        :class:`ReplicaUnavailable`; other workers are untouched."""
        error = ReplicaUnavailable(f"worker {worker_id} was killed")
        self._retired[worker_id] = error
        self._channels[worker_id].kill()

    def live_workers(self) -> list[int]:
        return [i for i in range(self.worker_count)
                if self._retired[i] is None]

    # -- streaming dissemination -------------------------------------------

    def stream_document(self, tenant: str, collection: str, doc_id: str,
                        chunk_size: int = DEFAULT_CHUNK_SIZE
                        ) -> AsyncIterator[str]:
        """Stream one stored document's canonical serialization.

        Admission is charged here.  The frame goes to the worker owning
        the document's shard; its cached encoded chunks ride back out
        of band (no per-request payload copy) and are yielded exactly
        as the single-process gateway would.  After a dispatcher-side
        store write (fork-mode workers cannot see it) the stream is
        served locally instead — correct first, accelerated second.
        """
        if self.store is None:
            raise ConfigurationError(
                "gateway has no snapshot store; pass store= to stream")
        self._admit(tenant)
        with self.stats._lock:
            self.stats.admitted += 1
            self.stats.streams += 1
            self.stats.snapshot_reads += 1
        shard = self.router.shard_for_path(f"{collection}/{doc_id}")
        worker_id = self.worker_for_shard(shard)
        if self._store_dirty and not self.in_process:
            # Pin the epoch at admission, exactly like the async
            # gateway: the stream observes the snapshot current now.
            snapshot = self.store.epochs.acquire()
            return self._stream_local(snapshot, collection, doc_id,
                                      chunk_size)
        return self._stream_remote(worker_id, collection, doc_id,
                                   chunk_size)

    async def _stream_remote(self, worker_id: int, collection: str,
                             doc_id: str,
                             chunk_size: int) -> AsyncIterator[str]:
        started = self.clock()
        error = self._group_error(worker_id)
        reply = None
        if error is None:
            self._stream_counter += 1
            frame = ("stream", self._stream_counter, collection, doc_id,
                     chunk_size)
            try:
                reply = await self._channels[worker_id].request(frame)
            except ReplicaUnavailable as exc:
                self._retired[worker_id] = exc
                error = exc
            else:
                error = self._reply_error(worker_id, reply)
        if error is not None:
            with self.stats._lock:
                self.stats.failed += 1
            raise error
        chunks = reply[3]
        with self.stats._lock:
            self.stats.stream_chunks += len(chunks)
            self.stats.completed += 1
            self.stats.stage("stream").record(self.clock() - started)
        for chunk in chunks:
            yield bytes(chunk).decode()

    async def _stream_local(self, snapshot, collection: str, doc_id: str,
                            chunk_size: int) -> AsyncIterator[str]:
        from repro.gateway.streaming import stream_element

        started = self.clock()
        pool = getattr(self.store, "pool", None)
        try:
            node = snapshot.document(collection, doc_id)
            root = getattr(node, "root", node)
            async for chunk in stream_element(root, pool,
                                              chunk_size=chunk_size):
                with self.stats._lock:
                    self.stats.stream_chunks += 1
                yield chunk
            with self.stats._lock:
                self.stats.completed += 1
                self.stats.stage("stream").record(self.clock() - started)
        except BaseException:
            with self.stats._lock:
                self.stats.failed += 1
            raise
        finally:
            self.store.epochs.release(snapshot)

    def write(self, fn):
        """Apply ``fn(store)`` as one write and publish a new epoch.
        Fork-mode workers keep their fork-time corpus, so streaming
        falls back to dispatcher-local service afterwards."""
        if self.store is None:
            raise ConfigurationError(
                "gateway has no snapshot store; pass store=")
        writer = getattr(self.store, "writer", None)
        if writer is not None:
            with writer():
                result = fn(self.store)
        else:
            result = fn(self.store)
            publish = getattr(self.store, "publish", None)
            if publish is not None:
                publish()
        self._store_dirty = True
        with self.stats._lock:
            self.stats.writes += 1
            self.stats.epochs_advanced += 1
        return result
