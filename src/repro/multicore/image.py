"""Compiled-policy images and versioned deltas for worker seeding.

A worker never evaluates against policy state it cannot prove it
shares with the dispatcher.  Two artifacts carry that proof:

* :class:`PolicyImage` — the dispatcher's view of truth at a given
  delta watermark: one deterministic compiled-table digest per shard
  (:class:`~repro.compile.table.CompiledPolicy` digests cover the
  conflict resolution, the default, every policy descriptor and every
  DFA row, so equal digests mean equal decisions).  At seed time the
  worker recomputes its own digests from its inherited engines and
  refuses service on any mismatch
  (:class:`~repro.core.errors.SeedMismatch` — fail closed, never
  evaluate unverified).
* :class:`PolicyDelta` — one versioned policy-set change.  Versions
  are contiguous from the seed image's watermark, reusing the replica
  tier's :class:`~repro.replica.group.Delta` discipline: a worker
  accepts exactly ``watermark + 1`` and otherwise marks itself
  diverged (:class:`~repro.core.errors.WorkerDiverged`) — a gap means
  the worker's policy set has a hole, and serving across a hole is
  stale authorization.

Policies inside a delta cross the process boundary by pickling — their
credential expressions ship as factory recipes (see
:mod:`repro.core.credentials`), and ``policy_id`` survives the trip, so
removals need only the id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.errors import ConfigurationError
from repro.core.policy import Policy


def shard_digest(engine) -> str:
    """The compiled-table digest of one shard's current epoch.

    *engine* is an :class:`~repro.snap.policy.EpochalPolicyEngine`
    publishing compiled snapshots; the digest is the
    :class:`~repro.compile.table.CompiledPolicy` one — deterministic
    over the policy set, so two processes that agree on it agree on
    every decision.
    """
    snapshot = engine.current()
    compiled = getattr(snapshot, "engine", None)
    current = getattr(compiled, "current", None)
    if current is None:
        raise ConfigurationError(
            "shard engine does not publish compiled snapshots; "
            "multicore serving requires compile_policies=True")
    return current().digest


def router_digests(router, shards=None) -> dict[int, str]:
    """Per-shard compiled digests for *router* (all shards, or just
    the given subset)."""
    shards = range(router.shard_count) if shards is None else shards
    return {shard: shard_digest(router.engine(shard)) for shard in shards}


@dataclass(frozen=True)
class PolicyImage:
    """What the dispatcher believes each shard's compiled table is.

    ``version`` is the delta watermark the image reflects (0 at fork
    time, before any delta shipped); ``shard_digests`` maps shard →
    compiled digest hex.
    """

    version: int
    shard_digests: Mapping[int, str]

    def mismatches(self, actual: Mapping[int, str]) -> dict[int, tuple]:
        """Shards where *actual* disagrees (or is missing), as
        ``{shard: (expected, actual_or_None)}``."""
        out: dict[int, tuple] = {}
        for shard, expected in self.shard_digests.items():
            got = actual.get(shard)
            if got != expected:
                out[shard] = (expected, got)
        return out

    @classmethod
    def of_router(cls, router, shards=None,
                  version: int = 0) -> "PolicyImage":
        return cls(version, router_digests(router, shards))


@dataclass(frozen=True)
class PolicyDelta:
    """One contiguous policy-set change: version N applies only on a
    worker whose watermark is exactly N - 1."""

    version: int
    adds: tuple[Policy, ...] = ()
    removes: tuple[int, ...] = field(default=())  # policy_ids

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ConfigurationError(
                f"delta versions start at 1, got {self.version}")
        object.__setattr__(self, "adds", tuple(self.adds))
        object.__setattr__(self, "removes", tuple(self.removes))
