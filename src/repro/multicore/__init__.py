"""Multi-core serving: per-core event-loop shard workers, zero-copy IPC.

The GIL bounds one process; the hardware does not.  This package puts
the serving tier on every core: a dispatcher process owns admission and
the authoritative compiled policy router, N forked workers each run
their own asyncio loop over their shard subset, and everything crossing
a process boundary is a pickle-5 frame with out-of-band payload
buffers.  Workers prove they share the dispatcher's policy state by
compiled-table digest at seed time and stay current through contiguous
versioned deltas — or fail typed, never stale.
"""

from repro.multicore.dispatcher import (
    MulticoreGateway,
    RemoteDecision,
    decision_from_wire,
)
from repro.multicore.frames import (
    decode_frame,
    encode_frame,
    read_frame,
    read_frame_async,
    roundtrip,
    write_frame,
    write_frame_async,
)
from repro.multicore.image import (
    PolicyDelta,
    PolicyImage,
    router_digests,
    shard_digest,
)
from repro.multicore.worker import ShardWorker, wire_decision

__all__ = [
    "MulticoreGateway",
    "PolicyDelta",
    "PolicyImage",
    "RemoteDecision",
    "ShardWorker",
    "decision_from_wire",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "read_frame_async",
    "roundtrip",
    "router_digests",
    "shard_digest",
    "wire_decision",
    "write_frame",
    "write_frame_async",
]
