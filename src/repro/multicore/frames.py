"""Zero-copy IPC frames: pickle protocol 5 with out-of-band buffers.

Every message crossing a dispatcher↔worker boundary is one *frame*: a
pickle-5 stream plus zero or more out-of-band buffer parts.  Payload
byte blobs (interned snapshot fragments, cached stream chunks) travel
as :class:`pickle.PickleBuffer` wrappers, so the pickler never copies
them into the stream — the frame writer gathers them straight from the
worker's fragment cache onto the socket (``sendmsg`` scatter/gather on
the sync side, vectored ``write`` on the asyncio side), and the reader
receives each part into its own preallocated buffer.  Small control
messages (seed, delta, eval batches) are single-part frames; only bulk
payload rides out of band.

Wire layout per frame::

    !I  part count (1 + number of out-of-band buffers)
    !Q  length of part 0 (the pickle stream)
    ... !Q length per out-of-band part
    part bytes, in order

The codec is symmetric and transport-free: :func:`encode_frame` /
:func:`decode_frame` run identically over a socket, an asyncio stream,
or in-process (the dispatcher's ``workers=0`` deterministic mode round
trips every message through them so codec fidelity is exercised even
without processes).
"""

from __future__ import annotations

import pickle
import struct
from typing import Sequence

from repro.core.errors import CorruptMessage

_COUNT = struct.Struct("!I")
_SIZE = struct.Struct("!Q")

#: Frames beyond this are refused as corrupt rather than allocated —
#: a length header damaged in transit must not become an OOM.
MAX_FRAME_BYTES = 256 * 1024 * 1024
MAX_FRAME_PARTS = 4096


def encode_frame(message: object) -> list[bytes | memoryview]:
    """Serialize *message* into frame parts.

    Part 0 is the pickle-5 stream; parts 1+ are the out-of-band buffer
    views the pickler emitted (raw memoryviews over the sender's
    original bytes — nothing is copied here).
    """
    buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(message, protocol=5,
                           buffer_callback=buffers.append)
    return [payload, *(b.raw() for b in buffers)]


def decode_frame(parts: Sequence[bytes | bytearray | memoryview]) -> object:
    """Rebuild the message from frame parts (inverse of
    :func:`encode_frame`)."""
    try:
        return pickle.loads(parts[0], buffers=parts[1:])
    except (pickle.UnpicklingError, EOFError, IndexError, ValueError,
            TypeError) as exc:
        raise CorruptMessage(f"frame failed to decode: {exc}") from None


def roundtrip(message: object) -> object:
    """Encode then decode — the in-process channel's codec-fidelity
    hop: a message that would not survive the wire fails here too."""
    return decode_frame(encode_frame(message))


def frame_header(parts: Sequence[bytes | memoryview]) -> bytes:
    if len(parts) > MAX_FRAME_PARTS:
        raise CorruptMessage(
            f"frame has {len(parts)} parts (max {MAX_FRAME_PARTS})")
    header = bytearray(_COUNT.pack(len(parts)))
    for part in parts:
        header += _SIZE.pack(
            part.nbytes if isinstance(part, memoryview) else len(part))
    return bytes(header)


def _checked_sizes(count: int, raw_sizes: bytes) -> list[int]:
    if not 1 <= count <= MAX_FRAME_PARTS:
        raise CorruptMessage(f"frame part count {count} out of range")
    sizes = [_SIZE.unpack_from(raw_sizes, i * _SIZE.size)[0]
             for i in range(count)]
    if sum(sizes) > MAX_FRAME_BYTES:
        raise CorruptMessage(
            f"frame of {sum(sizes)} bytes exceeds {MAX_FRAME_BYTES}")
    return sizes


# -- synchronous side (worker processes) --------------------------------

def write_frame(sock, message: object) -> None:
    """Encode and gather-write one frame onto a blocking socket."""
    parts = encode_frame(message)
    sock.sendmsg([frame_header(parts), *parts])


def _recv_exact_into(sock, view: memoryview) -> None:
    while view.nbytes:
        received = sock.recv_into(view)
        if received == 0:
            raise EOFError("peer closed mid-frame")
        view = view[received:]


def read_frame(sock) -> object:
    """Read one frame from a blocking socket and decode it.

    Each part lands in its own preallocated ``bytearray`` via
    ``recv_into`` — one allocation per part, no reassembly copies.
    Raises :class:`EOFError` on a clean close between frames.
    """
    head = bytearray(_COUNT.size)
    _recv_exact_into(sock, memoryview(head))
    count = _COUNT.unpack(head)[0]
    raw_sizes = bytearray(_SIZE.size * count)
    _recv_exact_into(sock, memoryview(raw_sizes))
    parts: list[bytearray] = []
    for size in _checked_sizes(count, bytes(raw_sizes)):
        part = bytearray(size)
        _recv_exact_into(sock, memoryview(part))
        parts.append(part)
    return decode_frame(parts)


# -- asyncio side (dispatcher + worker loops) ---------------------------

async def write_frame_async(writer, message: object) -> None:
    """Encode and write one frame onto an asyncio StreamWriter."""
    parts = encode_frame(message)
    writer.write(frame_header(parts))
    for part in parts:
        # Transports take any bytes-like; memoryview parts go down
        # without an intermediate copy.
        writer.write(part)
    await writer.drain()


async def read_frame_async(reader) -> object:
    """Read and decode one frame from an asyncio StreamReader.

    Raises :class:`asyncio.IncompleteReadError` when the peer closes.
    """
    head = await reader.readexactly(_COUNT.size)
    count = _COUNT.unpack(head)[0]
    raw_sizes = await reader.readexactly(_SIZE.size * count)
    parts = [await reader.readexactly(size)
             for size in _checked_sizes(count, raw_sizes)]
    return decode_frame(parts)
