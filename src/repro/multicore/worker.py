"""The shard worker: one process, one asyncio loop, one shard set.

A :class:`ShardWorker` owns the shards ``{s : s % workers == id}`` of a
fork-inherited :class:`~repro.gateway.engine.EpochalShardRouter` and
answers dispatcher frames:

* ``seed`` — verify the inherited compiled tables against the
  dispatcher's :class:`~repro.multicore.image.PolicyImage` digest by
  digest; any disagreement refuses service (the worker never enters
  the serving state, mirroring :class:`~repro.core.errors.SeedMismatch`
  on the dispatcher side);
* ``delta`` — apply one :class:`~repro.multicore.image.PolicyDelta` if
  and only if it is contiguous (``version == watermark + 1``); a gap
  marks the worker *diverged* and every later evaluation fails typed
  instead of serving stale policy;
* ``eval`` — decide a batch against the owned shards' compiled epoch
  snapshots, replying with compact wire decisions (ids, not objects)
  plus the measured evaluate time so the dispatcher can split IPC from
  evaluation in its stage histograms;
* ``stream`` — serialize a stored document into canonical chunks.
  Encoded chunk bytes are cached per (collection, doc, chunk size) and
  ride out of band as :class:`pickle.PickleBuffer` parts, so a hot
  document's bytes are pickled by reference, never re-copied per
  request.

Subjects are interned per connection: the first eval batch mentioning a
subject carries it inline; later batches reference its integer key.
All worker state lives on the instance — module-level mutable state in
post-fork code is exactly what ``LINT-FORKSTATE`` exists to flag.
"""

from __future__ import annotations

import asyncio
import pickle
import time

from repro.gateway.streaming import DEFAULT_CHUNK_SIZE, stream_element
from repro.multicore.frames import read_frame_async, write_frame_async
from repro.multicore.image import PolicyDelta, PolicyImage, router_digests

#: Wire decision: (granted, determining_id, applicable_ids, reason).
WireDecision = tuple


def wire_decision(decision) -> WireDecision:
    return (decision.granted,
            decision.determining.policy_id
            if decision.determining is not None else None,
            tuple(p.policy_id for p in decision.applicable),
            decision.reason)


class ShardWorker:
    """Frame handler for one worker's shard set.

    Constructed in the dispatcher process and carried into the child by
    ``fork`` — the router (with its compiled epoch snapshots) and the
    optional snapshot store are inherited, never pickled.  The same
    object also runs in-process for ``workers=0`` deterministic mode.
    """

    def __init__(self, worker_id: int, router, owned_shards,
                 store=None) -> None:
        self.worker_id = worker_id
        self.router = router
        self.owned_shards = tuple(sorted(owned_shards))
        self.store = store
        self.watermark = 0
        self.seeded = False
        self.diverged = False
        self._subjects: dict[int, object] = {}
        self._chunk_cache: dict[tuple, tuple[bytes, ...]] = {}

    # -- message dispatch ---------------------------------------------------

    async def handle(self, message: tuple) -> tuple:
        tag = message[0]
        if tag == "eval":
            return self._handle_eval(message)
        if tag == "stream":
            return await self._handle_stream(message)
        if tag == "seed":
            return self._handle_seed(message)
        if tag == "delta":
            return self._handle_delta(message)
        if tag == "stop":
            return ("stopped", self.worker_id)
        return ("error", self.worker_id, f"unknown frame tag {tag!r}")

    # -- seeding + deltas ---------------------------------------------------

    def _digests(self) -> dict[int, str]:
        return router_digests(self.router, self.owned_shards)

    def _handle_seed(self, message: tuple) -> tuple:
        image: PolicyImage = message[1]
        actual = self._digests()
        mismatches = image.mismatches(actual)
        if mismatches:
            return ("seed-err", self.worker_id, mismatches)
        self.seeded = True
        self.watermark = image.version
        return ("seed-ok", self.worker_id, actual)

    def _handle_delta(self, message: tuple) -> tuple:
        delta: PolicyDelta = message[1]
        if self.diverged or delta.version != self.watermark + 1:
            # A hole in the history; refuse this and everything after.
            self.diverged = True
            return ("delta-gap", self.worker_id, delta.version,
                    self.watermark)
        self._apply_delta(delta)
        self.watermark = delta.version
        return ("delta-ok", self.worker_id, delta.version, self._digests())

    def _apply_delta(self, delta: PolicyDelta) -> None:
        owned = set(self.owned_shards)
        # Removes first, adds second — the dispatcher applies its local
        # copy in the same order, so the per-shard digests re-converge.
        if delta.removes:
            wanted = set(delta.removes)
            for shard in self.owned_shards:
                engine = self.router.engine(shard)
                doomed = [p for p in engine.base
                          if p.policy_id in wanted]
                for policy in doomed:
                    engine.remove_policy(policy)
        adds_by_shard: dict[int, list] = {}
        for policy in delta.adds:
            for shard in self.router.shards_for_policy(policy):
                if shard in owned:
                    adds_by_shard.setdefault(shard, []).append(policy)
        for shard, batch in adds_by_shard.items():
            # Bulk add: one publish (and one recompile) per shard.
            self.router.engine(shard).add_policies(batch)

    # -- evaluation ---------------------------------------------------------

    def _handle_eval(self, message: tuple) -> tuple:
        _, batch_id, entries, new_subjects = message
        if not self.seeded:
            return ("eval-err", self.worker_id, batch_id, "unseeded")
        if self.diverged:
            return ("eval-err", self.worker_id, batch_id, "diverged")
        self._subjects.update(new_subjects)
        started = time.perf_counter()
        by_shard: dict[int, list[int]] = {}
        for index, entry in enumerate(entries):
            by_shard.setdefault(entry[0], []).append(index)
        results: list[WireDecision | None] = [None] * len(entries)
        subjects = self._subjects
        for shard in sorted(by_shard):
            indices = by_shard[shard]
            triples = [(subjects[entries[i][1]], entries[i][2],
                        entries[i][3], entries[i][4]) for i in indices]
            decisions = self.router.engine(shard).decide_batch(triples)
            for index, decision in zip(indices, decisions):
                results[index] = wire_decision(decision)
        eval_s = time.perf_counter() - started
        return ("eval-ok", self.worker_id, batch_id, tuple(results),
                eval_s)

    # -- streaming ----------------------------------------------------------

    async def _handle_stream(self, message: tuple) -> tuple:
        _, stream_id, collection, doc_id, chunk_size = message
        if not self.seeded:
            return ("stream-err", self.worker_id, stream_id, "unseeded")
        if self.store is None:
            return ("stream-err", self.worker_id, stream_id, "no store")
        key = (collection, doc_id, chunk_size)
        chunks = self._chunk_cache.get(key)
        if chunks is None:
            try:
                chunks = await self._encode_chunks(collection, doc_id,
                                                   chunk_size)
            except Exception as exc:
                return ("stream-err", self.worker_id, stream_id,
                        f"{type(exc).__name__}: {exc}")
            self._chunk_cache[key] = chunks
        # PickleBuffer wrappers put the cached bytes out of band: the
        # frame references them, the socket gathers them, and no copy
        # of the payload is ever made inside this process.
        return ("stream-ok", self.worker_id, stream_id,
                tuple(pickle.PickleBuffer(chunk) for chunk in chunks))

    async def _encode_chunks(self, collection: str, doc_id: str,
                             chunk_size: int) -> tuple[bytes, ...]:
        pool = getattr(self.store, "pool", None)
        with self.store.epochs.reading() as snapshot:
            node = snapshot.document(collection, doc_id)
            root = getattr(node, "root", node)
            return tuple([chunk.encode()
                          async for chunk in stream_element(
                              root, pool, chunk_size=chunk_size)])


async def serve(sock, worker: ShardWorker) -> None:
    """The worker's event loop: read a frame, handle it, reply."""
    reader, writer = await asyncio.open_connection(sock=sock)
    try:
        while True:
            try:
                message = await read_frame_async(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # dispatcher went away; nothing to serve
            reply = await worker.handle(message)
            await write_frame_async(writer, reply)
            if message[0] == "stop":
                return
    finally:
        writer.close()


def worker_process_main(sock, worker: ShardWorker) -> None:
    """Child-process entry point (``fork`` start method).

    The fork happens while the dispatcher's event loop is running, so
    this thread inherits a thread-state that claims a loop is already
    active; clear it before standing up this process's own fresh loop.
    """
    asyncio.events._set_running_loop(None)
    asyncio.set_event_loop(None)
    try:
        asyncio.run(serve(sock, worker))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    finally:
        sock.close()
