"""The injector: turns a :class:`FaultPlan` into faults at run time.

Injection points (the message bus, registry replicas, the dissemination
channel) hold a shared :class:`FaultInjector` and call :meth:`step`
once per operation; the injector counts operations per site, looks up
the plan, applies crash windows, and tallies statistics.  Corruption is
derived from SHA-256 of ``(seed, site, op_index)`` — deterministic, so
a failing chaos seed replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import sha256_int
from repro.faults.clock import FaultClock
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan


@dataclass
class FaultStats:
    """What the bench harness reports per run."""

    operations: int = 0
    injected: dict[str, int] = field(default_factory=dict)

    def count(self, kind: FaultKind) -> None:
        self.injected[kind.value] = self.injected.get(kind.value, 0) + 1

    def total_injected(self) -> int:
        return sum(self.injected.values())


class FaultInjector:
    """Per-site operation counting + plan lookup + crash windows."""

    def __init__(self, plan: FaultPlan | None = None,
                 clock: FaultClock | None = None, seed: int = 0) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.clock = clock if clock is not None else FaultClock()
        self.seed = seed
        self.stats = FaultStats()
        self._op_counts: dict[str, int] = {}
        self._crashed_for: dict[str, int] = {}

    # -- the per-operation hook -------------------------------------------

    def step(self, site: str) -> tuple[FaultEvent, ...]:
        """Advance *site*'s operation counter and return its faults.

        A CRASH event opens a downtime window of ``magnitude``
        operations: this operation and the window both report CRASH, so
        callers see the replica stay down until the window drains.
        DELAY events charge the fault clock here, centrally, so every
        injection point accounts delays identically.
        """
        op_index = self._op_counts.get(site, 0)
        self._op_counts[site] = op_index + 1
        self.stats.operations += 1
        events = list(self.plan.events_for(site, op_index))

        remaining = self._crashed_for.get(site, 0)
        if remaining > 0:
            self._crashed_for[site] = remaining - 1
            if not any(e.kind is FaultKind.CRASH for e in events):
                events.append(FaultEvent(FaultKind.CRASH))
        for event in events:
            if event.kind is FaultKind.CRASH and event.magnitude > 1:
                self._crashed_for[site] = max(
                    self._crashed_for.get(site, 0), event.magnitude - 1)
            if event.kind is FaultKind.DELAY:
                self.clock.advance(event.magnitude)
            self.stats.count(event.kind)
        return tuple(events)

    def op_count(self, site: str) -> int:
        return self._op_counts.get(site, 0)

    # -- deterministic corruption -----------------------------------------

    def corrupt_bytes(self, data: bytes, site: str) -> bytes:
        """Flip one byte of *data*, chosen by the injector seed and the
        site's current operation count.  Guaranteed to differ from the
        input (the XOR mask is never zero)."""
        if not data:
            return b"\x00"
        digest = sha256_int(f"corrupt:{self.seed}:{site}:"
                            f"{self._op_counts.get(site, 0)}")
        position = digest % len(data)
        mask = (digest >> 16) % 255 + 1
        corrupted = bytearray(data)
        corrupted[position] ^= mask
        return bytes(corrupted)

    def corrupt_text(self, text: str, site: str) -> str:
        """Deterministically alter one character of *text*.

        Works on the character level so the result stays valid UTF-8
        (registry fields, XML text) while still differing from the
        input.
        """
        digest = sha256_int(f"corrupt:{self.seed}:{site}:"
                            f"{self._op_counts.get(site, 0)}")
        if not text:
            return "\x01"
        position = digest % len(text)
        replacement = chr(0x21 + (digest >> 16) % 0x5e)
        if replacement == text[position]:
            replacement = chr(((ord(replacement) - 0x20) % 0x5f) + 0x21)
        return text[:position] + replacement + text[position + 1:]
