"""A logical clock for deterministic fault experiments.

Every timing-sensitive mechanism in the resilience toolkit — delay
faults, per-call timeouts, retry backoff, circuit-breaker cool-down —
reads this clock instead of wall time.  Time only moves when something
*charges* it (a delay fault, a backoff sleep), so a chaos run with the
same seed produces the same interleaving on any machine, at any load.
Ticks are abstract units; the benchmarks report them as "latency" only
relative to each other.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError


class FaultClock:
    """Monotonic logical time, advanced explicitly."""

    def __init__(self, start: int = 0) -> None:
        self._now = start

    def now(self) -> int:
        return self._now

    def advance(self, ticks: int) -> int:
        """Move time forward (never backward) and return the new now."""
        if ticks < 0:
            raise ConfigurationError(f"cannot advance by {ticks} ticks")
        self._now += ticks
        return self._now

    # ``sleep`` is the name resilience code uses: a backoff "sleep" on a
    # logical clock is just an advance that the timeout accounting sees.
    sleep = advance

    def deadline(self, ticks: int) -> "Deadline":
        return Deadline(self, self._now + ticks)


@dataclass
class Deadline:
    """An absolute point on a :class:`FaultClock`."""

    clock: FaultClock
    expires_at: int

    def expired(self) -> bool:
        return self.clock.now() > self.expires_at

    def remaining(self) -> int:
        return max(0, self.expires_at - self.clock.now())
