"""Deterministic fault injection and resilience (`repro.faults`).

The paper's web-service stack assumes an unreliable substrate — SOAP
messages traverse untrusted intermediaries, UDDI registries federate
across operator sites, third-party publishers serve subscribers they do
not control — so the security claims only mean something if they
survive partial failure.  This package supplies:

* a **fault substrate**: seedable :class:`FaultPlan` schedules of
  drop/delay/duplicate/reorder/corrupt/crash/stale events keyed by
  operation count, a :class:`FaultClock` so nothing depends on wall
  time, and a :class:`FaultInjector` the injection points share;
* a **resilience toolkit**: :func:`retry_with_backoff` (seed-jittered,
  capped), :func:`call_with_timeout`, :class:`CircuitBreaker` and the
  :class:`IdempotencyLedger` for exactly-once registry writes.

Injection points live in :mod:`repro.wsa.transport` (message bus),
:mod:`repro.uddi.resilient` (registry replicas) and
:mod:`repro.xmlsec.dissemination` (publisher-to-subscriber channel).
The system-wide invariant, enforced by ``tests/faults/``: under any
bounded fault plan every wired client path either completes with
byte-identical results to its fault-free run or raises a typed error —
it never silently serves an unverifiable or partial answer.
"""

from repro.faults.clock import Deadline, FaultClock
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, merge_plans
from repro.faults.resilience import (
    CircuitBreaker,
    IdempotencyLedger,
    RetryPolicy,
    RetryTelemetry,
    call_with_timeout,
    idempotency_key,
    retry_with_backoff,
)

__all__ = [
    "CircuitBreaker", "Deadline", "FaultClock", "FaultEvent",
    "FaultInjector", "FaultKind", "FaultPlan", "FaultStats",
    "IdempotencyLedger", "RetryPolicy", "RetryTelemetry",
    "call_with_timeout", "idempotency_key", "merge_plans",
    "retry_with_backoff",
]
