"""Resilience toolkit: retry, timeout, circuit breaking, idempotency.

The toolkit is what turns the fault substrate's "either byte-identical
or typed error" goal into a theorem:

* :func:`retry_with_backoff` — capped exponential backoff with
  *seed-derived* jitter (``sha256(seed, key, attempt)``, never
  ``random``), sleeping on the :class:`FaultClock`.  Only
  :class:`TransportError`\\ s are retried by default; security errors
  (failed signatures, denied access) must never be retried into
  acceptance.
* :func:`call_with_timeout` — a per-call deadline against the fault
  clock.  Delay faults charge the clock inside the call, so a slow
  operation trips the deadline deterministically and its late result is
  discarded (fail closed).
* :class:`CircuitBreaker` — stops hammering a crashed replica: after
  ``failure_threshold`` consecutive retryable failures the circuit
  opens for ``reset_ticks``, then half-opens to probe.
* :class:`IdempotencyLedger` — server-side write dedup.  A retried
  write whose first attempt *did* apply (the ack was what got lost)
  must not apply twice; the ledger replays the recorded outcome
  instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.core.errors import (
    CallTimeout,
    CircuitOpen,
    ConfigurationError,
    RetryExhausted,
    TransportError,
)
from repro.crypto.hashing import sha256_int
from repro.faults.clock import FaultClock

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter."""

    max_attempts: int = 6
    base_delay: int = 1
    multiplier: int = 2
    max_delay: int = 16
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")

    def delay_before(self, attempt: int, key: str = "") -> int:
        """Backoff before retry number *attempt* (1-based): capped
        exponential plus jitter in ``[0, delay]`` derived from the seed
        — two clients with different keys desynchronize, but the same
        (seed, key, attempt) always jitters identically."""
        delay = min(self.base_delay * self.multiplier ** (attempt - 1),
                    self.max_delay)
        jitter = sha256_int(
            f"jitter:{self.jitter_seed}:{key}:{attempt}") % (delay + 1)
        return delay + jitter


@dataclass
class RetryTelemetry:
    """Filled in by :func:`retry_with_backoff`; read by the benchmarks."""

    attempts: int = 0
    backoff_ticks: int = 0
    errors: list[str] = field(default_factory=list)


def retry_with_backoff(operation: Callable[[], T], policy: RetryPolicy,
                       clock: FaultClock, key: str = "",
                       retry_on: tuple[type[BaseException], ...]
                       = (TransportError,),
                       telemetry: RetryTelemetry | None = None) -> T:
    """Run *operation* until it succeeds or attempts are exhausted.

    Non-retryable errors propagate immediately; retryable ones are
    swallowed until the attempt budget runs out, at which point a
    :class:`RetryExhausted` wrapping the last error is raised — the
    caller always ends in "result" or "typed error", never limbo.
    """
    last_error: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        if telemetry is not None:
            telemetry.attempts = attempt
        try:
            return operation()
        except retry_on as exc:
            last_error = exc
            if telemetry is not None:
                telemetry.errors.append(f"{type(exc).__name__}: {exc}")
            if attempt == policy.max_attempts:
                break
            pause = policy.delay_before(attempt, key)
            clock.sleep(pause)
            if telemetry is not None:
                telemetry.backoff_ticks += pause
    assert last_error is not None
    raise RetryExhausted(policy.max_attempts, last_error)


def call_with_timeout(operation: Callable[[], T], clock: FaultClock,
                      timeout_ticks: int, what: str = "call") -> T:
    """Run *operation* under a deadline on the fault clock.

    The substrate is synchronous, so the deadline is checked when the
    call returns: if delay faults charged more than *timeout_ticks*
    during it, the (already computed) result is discarded and
    :class:`CallTimeout` raised — modelling a caller that stopped
    waiting, which is exactly when a late answer must not be used.
    """
    deadline = clock.deadline(timeout_ticks)
    result = operation()
    if deadline.expired():
        raise CallTimeout(
            f"{what} exceeded {timeout_ticks} ticks "
            f"(overran by {clock.now() - deadline.expires_at})")
    return result


class CircuitBreaker:
    """CLOSED -> OPEN after N consecutive failures -> HALF_OPEN probe."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, clock: FaultClock, failure_threshold: int = 3,
                 reset_ticks: int = 8) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_ticks = reset_ticks
        self._failures = 0
        self._opened_at: int | None = None
        self.trips = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if self.clock.now() - self._opened_at >= self.reset_ticks:
            return self.HALF_OPEN
        return self.OPEN

    def call(self, operation: Callable[[], T]) -> T:
        state = self.state
        if state == self.OPEN:
            raise CircuitOpen(
                f"circuit open for another "
                f"{self._opened_at + self.reset_ticks - self.clock.now()} "
                f"ticks")
        try:
            result = operation()
        except TransportError:
            self._record_failure(half_open=state == self.HALF_OPEN)
            raise
        self._failures = 0
        self._opened_at = None
        return result

    def _record_failure(self, half_open: bool) -> None:
        self._failures += 1
        if half_open or self._failures >= self.failure_threshold:
            self._opened_at = self.clock.now()
            self.trips += 1
            self._failures = 0


class IdempotencyLedger:
    """Remembers write outcomes by idempotency key (server side)."""

    def __init__(self) -> None:
        self._outcomes: dict[str, object] = {}
        self.replays = 0

    def __contains__(self, key: str) -> bool:
        return key in self._outcomes

    def apply(self, key: str, operation: Callable[[], T]) -> T:
        """Run *operation* once per key; replay its outcome afterwards."""
        if key in self._outcomes:
            self.replays += 1
            return self._outcomes[key]  # type: ignore[return-value]
        result = operation()
        self._outcomes[key] = result
        return result


def idempotency_key(*parts: str) -> str:
    """Stable key for a write, from its semantically identifying parts."""
    return "idem:" + format(
        sha256_int("\x1f".join(parts)) % (1 << 64), "016x")
