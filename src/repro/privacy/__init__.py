"""Privacy for web databases (§3.3): privacy constraints, the privacy and
inference controllers [13,14], randomization-based PPDM [1], association
mining, and multiparty secure-sum mining [7].
"""

from repro.privacy.association import (
    Rule,
    apriori,
    association_rules,
    estimated_supports,
    itemset_f1,
    mine_randomized,
    randomize_transactions,
    support_counts,
)
from repro.privacy.constraints import (
    AssociationConstraint,
    PrivacyConstraint,
    PrivacyConstraintSet,
    PrivacyLevel,
)
from repro.privacy.controller import PrivacyController, ReleaseStats
from repro.privacy.patterns import (
    PatternConstraint,
    PatternSanitizer,
    SanitizationReport,
    tabular_transactions,
)
from repro.privacy.inference import InferenceController, InferenceStats
from repro.privacy.multiparty import (
    MODULUS,
    MiningOutcome,
    Party,
    SecureSumTrace,
    centralized_apriori,
    collusion_reconstructs,
    distributed_apriori,
    partition_transactions,
    secure_sum,
)
from repro.privacy.webmining import (
    document_transactions,
    mine_corpus,
    term_constraint,
    terms_of,
)
from repro.privacy.ppdm import (
    NoiseModel,
    histogram_distance,
    individual_error,
    privacy_interval,
    randomize,
    reconstruct_distribution,
    true_distribution,
)

__all__ = [
    "AssociationConstraint", "InferenceController", "InferenceStats",
    "MODULUS", "MiningOutcome", "NoiseModel", "Party",
    "PatternConstraint", "PatternSanitizer", "PrivacyConstraint",
    "PrivacyConstraintSet", "PrivacyController", "PrivacyLevel",
    "ReleaseStats", "Rule", "SanitizationReport", "SecureSumTrace",
    "apriori", "document_transactions", "mine_corpus", "tabular_transactions", "term_constraint", "terms_of",
    "association_rules", "centralized_apriori", "collusion_reconstructs",
    "distributed_apriori", "estimated_supports", "histogram_distance",
    "individual_error", "itemset_f1", "mine_randomized",
    "partition_transactions", "privacy_interval", "randomize",
    "randomize_transactions", "reconstruct_distribution", "secure_sum",
    "support_counts", "true_distribution",
]
