"""The inference controller ([13, 14], §3.3 and §5).

"Inference is the process of posing queries and deducing new information.
It becomes a problem when the deduced information is something the user
is unauthorized to know."

The controller sits in front of the privacy controller and tracks, per
user, the *column combinations already released per row population*.  A
new query is refused when the union of what the user has already seen and
what this query would add completes a forbidden association — even though
each query alone is innocuous.  This is the classical query-history
inference channel; benchmark E8 measures leakage with and without it.

Two modes:

* ``history`` (default) — per-user release ledger over row keys;
* ``stateless`` — only the current query is checked (the weaker control
  the ledger is compared against).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.errors import InferenceViolation
from repro.privacy.constraints import PrivacyConstraintSet
from repro.privacy.controller import PrivacyController
from repro.relational.query import ResultSet

RowPredicate = Callable[[Mapping[str, object]], bool]


@dataclass
class InferenceStats:
    queries: int = 0
    refused: int = 0
    associations_blocked: int = 0


class InferenceController:
    """Query-history-aware privacy enforcement."""

    def __init__(self, controller: PrivacyController,
                 track_history: bool = True) -> None:
        self.controller = controller
        self.track_history = track_history
        # user -> table -> row_key -> set of released columns
        self._ledger: dict[str, dict[str, dict[object, set[str]]]] = {}
        self.stats = InferenceStats()

    @property
    def constraints(self) -> PrivacyConstraintSet:
        return self.controller.constraints

    # -- internals ---------------------------------------------------------

    def _row_keys(self, user: str, table: str, where,
                  order_by, limit) -> list[object]:
        """Stable per-row identities for the rows a query returns.

        Keys come from the *full* underlying rows (same filters, same
        order as the privacy controller's select), so two queries over
        the same row combine in the ledger even when neither selects the
        primary key — otherwise projecting away the key would blind the
        history tracking.
        """
        full = self.controller.database.select(user, table, None, where,
                                               order_by=order_by,
                                               limit=limit)
        table_obj = self.controller.database.table(table)
        pk = table_obj.schema.primary_key
        keys: list[object] = []
        for row in full.rows:
            record = dict(zip(full.columns, row))
            if pk is not None and record.get(pk) is not None:
                keys.append(record[pk])
            else:
                keys.append(tuple(sorted(record.items())))
        return keys

    def _released(self, user: str, table: str,
                  row_key: object) -> set[str]:
        return (self._ledger.get(user, {}).get(table, {})
                .get(row_key, set()))

    def _record_release(self, user: str, table: str, row_key: object,
                        columns: set[str]) -> None:
        (self._ledger.setdefault(user, {}).setdefault(table, {})
         .setdefault(row_key, set())).update(columns)

    # -- the guarded query ----------------------------------------------------

    def select(self, user: str, table: str,
               columns: Sequence[str] | None = None,
               where: RowPredicate | None = None,
               order_by: str | None = None,
               limit: int | None = None) -> ResultSet:
        """SELECT refused when it would complete a forbidden association.

        The check runs per returned row: (columns already released for
        this row) ∪ (non-null columns this query returns for it) must not
        cover any unreleasable association constraint.
        """
        self.stats.queries += 1
        result = self.controller.select(user, table, columns, where,
                                        order_by=order_by, limit=limit)
        association_constraints = (
            self.constraints.association_constraints(table))
        if not association_constraints:
            return result
        need = user in self.controller.need_to_know
        row_keys = self._row_keys(user, table, where, order_by, limit)

        violating: list[str] = []
        per_row_new: list[tuple[object, set[str]]] = []
        for row, row_key in zip(result.rows, row_keys):
            record = dict(zip(result.columns, row))
            revealed = {c for c, v in record.items() if v is not None}
            if self.track_history:
                combined = self._released(user, table, row_key) | revealed
            else:
                combined = revealed
            for constraint in association_constraints:
                if (constraint.completed_by(combined)
                        and not constraint.level.releasable_to(need)):
                    label = (constraint.name
                             or "+".join(sorted(constraint.columns)))
                    violating.append(label)
            per_row_new.append((row_key, revealed))

        if violating:
            self.stats.refused += 1
            self.stats.associations_blocked += len(set(violating))
            raise InferenceViolation(
                f"query by {user!r} on {table!r} would complete "
                f"association(s): {sorted(set(violating))}")

        if self.track_history:
            for row_key, revealed in per_row_new:
                self._record_release(user, table, row_key, revealed)
        return result

    def history_size(self, user: str) -> int:
        """How many (table, row) entries the ledger holds for a user."""
        return sum(len(rows) for rows in
                   self._ledger.get(user, {}).values())

    def reset_history(self, user: str | None = None) -> None:
        if user is None:
            self._ledger.clear()
        else:
            self._ledger.pop(user, None)
