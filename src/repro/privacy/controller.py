"""The privacy controller: gates query answers by privacy constraints.

"Essentially, the inference controller approach we have proposed in [14]
is one solution to achieve some level of privacy" (§3.3).  This module is
the *release-time* half: given a query result, suppress cells whose
privacy level the requester does not meet.  The *query-time* half — the
inference controller that reasons about what a sequence of queries
jointly reveals — lives in :mod:`repro.privacy.inference` and builds on
this one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.errors import PrivacyViolation
from repro.privacy.constraints import (
    PrivacyConstraintSet,
    PrivacyLevel,
)
from repro.relational.database import Database
from repro.relational.query import ResultSet

RowPredicate = Callable[[Mapping[str, object]], bool]


@dataclass
class ReleaseStats:
    """What the controller did, for audits and benchmarks."""

    queries: int = 0
    cells_released: int = 0
    cells_suppressed: int = 0
    queries_refused: int = 0


class PrivacyController:
    """Wraps a Database with privacy-constraint enforcement.

    ``need_to_know`` names the subjects entitled to SEMI_PRIVATE data
    (the paper's "released to those who have a need to know").
    """

    def __init__(self, database: Database,
                 constraints: PrivacyConstraintSet,
                 need_to_know: set[str] | None = None,
                 strict: bool = False) -> None:
        self.database = database
        self.constraints = constraints
        self.need_to_know = set(need_to_know or ())
        #: strict mode refuses the whole query when any cell must be
        #: suppressed, instead of returning a redacted answer.
        self.strict = strict
        self.stats = ReleaseStats()

    def grant_need_to_know(self, user: str) -> None:
        self.need_to_know.add(user)

    def _row_level(self, table: str, column: str,
                   row: Mapping[str, object]) -> PrivacyLevel:
        return self.constraints.level_for(table, column, row)

    def select(self, user: str, table: str,
               columns: Sequence[str] | None = None,
               where: RowPredicate | None = None,
               order_by: str | None = None,
               limit: int | None = None) -> ResultSet:
        """SELECT with per-cell privacy suppression.

        Access control (System R grants) still applies first via the
        underlying database; privacy constraints then redact on top —
        the two mechanisms are complementary, as §3.3 argues.

        Conditional constraints are evaluated against the *full* row
        (all columns), not the requested projection — otherwise a query
        that omits the condition column ("vip") would dodge the
        constraint that depends on it.
        """
        self.stats.queries += 1
        all_columns = self.database.table(table).schema.column_names()
        wanted = tuple(columns) if columns is not None else all_columns
        full = self.database.select(user, table, None, where,
                                    order_by=order_by, limit=limit)
        for column in wanted:
            self.database.table(table).schema.column(column)
        need = user in self.need_to_know
        redacted_rows: list[tuple] = []
        suppressed_here = 0
        for row in full.rows:
            record = dict(zip(full.columns, row))
            output: list[object] = []
            for column in wanted:
                level = self._row_level(table, column, record)
                if level.releasable_to(need):
                    output.append(record[column])
                    self.stats.cells_released += 1
                else:
                    output.append(None)
                    suppressed_here += 1
            redacted_rows.append(tuple(output))
        self.stats.cells_suppressed += suppressed_here
        if self.strict and suppressed_here:
            self.stats.queries_refused += 1
            raise PrivacyViolation(
                f"query would release {suppressed_here} protected cell(s) "
                f"from {table!r}")
        return ResultSet(wanted, tuple(redacted_rows))

    def released_association_columns(self, table: str,
                                     columns: Sequence[str],
                                     user: str) -> list[str]:
        """Which association constraints a release would complete."""
        violated: list[str] = []
        need = user in self.need_to_know
        for constraint in self.constraints.association_constraints(table):
            if (constraint.completed_by(columns)
                    and not constraint.level.releasable_to(need)):
                violated.append(constraint.name
                                or "+".join(sorted(constraint.columns)))
        return violated
