"""Association-rule mining: Apriori baseline plus a privacy-preserving
variant over randomized transactions (MASK-style bit flipping).

Data mining "is an important tool in making the web more intelligent"
(§3.3) — and the thing privacy constraints must tame.  This module
provides the miner both E7's and E12's pipelines use:

* :func:`apriori` — frequent itemsets by level-wise candidate generation;
* :func:`association_rules` — rules with support/confidence;
* :func:`randomize_transactions` / :func:`estimated_supports` — each item
  flag is flipped with probability ``1 - p`` before release; true
  supports are estimated from flipped data by inverting the distortion
  matrix, so the miner finds (approximately) the same frequent itemsets
  without seeing any true basket.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

Transaction = frozenset[str]


def _as_transactions(transactions: Iterable[Iterable[str]]
                     ) -> list[Transaction]:
    return [frozenset(t) for t in transactions]


def support_counts(transactions: Sequence[Transaction],
                   itemsets: Sequence[frozenset[str]]) -> dict[frozenset[str], int]:
    counts: dict[frozenset[str], int] = {s: 0 for s in itemsets}
    for basket in transactions:
        for itemset in itemsets:
            if itemset <= basket:
                counts[itemset] += 1
    return counts


def apriori(transactions: Iterable[Iterable[str]],
            min_support: float,
            max_size: int = 4) -> dict[frozenset[str], float]:
    """Frequent itemsets with support >= *min_support* (a fraction).

    Classic level-wise Apriori with prefix-join candidate generation and
    subset pruning.
    """
    baskets = _as_transactions(transactions)
    if not baskets:
        return {}
    total = len(baskets)
    threshold = min_support * total

    items = sorted({item for basket in baskets for item in basket})
    current = [frozenset([item]) for item in items]
    frequent: dict[frozenset[str], float] = {}
    size = 1
    while current and size <= max_size:
        counts = support_counts(baskets, current)
        level = {itemset: count for itemset, count in counts.items()
                 if count >= threshold}
        for itemset, count in level.items():
            frequent[itemset] = count / total
        # Candidate generation: join frequent k-sets sharing a (k-1)-prefix.
        survivors = sorted(level, key=lambda s: sorted(s))
        candidates: set[frozenset[str]] = set()
        for first, second in itertools.combinations(survivors, 2):
            union = first | second
            if len(union) != size + 1:
                continue
            if all(frozenset(sub) in level
                   for sub in itertools.combinations(union, size)):
                candidates.add(union)
        current = sorted(candidates, key=lambda s: sorted(s))
        size += 1
    return frequent


@dataclass(frozen=True)
class Rule:
    """An association rule antecedent -> consequent."""

    antecedent: frozenset[str]
    consequent: frozenset[str]
    support: float
    confidence: float

    def __str__(self) -> str:
        lhs = ",".join(sorted(self.antecedent))
        rhs = ",".join(sorted(self.consequent))
        return (f"{{{lhs}}} -> {{{rhs}}} "
                f"(sup={self.support:.3f}, conf={self.confidence:.3f})")


def association_rules(frequent: dict[frozenset[str], float],
                      min_confidence: float) -> list[Rule]:
    """Rules from frequent itemsets meeting the confidence bar."""
    rules: list[Rule] = []
    for itemset, support in frequent.items():
        if len(itemset) < 2:
            continue
        for size in range(1, len(itemset)):
            for antecedent_items in itertools.combinations(
                    sorted(itemset), size):
                antecedent = frozenset(antecedent_items)
                antecedent_support = frequent.get(antecedent)
                if not antecedent_support:
                    continue
                confidence = support / antecedent_support
                if confidence >= min_confidence:
                    rules.append(Rule(antecedent, itemset - antecedent,
                                      support, confidence))
    rules.sort(key=lambda r: (-r.confidence, -r.support,
                              sorted(r.antecedent)))
    return rules


# -- privacy-preserving variant (randomized response / MASK) ---------------


def randomize_transactions(transactions: Iterable[Iterable[str]],
                           items: Sequence[str], keep_probability: float,
                           seed: int = 0) -> list[Transaction]:
    """Flip each item's presence bit with probability 1 - keep_probability.

    ``keep_probability = 1`` releases true baskets; ``0.5`` releases pure
    noise.  Items outside *items* are dropped (the item universe must be
    public for estimation).
    """
    if not 0.0 <= keep_probability <= 1.0:
        raise ValueError("keep_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    universe = list(items)
    released: list[Transaction] = []
    for basket in _as_transactions(transactions):
        bits = np.array([item in basket for item in universe])
        keep = rng.random(len(universe)) < keep_probability
        flipped = np.where(keep, bits, ~bits)
        released.append(frozenset(
            item for item, present in zip(universe, flipped) if present))
    return released


def estimated_supports(randomized: Sequence[Transaction],
                       itemsets: Sequence[frozenset[str]],
                       keep_probability: float) -> dict[frozenset[str], float]:
    """Estimate true supports from flipped data by distortion inversion.

    For an itemset of size k, the observed count vector over the 2^k
    presence patterns relates to the true one by a kron power of the
    2x2 flip matrix; we invert it (MASK's estimation step).
    """
    p = keep_probability
    flip = np.array([[p, 1 - p], [1 - p, p]])  # observed-bit x true-bit
    total = len(randomized)
    estimates: dict[frozenset[str], float] = {}
    for itemset in itemsets:
        members = sorted(itemset)
        k = len(members)
        matrix = np.array([[1.0]])
        for _ in range(k):
            matrix = np.kron(matrix, flip)
        observed = np.zeros(2 ** k)
        for basket in randomized:
            index = 0
            for member in members:
                index = (index << 1) | (1 if member in basket else 0)
            observed[index] += 1
        try:
            true_counts = np.linalg.solve(matrix, observed)
        except np.linalg.LinAlgError:
            estimates[itemset] = 0.0
            continue
        all_present = 2 ** k - 1
        estimates[itemset] = (max(true_counts[all_present], 0.0) / total
                              if total else 0.0)
    return estimates


def mine_randomized(transactions: Iterable[Iterable[str]],
                    items: Sequence[str], keep_probability: float,
                    min_support: float, max_size: int = 3,
                    seed: int = 0) -> dict[frozenset[str], float]:
    """The full privacy-preserving pipeline: randomize then mine.

    Candidate generation runs level-wise like Apriori but with estimated
    supports instead of exact counts.
    """
    released = randomize_transactions(transactions, items,
                                      keep_probability, seed)
    current = [frozenset([item]) for item in items]
    frequent: dict[frozenset[str], float] = {}
    size = 1
    while current and size <= max_size:
        supports = estimated_supports(released, current, keep_probability)
        level = {s: v for s, v in supports.items() if v >= min_support}
        frequent.update(level)
        survivors = sorted(level, key=lambda s: sorted(s))
        candidates: set[frozenset[str]] = set()
        for first, second in itertools.combinations(survivors, 2):
            union = first | second
            if len(union) == size + 1:
                candidates.add(union)
        current = sorted(candidates, key=lambda s: sorted(s))
        size += 1
    return frequent


def itemset_f1(mined: Iterable[frozenset[str]],
               reference: Iterable[frozenset[str]]) -> float:
    """F1 of mined frequent itemsets vs the true ones (E7's utility)."""
    mined_set = set(mined)
    reference_set = set(reference)
    if not mined_set and not reference_set:
        return 1.0
    if not mined_set or not reference_set:
        return 0.0
    true_positives = len(mined_set & reference_set)
    precision = true_positives / len(mined_set)
    recall = true_positives / len(reference_set)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
