"""Privacy-preserving web (unstructured) data mining — §3.3's closing
research call: "we need to combine techniques for privacy preserving
data mining with techniques for web data mining to obtain solutions for
privacy preserving web data mining".

The combination implemented here:

1. *web data mining side* — :func:`terms_of` tokenizes the text of XML
   documents; :func:`document_transactions` turns a corpus into term-set
   transactions, so the association machinery of
   :mod:`repro.privacy.association` mines co-occurrence patterns from
   unstructured content;
2. *privacy-preserving side* — term transactions can be randomized with
   the same bit-flip mechanism as baskets
   (:func:`repro.privacy.association.randomize_transactions`), and the
   mined patterns pass through the
   :class:`repro.privacy.patterns.PatternSanitizer` with term-level
   constraints (:func:`term_constraint`) so identifying terms never
   co-occur in released patterns.

:func:`mine_corpus` wires the full pipeline.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping, Sequence

from repro.privacy.association import (
    apriori,
    mine_randomized,
)
from repro.privacy.constraints import PrivacyLevel
from repro.privacy.patterns import (
    PatternConstraint,
    PatternSanitizer,
    SanitizationReport,
)
from repro.xmldb.model import Document

_TOKEN = re.compile(r"[a-z][a-z0-9-]{2,}")

#: Words too common to carry signal; tiny on purpose.
STOPWORDS = frozenset({
    "the", "and", "for", "with", "was", "are", "not", "from", "this",
    "that", "has", "have", "per", "visit", "note",
})


def terms_of(document: Document,
             tags: Sequence[str] | None = None) -> frozenset[str]:
    """The significant terms of a document's text content.

    With *tags*, only text under elements with those tags is read —
    mining diagnosis/treatment notes while skipping names is itself a
    privacy measure (source-side minimization).
    """
    chunks: list[str] = []
    for node in document.iter():
        if tags is not None and node.tag not in tags:
            continue
        if node.text:
            chunks.append(node.text.lower())
    tokens = set()
    for chunk in chunks:
        tokens.update(_TOKEN.findall(chunk))
    return frozenset(tokens - STOPWORDS)


def document_transactions(corpus: Mapping[str, Document],
                          tags: Sequence[str] | None = None
                          ) -> list[frozenset[str]]:
    """One term-set transaction per document, in key order."""
    return [terms_of(corpus[key], tags) for key in sorted(corpus)
            if terms_of(corpus[key], tags)]


def term_constraint(terms: Iterable[str],
                    level: PrivacyLevel = PrivacyLevel.PRIVATE,
                    min_support: float = 0.0,
                    name: str = "") -> PatternConstraint:
    """A pattern constraint over raw terms.

    Term transactions carry bare tokens (no ``attr=`` prefix), and
    :class:`PatternConstraint` keys on the part before ``=`` — which for
    a bare token is the token itself, so this is a thin, intention-
    revealing wrapper.
    """
    return PatternConstraint(frozenset(terms), level, min_support, name)


def mine_corpus(corpus: Mapping[str, Document],
                min_support: float,
                constraints: Iterable[PatternConstraint] = (),
                tags: Sequence[str] | None = None,
                keep_probability: float = 1.0,
                max_size: int = 3,
                seed: int = 0
                ) -> tuple[dict[frozenset[str], float],
                           SanitizationReport]:
    """The full privacy-preserving web-mining pipeline.

    ``keep_probability < 1`` additionally randomizes each document's
    term set before mining (randomized response over the corpus
    vocabulary), so the miner never sees true per-document terms.
    Returns (released frequent term-sets, sanitization report).
    """
    transactions = document_transactions(corpus, tags)
    if keep_probability >= 1.0:
        frequent = apriori(transactions, min_support, max_size)
    else:
        vocabulary = sorted({term for transaction in transactions
                             for term in transaction})
        frequent = mine_randomized(transactions, vocabulary,
                                   keep_probability, min_support,
                                   max_size, seed)
    sanitizer = PatternSanitizer(list(constraints))
    return sanitizer.sanitize_itemsets(frequent)
