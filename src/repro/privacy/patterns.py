"""Pattern-level privacy: gating *mining output* (§3.3).

"The idea is that privacy constraints determine which patterns are
private and to what extent" — not only raw cells but the *patterns* a
miner extracts can violate privacy: a high-confidence rule
``{zip=22101, age=67} -> {diagnosis=hiv}`` effectively re-identifies an
individual even though it is an aggregate.

:class:`PatternConstraint` declares which item combinations are private
(at a :class:`~repro.privacy.constraints.PrivacyLevel`), optionally only
when the pattern is *identifying* (support below a k-anonymity-style
floor).  :class:`PatternSanitizer` filters mined itemsets/rules before
release and reports what it suppressed — the paper's privacy controller
applied at the mining layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import ConfigurationError
from repro.privacy.association import Rule
from repro.privacy.constraints import PrivacyLevel


def _item_attribute(item: str) -> str:
    """The attribute of an 'attr=value' item ('bread' -> 'bread')."""
    return item.split("=", 1)[0]


@dataclass(frozen=True)
class PatternConstraint:
    """Item-attribute combinations whose joint patterns are private.

    ``attributes``: the attribute names that, appearing together in one
    pattern (itemset, or a rule's antecedent ∪ consequent), make it
    sensitive.  ``level`` gives the release rule.  ``min_support``: when
    > 0, only patterns *below* this support are suppressed — frequent
    patterns describe populations, rare ones describe individuals (the
    k-anonymity intuition).
    """

    attributes: frozenset[str]
    level: PrivacyLevel = PrivacyLevel.PRIVATE
    min_support: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ConfigurationError(
                "a pattern constraint needs at least one attribute")
        if not 0.0 <= self.min_support <= 1.0:
            raise ConfigurationError("min_support must be in [0, 1]")

    def matches(self, items: frozenset[str], support: float) -> bool:
        attributes = {_item_attribute(item) for item in items}
        if not self.attributes <= attributes:
            return False
        if self.min_support and support >= self.min_support:
            return False  # population-level pattern: allowed
        return True


@dataclass
class SanitizationReport:
    """What the sanitizer did."""

    released: int = 0
    suppressed: int = 0
    suppressed_by: dict[str, int] = field(default_factory=dict)

    def record_suppression(self, constraint: PatternConstraint) -> None:
        self.suppressed += 1
        label = constraint.name or "+".join(sorted(constraint.attributes))
        self.suppressed_by[label] = self.suppressed_by.get(label, 0) + 1


class PatternSanitizer:
    """Filters mined patterns by the registered constraints."""

    def __init__(self, constraints: Iterable[PatternConstraint] = (),
                 need_to_know: bool = False) -> None:
        self.constraints = list(constraints)
        self.need_to_know = need_to_know

    def add(self, constraint: PatternConstraint) -> PatternConstraint:
        self.constraints.append(constraint)
        return constraint

    def _suppressing_constraint(self, items: frozenset[str],
                                support: float
                                ) -> PatternConstraint | None:
        for constraint in self.constraints:
            if not constraint.matches(items, support):
                continue
            if not constraint.level.releasable_to(self.need_to_know):
                return constraint
        return None

    def sanitize_itemsets(self, frequent: dict[frozenset[str], float]
                          ) -> tuple[dict[frozenset[str], float],
                                     SanitizationReport]:
        """Release only itemsets no constraint suppresses."""
        report = SanitizationReport()
        released: dict[frozenset[str], float] = {}
        for itemset, support in frequent.items():
            constraint = self._suppressing_constraint(itemset, support)
            if constraint is None:
                released[itemset] = support
                report.released += 1
            else:
                report.record_suppression(constraint)
        return released, report

    def sanitize_rules(self, rules: Iterable[Rule]
                       ) -> tuple[list[Rule], SanitizationReport]:
        """Release only rules whose combined items pass every
        constraint (a rule reveals its antecedent AND consequent)."""
        report = SanitizationReport()
        released: list[Rule] = []
        for rule in rules:
            items = rule.antecedent | rule.consequent
            constraint = self._suppressing_constraint(items,
                                                      rule.support)
            if constraint is None:
                released.append(rule)
                report.released += 1
            else:
                report.record_suppression(constraint)
        return released, report


def tabular_transactions(records: Iterable[dict[str, object]],
                         attributes: Iterable[str]
                         ) -> list[frozenset[str]]:
    """Encode table rows as 'attr=value' transactions so the association
    miner (and the sanitizer's attribute logic) can run on tabular data
    — the bridge between §3.3's relational world and basket mining."""
    chosen = list(attributes)
    transactions: list[frozenset[str]] = []
    for record in records:
        items = {f"{name}={record[name]}" for name in chosen
                 if record.get(name) is not None}
        if items:
            transactions.append(frozenset(items))
    return transactions
