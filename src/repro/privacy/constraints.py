"""Privacy constraints (Thuraisingham [13, 14], §3.3).

"The idea is that privacy constraints determine which patterns are
private and to what extent.  For example ... if we have a privacy
constraint that states that names and healthcare records are private then
this information is not released to the general public.  If the
information is semi-private, then it is released to those who have a need
to know."

Three privacy levels over (table, column) targets, plus optional content
conditions and *association constraints* — pairs of columns that are only
sensitive when released *together* (name alone is fine, diagnosis alone
is fine, name+diagnosis identifies a patient's condition).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.core.errors import ConfigurationError


class PrivacyLevel(enum.IntEnum):
    """How restricted a piece of information is."""

    PUBLIC = 0        # released to anyone
    SEMI_PRIVATE = 1  # released only to need-to-know subjects
    PRIVATE = 2       # never released

    def releasable_to(self, need_to_know: bool) -> bool:
        if self is PrivacyLevel.PUBLIC:
            return True
        if self is PrivacyLevel.SEMI_PRIVATE:
            return need_to_know
        return False


RowCondition = Callable[[Mapping[str, object]], bool]


@dataclass(frozen=True)
class PrivacyConstraint:
    """One constraint: (table, column) is *level*, maybe conditionally.

    ``condition`` narrows the constraint to matching rows — "records of
    VIP patients are private" — a content-based privacy constraint in
    [13]'s terminology.
    """

    table: str
    column: str
    level: PrivacyLevel
    condition: RowCondition | None = None
    name: str = ""

    def applies_to_row(self, row: Mapping[str, object]) -> bool:
        if self.condition is None:
            return True
        try:
            return bool(self.condition(row))
        except Exception as _exc:  # noqa: deliberate broad swallow —
            # conditions are arbitrary user code; a broken one must
            # fail closed and keep protecting the row.
            return True

    def __repr__(self) -> str:
        label = self.name or f"{self.table}.{self.column}"
        cond = " (conditional)" if self.condition else ""
        return f"PrivacyConstraint({label}={self.level.name}{cond})"


@dataclass(frozen=True)
class AssociationConstraint:
    """Columns that are sensitive only in combination.

    Releasing any proper subset of ``columns`` (for one row / one query
    context) is fine; releasing all of them together violates privacy at
    ``level``.  This is the "inference problem" primitive: individually
    safe queries that *together* complete the association are what the
    inference controller must catch.
    """

    table: str
    columns: frozenset[str]
    level: PrivacyLevel
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.columns) < 2:
            raise ConfigurationError(
                "association constraints need at least two columns")

    def completed_by(self, released_columns: Iterable[str]) -> bool:
        return self.columns <= set(released_columns)

    def __repr__(self) -> str:
        label = self.name or "+".join(sorted(self.columns))
        return (f"AssociationConstraint({self.table}:{label}="
                f"{self.level.name})")


class PrivacyConstraintSet:
    """The constraint catalog consulted by the privacy controller."""

    def __init__(self) -> None:
        self._column: dict[str, list[PrivacyConstraint]] = {}
        self._association: dict[str, list[AssociationConstraint]] = {}

    def add(self, constraint: PrivacyConstraint) -> PrivacyConstraint:
        self._column.setdefault(constraint.table, []).append(constraint)
        return constraint

    def add_association(self, constraint: AssociationConstraint
                        ) -> AssociationConstraint:
        self._association.setdefault(constraint.table, []).append(constraint)
        return constraint

    def protect(self, table: str, column: str, level: PrivacyLevel,
                condition: RowCondition | None = None,
                name: str = "") -> PrivacyConstraint:
        return self.add(PrivacyConstraint(table, column, level,
                                          condition, name))

    def protect_together(self, table: str, columns: Iterable[str],
                         level: PrivacyLevel = PrivacyLevel.PRIVATE,
                         name: str = "") -> AssociationConstraint:
        return self.add_association(AssociationConstraint(
            table, frozenset(columns), level, name))

    def tables(self) -> list[str]:
        """Every table any constraint mentions (for static analysis)."""
        return sorted(set(self._column) | set(self._association))

    def column_constraints(self, table: str) -> list[PrivacyConstraint]:
        return list(self._column.get(table, ()))

    def association_constraints(self, table: str
                                ) -> list[AssociationConstraint]:
        return list(self._association.get(table, ()))

    def level_for(self, table: str, column: str,
                  row: Mapping[str, object] | None = None) -> PrivacyLevel:
        """The strictest applicable level for one cell."""
        level = PrivacyLevel.PUBLIC
        for constraint in self._column.get(table, ()):
            if constraint.column != column:
                continue
            if row is not None and not constraint.applies_to_row(row):
                continue
            if row is None and constraint.condition is not None:
                # Without row context a conditional constraint must be
                # assumed to apply (fail closed).
                pass
            level = max(level, constraint.level)
        return level

    def constraint_count(self) -> int:
        return (sum(len(v) for v in self._column.values())
                + sum(len(v) for v in self._association.values()))
