"""Multiparty privacy-preserving mining (Clifton et al. [7], §3.3).

"Clifton has proposed the use of the multiparty security policy approach
for carrying out privacy sensitive data mining."  The canonical
primitive is the *secure sum*: K parties each hold a private count; they
compute the total without any party learning another's value.

Protocol (the classic ring scheme):

1. The initiator adds a random mask r to its value and passes the sum on;
2. each party adds its own value and forwards;
3. the initiator subtracts r from what comes back — the exact total.

Every message a party sees is value + r + (partial sums), uniformly
distributed mod M, so nothing about individual inputs leaks (collusion
of a party's two neighbours defeats it, as in the literature —
documented, and testable via :func:`collusion_reconstructs`).

On top of secure sum, :func:`distributed_apriori` mines association
rules over *horizontally partitioned* data: each party counts candidate
itemsets locally; global supports come from secure sums; results equal
centralized mining exactly — with message cost O(K) per itemset, which
benchmark E12 reports.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.privacy.association import (
    Transaction,
    apriori,
    support_counts,
)

#: Modulus for masked sums; must exceed any real total.
MODULUS = 2 ** 61 - 1


@dataclass
class Party:
    """One data holder in the ring."""

    name: str
    transactions: list[Transaction]
    messages_seen: list[int] = field(default_factory=list)

    def local_count(self, itemset: frozenset[str]) -> int:
        return sum(1 for basket in self.transactions if itemset <= basket)


@dataclass
class SecureSumTrace:
    """The result of one secure-sum round, with audit info."""

    total: int
    messages: int
    observed_by_party: dict[str, int]


def secure_sum(values: Sequence[int], party_names: Sequence[str],
               rng: random.Random) -> SecureSumTrace:
    """Ring secure sum over the given per-party values."""
    if len(values) != len(party_names) or not values:
        raise ValueError("need one value per party, at least one party")
    if any(v < 0 or v >= MODULUS for v in values):
        raise ValueError("values must be in [0, MODULUS)")
    mask = rng.randrange(MODULUS)
    observed: dict[str, int] = {}
    running = (values[0] + mask) % MODULUS
    messages = 1
    for name, value in zip(party_names[1:], values[1:]):
        observed[name] = running  # what this party receives
        running = (running + value) % MODULUS
        messages += 1
    observed[party_names[0]] = running  # initiator receives the loop back
    total = (running - mask) % MODULUS
    return SecureSumTrace(total, messages, observed)


def collusion_reconstructs(trace: SecureSumTrace, values: Sequence[int],
                           party_names: Sequence[str],
                           target_index: int) -> bool:
    """Can the two ring neighbours of party *target_index* recover its
    value by subtracting what they saw?  (They can — the documented
    collusion weakness; the test asserts both directions.)"""
    if not 0 < target_index < len(party_names) - 1:
        return False  # initiator and last party have different views
    before = trace.observed_by_party[party_names[target_index]]
    after = trace.observed_by_party[party_names[target_index + 1]]
    recovered = (after - before) % MODULUS
    return recovered == values[target_index] % MODULUS


@dataclass
class MiningOutcome:
    """What distributed mining produced, plus its cost."""

    frequent: dict[frozenset[str], float]
    secure_sum_rounds: int
    messages: int


def distributed_apriori(parties: Sequence[Party], min_support: float,
                        max_size: int = 3,
                        seed: int = 0) -> MiningOutcome:
    """Apriori over horizontally partitioned data via secure sums.

    Global support(S) = Σ_k local_count_k(S), computed with one secure
    sum per candidate itemset per level, so no party reveals its local
    counts.  The result is *identical* to centralized Apriori over the
    union — that exactness is what E12 asserts.
    """
    rng = random.Random(seed)
    names = [p.name for p in parties]
    total_rows = sum(len(p.transactions) for p in parties)
    if total_rows == 0:
        return MiningOutcome({}, 0, 0)
    threshold = min_support * total_rows

    items = sorted({item for party in parties
                    for basket in party.transactions for item in basket})
    current = [frozenset([item]) for item in items]
    frequent: dict[frozenset[str], float] = {}
    rounds = 0
    messages = 0
    size = 1
    while current and size <= max_size:
        level: dict[frozenset[str], int] = {}
        for itemset in current:
            values = [party.local_count(itemset) for party in parties]
            trace = secure_sum(values, names, rng)
            rounds += 1
            messages += trace.messages
            if trace.total >= threshold:
                level[itemset] = trace.total
        for itemset, count in level.items():
            frequent[itemset] = count / total_rows
        survivors = sorted(level, key=lambda s: sorted(s))
        candidates: set[frozenset[str]] = set()
        for first, second in itertools.combinations(survivors, 2):
            union = first | second
            if len(union) != size + 1:
                continue
            if all(frozenset(sub) in level
                   for sub in itertools.combinations(union, size)):
                candidates.add(union)
        current = sorted(candidates, key=lambda s: sorted(s))
        size += 1
    return MiningOutcome(frequent, rounds, messages)


def centralized_apriori(parties: Sequence[Party], min_support: float,
                        max_size: int = 3) -> dict[frozenset[str], float]:
    """The baseline that pools everything — what [7] wants to avoid."""
    pooled: list[Transaction] = []
    for party in parties:
        pooled.extend(party.transactions)
    return apriori(pooled, min_support, max_size)


def partition_transactions(transactions: Iterable[Iterable[str]],
                           party_count: int,
                           seed: int = 0) -> list[Party]:
    """Horizontally partition a transaction list across K parties."""
    rng = random.Random(seed)
    baskets = [frozenset(t) for t in transactions]
    parties = [Party(f"party{i}", []) for i in range(party_count)]
    for basket in baskets:
        parties[rng.randrange(party_count)].transactions.append(basket)
    return parties
