"""Privacy-preserving data mining by randomization (Agrawal–Srikant [1]).

"The idea here is to continue with mining but at the same time ensure
privacy as much as possible" (§3.3).  The reconstruction-based approach:

1. Each individual perturbs their numeric value before release:
   ``w = x + y`` with ``y`` drawn from a known noise distribution
   (:func:`randomize`).
2. The miner never sees true values, yet can recover the *distribution*
   of ``x`` with the iterative Bayesian reconstruction of [1]
   (:func:`reconstruct_distribution`).
3. Privacy is quantified by the confidence-interval width of the noise
   (:func:`privacy_interval`); utility by how well the reconstructed
   distribution matches the true one (:func:`histogram_distance`).

Benchmark E7 sweeps the noise scale and reports the privacy/utility
trade-off, the shape result of [1]: aggregate patterns survive noise
levels that make individual values meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Additive noise: uniform on [-scale, scale] or gaussian(0, scale)."""

    kind: str  # 'uniform' | 'gaussian'
    scale: float

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "gaussian"):
            raise ValueError(f"unknown noise kind {self.kind!r}")
        if self.scale < 0:
            raise ValueError("noise scale must be non-negative")

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        if self.scale == 0:
            return np.zeros(size)
        if self.kind == "uniform":
            return rng.uniform(-self.scale, self.scale, size)
        return rng.normal(0.0, self.scale, size)

    def density(self, values: np.ndarray) -> np.ndarray:
        """The noise pdf evaluated at *values*."""
        if self.scale == 0:
            return np.where(np.isclose(values, 0.0), 1.0, 0.0)
        if self.kind == "uniform":
            inside = np.abs(values) <= self.scale
            return inside / (2.0 * self.scale)
        coefficient = 1.0 / (self.scale * np.sqrt(2 * np.pi))
        return coefficient * np.exp(-0.5 * (values / self.scale) ** 2)


def randomize(values: np.ndarray, noise: NoiseModel,
              seed: int = 0) -> np.ndarray:
    """Client-side perturbation: w = x + y."""
    rng = np.random.default_rng(seed)
    values = np.asarray(values, dtype=float)
    return values + noise.sample(len(values), rng)


def privacy_interval(noise: NoiseModel, confidence: float = 0.95) -> float:
    """Width of the interval within which the true value lies with the
    given confidence — [1]'s privacy metric.  Larger is more private."""
    if noise.scale == 0:
        return 0.0
    if noise.kind == "uniform":
        return 2.0 * noise.scale * confidence
    # Gaussian: width of the central `confidence` mass.
    from math import erf, sqrt

    # Solve erf(z/sqrt(2)) = confidence by bisection (scipy-free).
    low, high = 0.0, 10.0
    for _ in range(80):
        mid = (low + high) / 2
        if erf(mid / sqrt(2.0)) < confidence:
            low = mid
        else:
            high = mid
    return 2.0 * high * noise.scale


def reconstruct_distribution(randomized: np.ndarray, noise: NoiseModel,
                             bins: np.ndarray,
                             iterations: int = 50) -> np.ndarray:
    """Iterative Bayesian reconstruction of the original distribution.

    Parameters
    ----------
    randomized:
        The released values w_i = x_i + y_i.
    noise:
        The (public) noise model.
    bins:
        Bin *edges* for the reconstructed distribution (len = #bins + 1).
    iterations:
        EM-style refinement rounds; [1] reports fast convergence.

    Returns the estimated probability mass per bin (sums to 1).
    """
    randomized = np.asarray(randomized, dtype=float)
    edges = np.asarray(bins, dtype=float)
    centers = (edges[:-1] + edges[1:]) / 2.0
    bin_count = len(centers)
    if noise.scale == 0:
        histogram, _ = np.histogram(randomized, bins=edges)
        total = histogram.sum()
        return (histogram / total if total else
                np.full(bin_count, 1.0 / bin_count))
    estimate = np.full(bin_count, 1.0 / bin_count)
    # density[i, a] = f_Y(w_i - center_a)
    density = noise.density(randomized[:, None] - centers[None, :])
    for _ in range(iterations):
        weighted = density * estimate[None, :]
        row_sums = weighted.sum(axis=1, keepdims=True)
        # Rows where the noise density is zero everywhere contribute
        # nothing (can happen with uniform noise and out-of-range bins).
        valid = row_sums[:, 0] > 0
        if not valid.any():
            break
        posterior = weighted[valid] / row_sums[valid]
        updated = posterior.mean(axis=0)
        if np.allclose(updated, estimate, atol=1e-9):
            estimate = updated
            break
        estimate = updated
    total = estimate.sum()
    return estimate / total if total else estimate


def true_distribution(values: np.ndarray, bins: np.ndarray) -> np.ndarray:
    """The actual probability mass per bin, for comparison."""
    histogram, _ = np.histogram(np.asarray(values, dtype=float), bins=bins)
    total = histogram.sum()
    return histogram / total if total else histogram.astype(float)


def histogram_distance(estimated: np.ndarray,
                       actual: np.ndarray) -> float:
    """Total-variation distance between two distributions (0 = perfect,
    1 = disjoint) — the reconstruction-accuracy metric for E7."""
    estimated = np.asarray(estimated, dtype=float)
    actual = np.asarray(actual, dtype=float)
    return 0.5 * float(np.abs(estimated - actual).sum())


def individual_error(original: np.ndarray,
                     randomized: np.ndarray) -> float:
    """Mean absolute error an attacker makes using released values as
    estimates of true ones — shows individual values are protected."""
    original = np.asarray(original, dtype=float)
    randomized = np.asarray(randomized, dtype=float)
    return float(np.abs(original - randomized).mean())
