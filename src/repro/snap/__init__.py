"""Copy-on-write snapshots with epoch-based publication (``repro.snap``).

The paper's read-mostly stores — policy bases, XML repositories, UDDI
registries — serve web-scale subject populations whose security
semantics must never drift under concurrent update.  Third-party
publishing (Bertino et al.) shows the winning shape: publish an
immutable, signed snapshot and serve every read from it.  This package
generalizes that shape into a store-agnostic read path:

* :mod:`repro.snap.frozen` — immutable XML trees with structural
  sharing: a write copies only the root-to-target spine, every
  untouched subtree is shared by reference (no ``deepcopy`` anywhere);
* :mod:`repro.snap.epoch` — :class:`EpochManager` atomically swaps the
  *current snapshot* pointer; readers pin an epoch, writers prepare the
  next one, retired epochs are reclaimed only after their last reader
  releases;
* :mod:`repro.snap.intern` — per-node serialized-fragment and
  Merkle-subtree caches keyed by shared node identity, so unchanged
  subtrees reuse their bytes across requests *and across epochs*;
* :mod:`repro.snap.policy` — a persistent policy base whose ``freeze()``
  is O(1), plus :class:`EpochalPolicyEngine`, a lock-free drop-in for
  the gateway's ``decide_batch`` engine slot;
* :mod:`repro.snap.xmlstore` / :mod:`repro.snap.uddi` — snapshot
  variants of the XML database and UDDI registry;
* :mod:`repro.snap.dissemination` — packet packaging over snapshots
  with cross-epoch fragment interning.
"""

from repro.snap.epoch import EpochManager, EpochStats
from repro.snap.frozen import (
    FrozenDocument,
    FrozenElement,
    freeze_document,
    freeze_element,
    thaw_document,
    thaw_element,
)
from repro.snap.intern import InternPool
from repro.snap.policy import (
    EpochalPolicyEngine,
    PolicySnapshot,
    SnapshotPolicyBase,
)
from repro.snap.uddi import SnapshotUddiRegistry, UddiSnapshot
from repro.snap.xmlstore import SnapshotXmlDatabase, XmlSnapshot
from repro.snap.dissemination import SnapshotDisseminator

__all__ = [
    "EpochManager",
    "EpochStats",
    "EpochalPolicyEngine",
    "FrozenDocument",
    "FrozenElement",
    "InternPool",
    "PolicySnapshot",
    "SnapshotDisseminator",
    "SnapshotPolicyBase",
    "SnapshotUddiRegistry",
    "SnapshotXmlDatabase",
    "UddiSnapshot",
    "XmlSnapshot",
    "freeze_document",
    "freeze_element",
    "thaw_document",
    "thaw_element",
]
