"""Snapshot UDDI registry: persistent core structures, interned digests.

The registry's five core data structures are already immutable
dataclasses (:mod:`repro.uddi.model`), so the snapshot layer only has to
make the *containers* persistent: businesses/owners/tModels become
copy-on-write dicts and the assertion log a tuple.  A publisher-API
write copies the one touched container; :meth:`SnapshotUddiRegistry.freeze`
is O(1) and :class:`UddiSnapshot` serves every inquiry pattern of §2.2
lock-free against that capture.

Digest interning: the canonical state parts
(:func:`~repro.uddi.registry.business_part` et al.) each hash an
entity's ``repr`` — O(size of entity) work that is identical whenever
the entity object is identical.  Since unchanged entities are shared by
reference across epochs, a bounded cache keyed by the (hashable) entity
objects makes :meth:`UddiSnapshot.state_parts` touch only changed
entities after the first computation, and the fully-combined
:meth:`~UddiSnapshot.state_digest` is memoized per snapshot.  Digests
remain byte-identical to a live :class:`~repro.uddi.registry.UddiRegistry`
holding equal state — the convergence-oracle contract.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from fnmatch import fnmatchcase

from repro.core.errors import RegistryError
from repro.crypto.hashing import combine, sha256_hex
from repro.perf.cache import Generation, LRUCache, MISS
from repro.snap.epoch import EpochManager
from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    PublisherAssertion,
    TModel,
)
from repro.uddi.registry import (
    BusinessOverview,
    ServiceOverview,
    assertion_part,
    business_part,
    tmodel_part,
)


class UddiSnapshot:
    """One immutable epoch of the registry; every read is lock-free."""

    def __init__(self, businesses: dict, owners: dict, tmodels: dict,
                 assertions: tuple, generation: int,
                 parts_cache: LRUCache) -> None:
        self._businesses = businesses
        self._owners = owners
        self._tmodels = tmodels
        self._assertions = assertions
        self._generation = generation
        self._parts_cache = parts_cache
        self._digest: str | None = None
        self.epoch: int | None = None

    @property
    def generation(self) -> int:
        return self._generation

    def __len__(self) -> int:
        return len(self._businesses)

    # -- drill-down inquiries (get_xxx) ----------------------------------

    def get_business_detail(self, business_key: str) -> BusinessEntity:
        try:
            return self._businesses[business_key]
        except KeyError:
            raise RegistryError(
                f"unknown business {business_key!r}") from None

    def get_service_detail(self, service_key: str) -> BusinessService:
        for entity in self._businesses.values():
            for service in entity.services:
                if service.service_key == service_key:
                    return service
        raise RegistryError(f"unknown service {service_key!r}")

    def get_binding_detail(self, binding_key: str) -> BindingTemplate:
        for entity in self._businesses.values():
            for service in entity.services:
                for binding in service.bindings:
                    if binding.binding_key == binding_key:
                        return binding
        raise RegistryError(f"unknown binding {binding_key!r}")

    def get_tmodel_detail(self, tmodel_key: str) -> TModel:
        try:
            return self._tmodels[tmodel_key]
        except KeyError:
            raise RegistryError(
                f"unknown tModel {tmodel_key!r}") from None

    def owner_of(self, business_key: str) -> str:
        try:
            return self._owners[business_key]
        except KeyError:
            raise RegistryError(
                f"unknown business {business_key!r}") from None

    # -- browse inquiries (find_xxx) -------------------------------------

    def find_business(self, name_pattern: str = "*"
                      ) -> list[BusinessOverview]:
        rows = [
            BusinessOverview(e.business_key, e.name, e.description,
                             len(e.services))
            for e in self._businesses.values()
            if fnmatchcase(e.name.lower(), name_pattern.lower())]
        return sorted(rows, key=lambda r: r.business_key)

    def find_service(self, name_pattern: str = "*",
                     category: str | None = None) -> list[ServiceOverview]:
        rows: list[ServiceOverview] = []
        for entity in self._businesses.values():
            for service in entity.services:
                if not fnmatchcase(service.name.lower(),
                                   name_pattern.lower()):
                    continue
                if category is not None and service.category != category:
                    continue
                rows.append(ServiceOverview(
                    entity.business_key, entity.name,
                    service.service_key, service.name, service.category))
        return sorted(rows, key=lambda r: r.service_key)

    def find_tmodel(self, name_pattern: str = "*") -> list[TModel]:
        return sorted(
            (t for t in self._tmodels.values()
             if fnmatchcase(t.name.lower(), name_pattern.lower())),
            key=lambda t: t.tmodel_key)

    def find_related_businesses(self, business_key: str) -> list[str]:
        forward = {(a.from_key, a.to_key, a.relationship)
                   for a in self._assertions}
        related: set[str] = set()
        for from_key, to_key, relationship in forward:
            if (to_key, from_key, relationship) not in forward:
                continue
            if from_key == business_key:
                related.add(to_key)
            elif to_key == business_key:
                related.add(from_key)
        return sorted(related)

    # -- state fingerprinting --------------------------------------------

    def _interned(self, key, compute) -> str:
        cached = self._parts_cache.get(key)
        if cached is not MISS:
            return cached
        part = compute()
        self._parts_cache.put(key, part)
        return part

    def state_parts(self) -> list[tuple[tuple, str]]:
        """Canonical digest parts, byte-identical to the live registry's
        :meth:`~repro.uddi.registry.UddiRegistry.state_parts`; each
        part is computed once per distinct entity across all epochs."""
        parts: list[tuple[tuple, str]] = []
        for key in sorted(self._businesses):
            entity = self._businesses[key]
            owner = self._owners.get(key, "")
            parts.append(((0, key), self._interned(
                ("biz", key, owner, entity),
                lambda k=key, o=owner, e=entity: business_part(k, o, e))))
        for key in sorted(self._tmodels):
            tmodel = self._tmodels[key]
            parts.append(((1, key), self._interned(
                ("tmodel", key, tmodel),
                lambda k=key, t=tmodel: tmodel_part(k, t))))
        for assertion in sorted(self._assertions, key=repr):
            parts.append(((2, repr(assertion)), self._interned(
                ("assert", assertion),
                lambda a=assertion: assertion_part(a))))
        return parts

    def state_digest(self) -> str:
        """Digest over the whole observable state, memoized (a snapshot
        can never change, so computing it twice is pure waste)."""
        if self._digest is None:
            parts = [part for _, part in self.state_parts()]
            self._digest = (combine(*parts) if parts
                            else sha256_hex("empty-registry"))
        return self._digest

    # -- enumeration -----------------------------------------------------

    def business_keys(self) -> list[str]:
        return sorted(self._businesses)

    def assertions(self) -> list[PublisherAssertion]:
        return list(self._assertions)

    def __repr__(self) -> str:
        return (f"<UddiSnapshot gen={self._generation} epoch={self.epoch} "
                f"businesses={len(self._businesses)}>")


class SnapshotUddiRegistry:
    """Writer-side registry; the publisher API publishes epochs.

    Ownership rules are exactly :class:`~repro.uddi.registry.UddiRegistry`'s;
    only the storage discipline differs (copy-on-write containers,
    publication through an :class:`~repro.snap.epoch.EpochManager`).
    """

    def __init__(self, name: str = "snapregistry",
                 epochs: EpochManager | None = None,
                 parts_cache_size: int = 100_000) -> None:
        self.name = name
        self.epochs = epochs if epochs is not None else EpochManager()
        self._lock = threading.RLock()
        self._businesses: dict[str, BusinessEntity] = {}
        self._owners: dict[str, str] = {}
        self._tmodels: dict[str, TModel] = {}
        self._assertions: tuple[PublisherAssertion, ...] = ()
        self._generation = Generation()
        self._parts_cache = LRUCache(maxsize=parts_cache_size)
        self._deferred = 0
        self.publish_count = 0
        self.publish()

    @property
    def generation(self) -> int:
        return self._generation.value

    @property
    def parts_cache(self) -> LRUCache:
        """The shared per-entity digest-part cache (for stats/benches)."""
        return self._parts_cache

    # -- publication -----------------------------------------------------

    def freeze(self) -> UddiSnapshot:
        with self._lock:
            return UddiSnapshot(self._businesses, self._owners,
                                self._tmodels, self._assertions,
                                self._generation.value, self._parts_cache)

    def publish(self) -> UddiSnapshot:
        snapshot = self.freeze()
        self.epochs.publish(snapshot)
        return snapshot

    def current(self) -> UddiSnapshot:
        return self.epochs.current()

    @contextmanager
    def writer(self):
        """Batch several publisher-API calls into one published epoch."""
        with self._lock:
            self._deferred += 1
            try:
                yield self
            finally:
                self._deferred -= 1
                if self._deferred == 0:
                    self.publish()

    def _commit(self) -> None:
        self._generation.bump()
        self.publish_count += 1
        if self._deferred == 0:
            self.publish()

    # -- publisher API ---------------------------------------------------

    def save_business(self, entity: BusinessEntity,
                      publisher: str) -> BusinessEntity:
        with self._lock:
            existing_owner = self._owners.get(entity.business_key)
            if existing_owner is not None and existing_owner != publisher:
                raise RegistryError(
                    f"business {entity.business_key!r} belongs to "
                    f"{existing_owner!r}, not {publisher!r}")
            businesses = dict(self._businesses)
            businesses[entity.business_key] = entity
            owners = dict(self._owners)
            owners[entity.business_key] = publisher
            self._businesses = businesses
            self._owners = owners
            self._commit()
        return entity

    def delete_business(self, business_key: str, publisher: str) -> None:
        with self._lock:
            owner = self._owners.get(business_key)
            if owner is None:
                raise RegistryError(f"unknown business {business_key!r}")
            if owner != publisher:
                raise RegistryError(
                    f"business {business_key!r} belongs to {owner!r}")
            businesses = dict(self._businesses)
            del businesses[business_key]
            owners = dict(self._owners)
            del owners[business_key]
            assertions = tuple(
                a for a in self._assertions
                if business_key not in (a.from_key, a.to_key))
            with self.writer():
                self._businesses = businesses
                self._owners = owners
                self._assertions = assertions
                self._commit()

    def save_tmodel(self, tmodel: TModel, publisher: str) -> TModel:
        with self._lock:
            tmodels = dict(self._tmodels)
            tmodels[tmodel.tmodel_key] = tmodel
            self._tmodels = tmodels
            self._commit()
        return tmodel

    def add_assertion(self, assertion: PublisherAssertion,
                      publisher: str) -> None:
        with self._lock:
            if self._owners.get(assertion.from_key) != publisher:
                raise RegistryError(
                    "assertions must be filed by the owner of their "
                    "fromKey")
            self._assertions = self._assertions + (assertion,)
            self._commit()

    def owner_of(self, business_key: str) -> str:
        with self._lock:
            try:
                return self._owners[business_key]
            except KeyError:
                raise RegistryError(
                    f"unknown business {business_key!r}") from None

    def __len__(self) -> int:
        return len(self._businesses)
