"""Epoch-based snapshot publication and reclamation.

The concurrency contract of the snapshot read path:

* **publish** — a writer freezes its store into an immutable snapshot
  and swaps the *current* pointer.  The swap is a single reference
  assignment under the manager's mutex; readers never take that mutex
  on the fast path (:meth:`EpochManager.current` is one attribute read).
* **pin** — a reader that needs a stable epoch across several
  operations calls :meth:`acquire` / :meth:`release` (or the
  :meth:`reading` context manager), which refcounts the epoch.
* **reclaim** — when a newer snapshot is published, the previous one is
  *retired*.  A retired epoch is reclaimed (its ``close()`` hook runs,
  caches pinned by it can drop) only when its refcount reaches zero:
  a reader holding epoch N across an arbitrary writer burst keeps N
  alive, and N is reclaimed at the moment of that reader's release —
  the epoch-based-reclamation half of the lock-free read path.

Double release raises :class:`~repro.core.errors.EpochRetired` rather
than silently corrupting the refcounts.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.errors import EpochRetired, SnapshotError


@dataclass
class EpochStats:
    """Publication/reclamation counters (benchmarks report these)."""

    published: int = 0
    retired: int = 0
    reclaimed: int = 0
    acquires: int = 0
    releases: int = 0

    def snapshot(self) -> dict[str, int]:
        return {"published": self.published, "retired": self.retired,
                "reclaimed": self.reclaimed, "acquires": self.acquires,
                "releases": self.releases}


class EpochManager:
    """Atomically-published snapshot pointer with refcounted retirement.

    Snapshot objects only need a writable ``epoch`` attribute (set once
    at publish) and may provide a ``close()`` method, called exactly
    once at reclamation.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._current = None
        self._next_epoch = 0
        # epoch -> refcount of readers still pinning it.
        self._refs: dict[int, int] = {}
        # epoch -> snapshot, for snapshots superseded but still pinned.
        self._retired: dict[int, object] = {}
        self._reclaimed: list[int] = []
        # durability key (checkpoint LSN or digest) -> epoch held by a
        # retain_until pin that has not been released yet.
        self._durable_pins: dict[object, int] = {}
        self.stats = EpochStats()

    # -- publication (writer side) --------------------------------------

    def publish(self, snapshot) -> object:
        """Make *snapshot* the current epoch; retire the previous one."""
        if snapshot is None:
            raise SnapshotError("cannot publish a None snapshot")
        with self._mutex:
            snapshot.epoch = self._next_epoch
            self._next_epoch += 1
            previous = self._current
            self._current = snapshot
            self._refs.setdefault(snapshot.epoch, 0)
            self.stats.published += 1
            if previous is not None:
                self.stats.retired += 1
                if self._refs.get(previous.epoch, 0) > 0:
                    self._retired[previous.epoch] = previous
                else:
                    self._reclaim_locked(previous)
        return snapshot

    def _reclaim_locked(self, snapshot) -> None:
        self._refs.pop(snapshot.epoch, None)
        self._retired.pop(snapshot.epoch, None)
        self._reclaimed.append(snapshot.epoch)
        self.stats.reclaimed += 1
        close = getattr(snapshot, "close", None)
        if close is not None:
            close()

    # -- reading (lock-free fast path + pinned slow path) ---------------

    def current(self):
        """The current snapshot — one attribute read, no locks.

        Safe for single-operation reads: the returned snapshot is
        immutable and remains valid for the duration of the reference.
        Reads spanning several operations that must observe *one* epoch
        should pin it with :meth:`acquire`/:meth:`reading`.
        """
        snapshot = self._current
        if snapshot is None:
            raise SnapshotError("no snapshot published yet")
        return snapshot

    def acquire(self):
        """Pin and return the current snapshot (refcounted)."""
        with self._mutex:
            snapshot = self._current
            if snapshot is None:
                raise SnapshotError("no snapshot published yet")
            self._refs[snapshot.epoch] = self._refs.get(snapshot.epoch,
                                                        0) + 1
            self.stats.acquires += 1
            return snapshot

    def release(self, snapshot) -> None:
        """Drop a pin; reclaims the epoch if it is retired and unheld."""
        with self._mutex:
            count = self._refs.get(snapshot.epoch)
            if count is None or count <= 0:
                raise EpochRetired(
                    f"epoch {snapshot.epoch} has no outstanding pins "
                    f"(double release?)")
            self._refs[snapshot.epoch] = count - 1
            self.stats.releases += 1
            if (count - 1 == 0
                    and snapshot.epoch in self._retired):
                self._reclaim_locked(self._retired[snapshot.epoch])

    def retain_until(self, snapshot, key) -> "Callable[[], None]":
        """Pin *snapshot*'s epoch for durability work keyed by *key*
        (a checkpoint LSN or digest); returns the release callable.

        Checkpointing serializes a snapshot while writers keep
        publishing: without this pin, the epoch being serialized could
        be retired *and reclaimed* mid-serialization (its ``close()``
        hook dropping caches out from under the serializer).  The pin
        holds exactly like a reader's, and the returned callable — to
        be invoked once the checkpoint file is fsynced — releases it
        idempotently.

        Pinning an already-reclaimed epoch raises
        :class:`~repro.core.errors.EpochRetired`: the caller's snapshot
        reference is stale and serializing it would checkpoint a state
        that reclamation has already dismantled.
        """
        with self._mutex:
            epoch = getattr(snapshot, "epoch", None)
            if epoch is None or epoch not in self._refs:
                raise EpochRetired(
                    f"epoch {epoch} is already reclaimed; cannot "
                    f"retain it for durability key {key!r}")
            self._refs[epoch] = self._refs[epoch] + 1
            self._durable_pins[key] = epoch
            self.stats.acquires += 1

        released = threading.Event()

        def release() -> None:
            if released.is_set():
                return
            released.set()
            with self._mutex:
                self._durable_pins.pop(key, None)
            self.release(snapshot)

        return release

    def durable_pins(self) -> dict[object, int]:
        """key -> epoch for every outstanding retain_until pin."""
        with self._mutex:
            return dict(self._durable_pins)

    @contextmanager
    def reading(self) -> Iterator[object]:
        snapshot = self.acquire()
        try:
            yield snapshot
        finally:
            self.release(snapshot)

    # -- introspection ---------------------------------------------------

    def current_epoch(self) -> int:
        return self.current().epoch

    def retired_epochs(self) -> list[int]:
        """Epochs superseded but still pinned by at least one reader."""
        with self._mutex:
            return sorted(self._retired)

    def reclaimed_epochs(self) -> list[int]:
        """Epochs fully reclaimed, in reclamation order."""
        with self._mutex:
            return list(self._reclaimed)

    def pins(self, epoch: int) -> int:
        with self._mutex:
            return self._refs.get(epoch, 0)
