"""Immutable XML trees with structural sharing (persistent-map style).

A :class:`FrozenElement` is the snapshot layer's node type: tag,
attribute dict (never mutated after construction) and a children tuple
of ``FrozenElement | str``.  Two properties make it the right substrate
for copy-on-write snapshots:

* **no parent pointer** — a subtree can sit in any number of trees at
  once, so an edit rebuilds only the root-to-target spine
  (:func:`replace_spine`) and shares every untouched sibling subtree by
  reference with the previous version;
* **identity is history** — an unchanged subtree in the next epoch *is*
  the same Python object, which is what lets the interning caches
  (:mod:`repro.snap.intern`) reuse serialized bytes and Merkle hashes
  across epochs with a plain identity-keyed lookup.

Frozen nodes duck-type the read surface of
:class:`~repro.xmldb.model.Element` (``tag`` / ``attributes`` /
``children`` / ``element_children`` / ``text`` / ``iter`` / ``find`` /
``find_all``), so the XPath evaluator and the canonical serializer work
on them unmodified — byte-identical to the live mutable tree, which the
snapshot equivalence oracles depend on.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.core.errors import SnapshotError
from repro.xmldb.model import Document, Element


class FrozenElement:
    """One immutable XML element; treat ``attributes`` as read-only."""

    __slots__ = ("tag", "attributes", "children")

    def __init__(self, tag: str, attributes: dict[str, str] | None = None,
                 children: tuple = ()) -> None:
        self.tag = tag
        self.attributes: dict[str, str] = attributes or {}
        self.children: tuple = children

    # -- Element-compatible read surface --------------------------------

    @property
    def element_children(self) -> list["FrozenElement"]:
        return [c for c in self.children if not isinstance(c, str)]

    @property
    def text(self) -> str:
        return "".join(c for c in self.children if isinstance(c, str))

    def iter(self) -> Iterator["FrozenElement"]:
        """Depth-first pre-order, iterative so depth is unbounded."""
        stack: list[FrozenElement] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.element_children))

    def find(self, tag: str) -> "FrozenElement | None":
        for child in self.children:
            if not isinstance(child, str) and child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> list["FrozenElement"]:
        return [c for c in self.children
                if not isinstance(c, str) and c.tag == tag]

    def size(self) -> int:
        return sum(1 for _ in self.iter())

    def __repr__(self) -> str:
        return (f"<FrozenElement {self.tag} attrs={len(self.attributes)} "
                f"children={len(self.children)}>")


class FrozenDocument:
    """An immutable document: a name plus a frozen root.

    ``version`` is constant (snapshots never mutate), so generation-
    stamped caches treat any value computed from a frozen document as
    permanently fresh — the coherence rule of :mod:`repro.perf.cache`
    degenerates to identity.
    """

    __slots__ = ("root", "name")

    def __init__(self, root: FrozenElement, name: str = "") -> None:
        self.root = root
        self.name = name

    @property
    def version(self) -> int:
        return 0

    def iter(self) -> Iterator[FrozenElement]:
        return self.root.iter()

    def size(self) -> int:
        return self.root.size()

    def __repr__(self) -> str:
        return (f"FrozenDocument({self.name!r}, root=<{self.root.tag}>, "
                f"{self.size()} elements)")


# -- freezing and thawing ----------------------------------------------


def freeze_element(node: Element) -> FrozenElement:
    """One structural copy of a mutable tree into frozen form.

    Paid once at store ingestion; every subsequent edit is a spine copy
    and every ``freeze()`` of the store is O(1).
    """
    frozen_children = tuple(
        child if isinstance(child, str) else freeze_element(child)
        for child in node.children)
    return FrozenElement(node.tag, dict(node.attributes), frozen_children)


def freeze_document(document: Document) -> FrozenDocument:
    return FrozenDocument(freeze_element(document.root), document.name)


def thaw_element(node: FrozenElement) -> Element:
    """Materialize a mutable :class:`Element` tree (parent pointers,
    node paths) from a frozen one.  The result is structure-equal and
    serializes byte-identically."""
    thawed = Element(node.tag, dict(node.attributes))
    for child in node.children:
        thawed.append(child if isinstance(child, str)
                      else thaw_element(child))
    return thawed


def thaw_document(document: FrozenDocument) -> Document:
    return Document(thaw_element(document.root), document.name)


# -- node addressing ----------------------------------------------------

_SEGMENT = re.compile(r"^([^\[\]]+)(?:\[(\d+)\])?$")


def _parse_path(path: str) -> list[tuple[str, int]]:
    """``/a/b[2]/c`` → ``[("a", 1), ("b", 2), ("c", 1)]`` (1-based)."""
    stripped = path.strip("/")
    if not stripped:
        raise SnapshotError(f"empty node path {path!r}")
    segments: list[tuple[str, int]] = []
    for raw in stripped.split("/"):
        match = _SEGMENT.match(raw)
        if match is None:
            raise SnapshotError(f"bad node path segment {raw!r} in {path!r}")
        segments.append((match.group(1), int(match.group(2) or 1)))
    return segments


def resolve_spine(root: FrozenElement, path: str
                  ) -> list[tuple[FrozenElement, int]]:
    """Walk *path* from *root*, returning the copy-on-write spine.

    The result is ``[(parent, child_slot), ...]`` from the root down:
    each entry names the position (in ``parent.children``) of the next
    node on the path.  The addressed node itself is
    ``spine[-1][0].children[spine[-1][1]]`` — or *root* when the path
    has exactly one segment.
    """
    segments = _parse_path(path)
    head_tag, head_index = segments[0]
    if root.tag != head_tag or head_index != 1:
        raise SnapshotError(
            f"path {path!r} does not start at root <{root.tag}>")
    spine: list[tuple[FrozenElement, int]] = []
    node = root
    for tag, index in segments[1:]:
        seen = 0
        for slot, child in enumerate(node.children):
            if isinstance(child, str) or child.tag != tag:
                continue
            seen += 1
            if seen == index:
                spine.append((node, slot))
                node = child
                break
        else:
            raise SnapshotError(
                f"no element {tag}[{index}] under <{node.tag}> "
                f"for path {path!r}")
    return spine


def resolve(root: FrozenElement, path: str) -> FrozenElement:
    """The frozen node addressed by a position-qualified *path*."""
    spine = resolve_spine(root, path)
    if not spine:
        return root
    parent, slot = spine[-1]
    return parent.children[slot]  # type: ignore[return-value]


def replace_spine(root: FrozenElement,
                  spine: list[tuple[FrozenElement, int]],
                  replacement: FrozenElement | None) -> FrozenElement:
    """Rebuild the spine with *replacement* at the bottom.

    ``replacement=None`` deletes the addressed node.  Every node not on
    the spine is shared by reference with the previous version — the
    copy-on-write step.
    """
    if not spine:
        if replacement is None:
            raise SnapshotError("cannot delete the document root")
        return replacement
    new_child: FrozenElement | None = replacement
    for parent, slot in reversed(spine):
        if new_child is None:
            children = parent.children[:slot] + parent.children[slot + 1:]
        else:
            children = (parent.children[:slot] + (new_child,)
                        + parent.children[slot + 1:])
        new_child = FrozenElement(parent.tag, parent.attributes, children)
    return new_child


# -- copy-on-write point edits ------------------------------------------


def with_text(root: FrozenElement, path: str, text: str) -> FrozenElement:
    """New root where the node at *path* has its text replaced."""
    spine = resolve_spine(root, path)
    node = root if not spine else spine[-1][0].children[spine[-1][1]]
    children = tuple(c for c in node.children if not isinstance(c, str))
    if text:
        children = (text,) + children
    return replace_spine(root, spine,
                         FrozenElement(node.tag, node.attributes, children))


def with_attribute(root: FrozenElement, path: str,
                   name: str, value: str) -> FrozenElement:
    spine = resolve_spine(root, path)
    node = root if not spine else spine[-1][0].children[spine[-1][1]]
    attributes = dict(node.attributes)
    attributes[name] = value
    return replace_spine(root, spine,
                         FrozenElement(node.tag, attributes, node.children))


def without_attribute(root: FrozenElement, path: str,
                      name: str) -> FrozenElement:
    spine = resolve_spine(root, path)
    node = root if not spine else spine[-1][0].children[spine[-1][1]]
    if name not in node.attributes:
        return root
    attributes = dict(node.attributes)
    del attributes[name]
    return replace_spine(root, spine,
                         FrozenElement(node.tag, attributes, node.children))


def with_appended_child(root: FrozenElement, path: str,
                        child: FrozenElement) -> FrozenElement:
    spine = resolve_spine(root, path)
    node = root if not spine else spine[-1][0].children[spine[-1][1]]
    return replace_spine(
        root, spine,
        FrozenElement(node.tag, node.attributes, node.children + (child,)))


def without_child(root: FrozenElement, path: str) -> FrozenElement:
    """New root with the element at *path* removed (path names the
    child itself, e.g. ``/doc[1]/item[2]``)."""
    spine = resolve_spine(root, path)
    return replace_spine(root, spine, None)


def shared_nodes(old: FrozenElement, new: FrozenElement) -> int:
    """How many of *new*'s elements are shared (by identity) with *old*
    — the structural-sharing metric benchmarks and tests assert on."""
    old_ids = {id(node) for node in old.iter()}
    return sum(1 for node in new.iter() if id(node) in old_ids)
