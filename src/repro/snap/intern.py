"""Identity-keyed interning of derived artifacts (zero-copy reads).

Because frozen subtrees are shared by reference across snapshots, the
*object identity* of a :class:`~repro.snap.frozen.FrozenElement` is a
perfect cache key: if two epochs contain the same node object, every
artifact derived from that subtree — its canonical serialization, its
Merkle hash, a thawed mutable copy — is identical too.  The
:class:`InternPool` exploits this with three bounded caches keyed by the
node objects themselves (which hash by identity; holding them as keys
also pins them, so a collected node's recycled ``id()`` can never alias
an entry):

* **fragments** — canonical serialized bytes per subtree.  A repeat
  read of an unchanged document is a single dict hit; after a point
  edit only the copied spine is re-assembled, every shared subtree
  contributes its cached bytes verbatim;
* **merkle** — Merkle subtree hashes, composed with the same
  :func:`repro.merkle.xml_merkle.node_hash` recurrence as the live
  hashers, so snapshot root hashes are interchangeable with theirs;
* **thawed** — mutable :class:`~repro.xmldb.model.Document` copies
  keyed by frozen root, for consumers that need parent pointers and
  node paths (view computation, dissemination).  Treat them as
  read-only.

The pool is shared across epochs on purpose — that is where the
cross-epoch reuse the benchmarks measure comes from.  All three caches
are plain :class:`~repro.perf.cache.LRUCache` instances (no generation
stamps needed: frozen state never mutates, so an entry can never go
stale, only cold).
"""

from __future__ import annotations

from repro.merkle.xml_merkle import content_hash, node_hash
from repro.perf.cache import LRUCache, MISS
from repro.snap.frozen import FrozenDocument, FrozenElement, thaw_document
from repro.xmldb.model import Document
from repro.xmldb.serializer import escape_attribute, escape_text


class InternPool:
    """Shared caches of per-subtree artifacts, keyed by node identity."""

    def __init__(self, fragment_capacity: int = 200_000,
                 merkle_capacity: int = 200_000,
                 thawed_capacity: int = 256) -> None:
        self._fragments = LRUCache(maxsize=fragment_capacity)
        self._merkle = LRUCache(maxsize=merkle_capacity)
        self._thawed = LRUCache(maxsize=thawed_capacity)

    # -- canonical serialization ----------------------------------------

    def serialize(self, node: FrozenElement) -> str:
        """Canonical serialization of *node*, reusing cached fragments
        of every already-seen subtree (byte-identical to
        :func:`repro.xmldb.serializer.serialize_element`)."""
        cached = self._fragments.get(node)
        if cached is not MISS:
            return cached
        memo: dict[int, str] = {}
        stack: list[tuple[FrozenElement, bool]] = [(node, False)]
        while stack:
            current, ready = stack.pop()
            if ready:
                attrs = "".join(
                    f' {name}="{escape_attribute(value)}"'
                    for name, value in sorted(current.attributes.items()))
                if not current.children:
                    fragment = f"<{current.tag}{attrs}/>"
                else:
                    parts = [f"<{current.tag}{attrs}>"]
                    for child in current.children:
                        if isinstance(child, str):
                            parts.append(escape_text(child))
                        else:
                            parts.append(memo[id(child)])
                    parts.append(f"</{current.tag}>")
                    fragment = "".join(parts)
                memo[id(current)] = fragment
                self._fragments.put(current, fragment)
                continue
            if id(current) in memo:
                continue
            if current is not node:
                hit = self._fragments.get(current)
                if hit is not MISS:
                    memo[id(current)] = hit
                    continue
            stack.append((current, True))
            for child in current.children:
                if not isinstance(child, str):
                    stack.append((child, False))
        return memo[id(node)]

    def serialize_document(self, document: FrozenDocument) -> str:
        return self.serialize(document.root)

    def cached_fragment(self, node: FrozenElement) -> str | None:
        """The interned serialization of *node* if present, else
        ``None`` — a read-only probe that never computes.  The
        streaming serializer uses this to emit already-interned
        subtrees verbatim without forcing a full serialization on the
        event loop."""
        hit = self._fragments.get(node)
        return None if hit is MISS else hit

    # -- Merkle hashing --------------------------------------------------

    def merkle(self, node: FrozenElement) -> str:
        """Merkle hash of *node*'s subtree, reusing hashes of shared
        subtrees across requests and epochs."""
        cached = self._merkle.get(node)
        if cached is not MISS:
            return cached
        memo: dict[int, str] = {}
        stack: list[tuple[FrozenElement, bool]] = [(node, False)]
        while stack:
            current, ready = stack.pop()
            if ready:
                child_hashes = [memo[id(child)]
                                for child in current.element_children]
                value = node_hash(current.tag, content_hash(current),
                                  child_hashes)
                memo[id(current)] = value
                self._merkle.put(current, value)
                continue
            if id(current) in memo:
                continue
            if current is not node:
                hit = self._merkle.get(current)
                if hit is not MISS:
                    memo[id(current)] = hit
                    continue
            stack.append((current, True))
            for child in current.element_children:
                stack.append((child, False))
        return memo[id(node)]

    def merkle_document(self, document: FrozenDocument) -> str:
        return self.merkle(document.root)

    # -- thawed documents ------------------------------------------------

    def thawed(self, document: FrozenDocument) -> Document:
        """A mutable copy of *document*, cached by frozen-root identity.

        The same object is returned for every epoch that shares the
        root, so downstream generation-stamped caches (views,
        dissemination payloads) hit across epochs.  Callers must treat
        the result as read-only.
        """
        cached = self._thawed.get(document.root)
        if cached is not MISS:
            return cached
        thawed = thaw_document(document)
        self._thawed.put(document.root, thawed)
        return thawed

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict[str, dict[str, int | float]]:
        return {"fragments": self._fragments.stats.snapshot(),
                "merkle": self._merkle.stats.snapshot(),
                "thawed": self._thawed.stats.snapshot()}

    def clear(self) -> None:
        self._fragments.clear()
        self._merkle.clear()
        self._thawed.clear()
