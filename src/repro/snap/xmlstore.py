"""The snapshot XML database: COW collections, epoch-published reads.

:class:`SnapshotXmlDatabase` is the snapshot-layer counterpart of
:class:`~repro.xmldb.database.XmlDatabase`.  Its entire state is a
persistent two-level map ``{collection: {doc_id: FrozenDocument}}``:

* inserting/replacing/deleting a document copies the outer dict and the
  one touched inner dict (every other collection map and every document
  is shared by reference with all outstanding snapshots);
* a node-level update (:meth:`set_text`, :meth:`append_child`, …)
  additionally rebuilds the root-to-target spine of one frozen tree via
  :mod:`repro.snap.frozen` — the rest of the document is shared.

:meth:`freeze` therefore captures the current references in O(1), and
:meth:`publish` pushes the capture through an
:class:`~repro.snap.epoch.EpochManager` so readers on other threads see
either the whole write or none of it.  Multi-operation writes wrap in
:meth:`writer`, which defers publication to the end of the block —
a reader can *freeze during a write* and still observe only the state
as of the last publication (the atomicity half of the equivalence
property test).

Reads go through :class:`XmlSnapshot`, which serves canonical
serialization and Merkle roots out of the shared
:class:`~repro.snap.intern.InternPool` — repeat reads of unchanged
documents are dictionary hits, across requests and across epochs.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.core.errors import ConfigurationError, QueryError
from repro.perf.cache import Generation
from repro.snap.epoch import EpochManager
from repro.snap.frozen import (
    FrozenDocument,
    FrozenElement,
    freeze_document,
    freeze_element,
    resolve,
    with_appended_child,
    with_attribute,
    with_text,
    without_attribute,
    without_child,
)
from repro.snap.intern import InternPool
from repro.xmldb.model import Document, Element
from repro.xmldb.parser import parse
from repro.xmldb.xpath import XPath, evaluate

#: collection name -> doc_id -> FrozenDocument (treat as read-only).
StoreState = dict


class XmlSnapshot:
    """One immutable epoch of the database.

    All methods are lock-free: the state can never change, and the
    intern pool does its own fine-grained synchronization.
    """

    def __init__(self, collections: StoreState, generation: int,
                 pool: InternPool) -> None:
        self._collections = collections
        self._generation = generation
        self._pool = pool
        self.epoch: int | None = None

    @property
    def generation(self) -> int:
        return self._generation

    # -- navigation ------------------------------------------------------

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def doc_ids(self, collection: str) -> list[str]:
        return sorted(self._documents_of(collection))

    def _documents_of(self, collection: str) -> dict:
        try:
            return self._collections[collection]
        except KeyError:
            raise QueryError(f"no collection {collection!r}") from None

    def document(self, collection: str, doc_id: str) -> FrozenDocument:
        documents = self._documents_of(collection)
        try:
            return documents[doc_id]
        except KeyError:
            raise QueryError(
                f"no document {doc_id!r} in collection {collection!r}"
            ) from None

    def documents(self, collection: str
                  ) -> Iterator[tuple[str, FrozenDocument]]:
        documents = self._documents_of(collection)
        for doc_id in sorted(documents):
            yield doc_id, documents[doc_id]

    def total_documents(self) -> int:
        return sum(len(docs) for docs in self._collections.values())

    # -- reads (interned) ------------------------------------------------

    def serialize(self, collection: str, doc_id: str) -> str:
        """Canonical bytes of one document (cached by subtree identity)."""
        return self._pool.serialize_document(
            self.document(collection, doc_id))

    def merkle_root(self, collection: str, doc_id: str) -> str:
        """The document's Merkle root hash (cached by subtree identity)."""
        return self._pool.merkle_document(
            self.document(collection, doc_id))

    def query(self, collection: str, xpath: XPath | str
              ) -> list[tuple[str, FrozenElement | str]]:
        """XPath over every document of *collection*, lock-free.

        The evaluator only walks the child axis, which frozen elements
        expose, so results match the live database's query on equal
        state (modulo node type: frozen elements come back).
        """
        results: list[tuple[str, FrozenElement | str]] = []
        for doc_id, document in self.documents(collection):
            for item in evaluate(xpath, document.root):
                results.append((doc_id, item))
        return results

    def resolve(self, collection: str, doc_id: str,
                path: str) -> FrozenElement:
        return resolve(self.document(collection, doc_id).root, path)

    def thawed(self, collection: str, doc_id: str) -> Document:
        """A read-only mutable-model copy (for consumers needing parent
        pointers/node paths), cached by frozen-root identity."""
        return self._pool.thawed(self.document(collection, doc_id))

    def __repr__(self) -> str:
        return (f"<XmlSnapshot gen={self._generation} epoch={self.epoch} "
                f"collections={len(self._collections)}>")


class SnapshotXmlDatabase:
    """Writer-side store; every mutation publishes a new epoch.

    Single-writer semantics are enforced with an internal re-entrant
    lock; readers never take it — they go through
    :meth:`current`/:attr:`epochs`.
    """

    def __init__(self, name: str = "snapdb",
                 pool: InternPool | None = None,
                 epochs: EpochManager | None = None) -> None:
        self.name = name
        self.pool = pool if pool is not None else InternPool()
        self.epochs = epochs if epochs is not None else EpochManager()
        self._lock = threading.RLock()
        self._collections: StoreState = {}
        self._generation = Generation()
        self._deferred = 0
        self.publish()

    @property
    def generation(self) -> int:
        return self._generation.value

    # -- publication -----------------------------------------------------

    def freeze(self) -> XmlSnapshot:
        """Capture the current state — O(1), no tree copying."""
        with self._lock:
            return XmlSnapshot(self._collections, self._generation.value,
                               self.pool)

    def publish(self) -> XmlSnapshot:
        snapshot = self.freeze()
        self.epochs.publish(snapshot)
        return snapshot

    def current(self) -> XmlSnapshot:
        return self.epochs.current()

    @contextmanager
    def writer(self):
        """Group several mutations into one atomically-published epoch.

        Readers pinning the current epoch during the block keep seeing
        the pre-write state; the combined result becomes visible in a
        single :meth:`publish` when the outermost block exits.
        """
        with self._lock:
            self._deferred += 1
            try:
                yield self
            finally:
                self._deferred -= 1
                if self._deferred == 0:
                    self.publish()

    def _commit(self, collections: StoreState) -> None:
        """Swap in new state (caller holds the lock) and publish unless
        inside a :meth:`writer` block."""
        self._collections = collections
        self._generation.bump()
        if self._deferred == 0:
            self.publish()

    # -- collection / document mutations --------------------------------

    def create_collection(self, name: str) -> None:
        with self._lock:
            if name in self._collections:
                raise ConfigurationError(
                    f"collection {name!r} already exists")
            collections = dict(self._collections)
            collections[name] = {}
            self._commit(collections)

    def drop_collection(self, name: str) -> None:
        with self._lock:
            if name not in self._collections:
                raise QueryError(f"no collection {name!r}")
            collections = dict(self._collections)
            del collections[name]
            self._commit(collections)

    def insert(self, collection: str, doc_id: str,
               document: Document | str) -> FrozenDocument:
        if isinstance(document, str):
            document = parse(document, name=doc_id)
        frozen = freeze_document(document)
        with self._lock:
            documents = self._documents_of(collection)
            if doc_id in documents:
                raise ConfigurationError(
                    f"document {doc_id!r} already in collection "
                    f"{collection!r}")
            self._commit(self._with_document(collection, doc_id, frozen))
        return frozen

    def delete(self, collection: str, doc_id: str) -> FrozenDocument:
        with self._lock:
            frozen = self._document(collection, doc_id)
            collections = dict(self._collections)
            documents = dict(collections[collection])
            del documents[doc_id]
            collections[collection] = documents
            self._commit(collections)
        return frozen

    def replace(self, collection: str, doc_id: str,
                document: Document | str) -> FrozenDocument:
        if isinstance(document, str):
            document = parse(document, name=doc_id)
        frozen = freeze_document(document)
        with self._lock:
            self._document(collection, doc_id)  # must exist
            self._commit(self._with_document(collection, doc_id, frozen))
        return frozen

    # -- node-level mutations (copy-on-write spine edits) ----------------

    def set_text(self, collection: str, doc_id: str, path: str,
                 text: str) -> None:
        self._edit_root(collection, doc_id,
                        lambda root: with_text(root, path, text))

    def set_attribute(self, collection: str, doc_id: str, path: str,
                      name: str, value: str) -> None:
        self._edit_root(collection, doc_id,
                        lambda root: with_attribute(root, path, name,
                                                    value))

    def remove_attribute(self, collection: str, doc_id: str, path: str,
                         name: str) -> None:
        self._edit_root(collection, doc_id,
                        lambda root: without_attribute(root, path, name))

    def append_child(self, collection: str, doc_id: str, parent_path: str,
                     child: Element | FrozenElement) -> None:
        if isinstance(child, Element):
            child = freeze_element(child)
        self._edit_root(
            collection, doc_id,
            lambda root: with_appended_child(root, parent_path, child))

    def remove_child(self, collection: str, doc_id: str,
                     path: str) -> None:
        self._edit_root(collection, doc_id,
                        lambda root: without_child(root, path))

    # -- internals -------------------------------------------------------

    def _documents_of(self, collection: str) -> dict:
        try:
            return self._collections[collection]
        except KeyError:
            raise QueryError(f"no collection {collection!r}") from None

    def _document(self, collection: str, doc_id: str) -> FrozenDocument:
        documents = self._documents_of(collection)
        try:
            return documents[doc_id]
        except KeyError:
            raise QueryError(
                f"no document {doc_id!r} in collection {collection!r}"
            ) from None

    def _with_document(self, collection: str, doc_id: str,
                       frozen: FrozenDocument) -> StoreState:
        collections = dict(self._collections)
        documents = dict(collections[collection])
        documents[doc_id] = frozen
        collections[collection] = documents
        return collections

    def _edit_root(self, collection: str, doc_id: str, edit) -> None:
        with self._lock:
            frozen = self._document(collection, doc_id)
            new_root = edit(frozen.root)
            self._commit(self._with_document(
                collection, doc_id,
                FrozenDocument(new_root, frozen.name)))
