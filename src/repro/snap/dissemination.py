"""Dissemination and views served directly off database snapshots.

:class:`SnapshotDisseminator` closes the loop between the snapshot
store and the Author-X machinery: it thaws the frozen document of the
pinned epoch through the intern pool (same mutable object for every
epoch whose frozen root is unchanged — and it *is* unchanged unless a
write touched that document), then runs the interned
:class:`~repro.xmlsec.dissemination.Disseminator` and
:class:`~repro.xmlsec.views.CachedViewBuilder` over it.  Because both
stamp their entries with ``(policy generation, document version)`` and
a thawed snapshot document has constant version and stable identity,
repeat packaging and repeat view computation degenerate to cache hits
plus (for packets) fresh encryption — across requests and across
epochs, with no locks held anywhere on the path.
"""

from __future__ import annotations

from repro.core.subjects import Subject
from repro.snap.xmlstore import SnapshotXmlDatabase, XmlSnapshot
from repro.xmldb.model import Document
from repro.xmlsec.authorx import XmlPolicyBase
from repro.xmlsec.dissemination import Disseminator, Packet
from repro.xmlsec.views import CachedViewBuilder, ViewStats


class SnapshotDisseminator:
    """Owner-side packaging and view computation over snapshot epochs."""

    def __init__(self, store: SnapshotXmlDatabase,
                 policy_base: XmlPolicyBase,
                 secret: str = "dissemination") -> None:
        self.store = store
        self.policy_base = policy_base
        self.disseminator = Disseminator(policy_base, secret, intern=True)
        self.views = CachedViewBuilder(policy_base)

    @property
    def key_store(self):
        return self.disseminator.key_store

    def _thawed(self, collection: str, doc_id: str,
                snapshot: XmlSnapshot | None) -> Document:
        if snapshot is not None:
            return snapshot.thawed(collection, doc_id)
        with self.store.epochs.reading() as pinned:
            return pinned.thawed(collection, doc_id)

    # -- the read path ---------------------------------------------------

    def package(self, collection: str, doc_id: str,
                snapshot: XmlSnapshot | None = None,
                workers: int | None = None) -> Packet:
        """Encrypt one snapshot document into a broadcast packet.

        Pass *snapshot* to package against a pinned epoch; otherwise
        the current epoch is pinned for the duration of the call.
        """
        document = self._thawed(collection, doc_id, snapshot)
        return self.disseminator.package(doc_id, document,
                                         workers=workers)

    def view(self, subject: Subject, collection: str, doc_id: str,
             snapshot: XmlSnapshot | None = None,
             with_markers: bool = False
             ) -> tuple[Document | None, ViewStats]:
        """The subject's authorized view of one snapshot document."""
        document = self._thawed(collection, doc_id, snapshot)
        return self.views.view(subject, doc_id, document, with_markers)

    # -- key distribution (delegated) ------------------------------------

    def entitled_key_ids(self, subject: Subject) -> list[str]:
        return self.disseminator.entitled_key_ids(subject)

    def distributor(self, subjects: dict[str, Subject]):
        return self.disseminator.distributor(subjects)

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict[str, object]:
        return {
            "prep": self.disseminator.prep_stats,
            "views": self.views.cache_stats,
            "intern": self.store.pool.stats(),
            "epochs": self.store.epochs.stats.snapshot(),
        }
