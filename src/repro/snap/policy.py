"""Persistent policy bases and the epoch-published decision engine.

:class:`SnapshotPolicyBase` keeps the same state as
:class:`~repro.core.policy.PolicyBase` — an ordered policy sequence plus
the action/head candidate index — but in persistent form: the sequence
is a tuple and the index buckets are tuples inside copy-on-write dicts.
An ``add``/``remove`` rebuilds only the touched action's head map (every
other bucket is shared by reference), so :meth:`freeze` is O(1): it just
captures the current references into an immutable
:class:`PolicySnapshot`.

:class:`PolicySnapshot` duck-types the evaluator-facing surface of
``PolicyBase`` (``candidates`` / ``applicable`` / ``generation`` /
iteration), so an unmodified
:class:`~repro.core.evaluator.PolicyEvaluator` and
:class:`~repro.scale.batch.BatchDecisionEngine` run against it.  Its
generation is the stamp frozen at capture time and never changes, which
turns the evaluator's generation-checked decision cache into a pure
cache: entries computed against a snapshot are valid for that
snapshot's whole lifetime.

:class:`EpochalPolicyEngine` ties it to :mod:`repro.snap.epoch`: every
mutation freezes and publishes a new epoch (whose snapshot carries its
own evaluator + batch engine), and every read pins the current epoch
for exactly one decision or batch.  It satisfies the gateway's engine
contract (``decide_batch``), making the lock-free read path a drop-in
for :class:`~repro.scale.gateway.RequestGateway`.

With ``compile_policies=True`` each published snapshot carries a
:class:`~repro.compile.engine.CompiledPolicyEngine` instead of the
interpreting batch engine: the snapshot is immutable, so the compiled
decision table is fresh for the epoch's whole lifetime and every read
is an O(1) table lookup.  Recompilation piggybacks on publication —
there is no drift to detect because a new epoch is a new artifact.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Sequence

from repro.core.audit import AuditLog
from repro.core.errors import ConfigurationError
from repro.core.evaluator import (
    ConflictResolution,
    Decision,
    DefaultDecision,
    PolicyEvaluator,
)
from repro.core.objects import ResourcePath
from repro.core.policy import Action, Policy
from repro.core.subjects import Subject
from repro.perf.cache import Generation
from repro.scale.batch import BatchDecisionEngine
from repro.snap.epoch import EpochManager

#: action -> head -> tuple of policies (the persistent candidate index).
HeadIndex = dict


def _head_of(policy: Policy) -> str:
    """First-segment index key, identical to PolicyBase's rule."""
    head = (policy.resource.segments[0]
            if policy.resource.segments else "**")
    if any(ch in head for ch in "*?["):
        head = "*"
    return head


def _candidates(by_head: HeadIndex, action: Action,
                path: ResourcePath | str) -> list[Policy]:
    path = ResourcePath(path)
    index = by_head[action]
    result: list[Policy] = list(index.get("*", ()))
    result.extend(index.get("**", ()))
    if path.segments:
        result.extend(index.get(path.segments[0], ()))
    result.sort(key=lambda p: p.policy_id)
    return result


class PolicySnapshot:
    """An immutable policy base frozen at one generation.

    Duck-types :class:`~repro.core.policy.PolicyBase` for evaluation;
    mutation methods intentionally do not exist.  ``epoch`` is assigned
    by the :class:`~repro.snap.epoch.EpochManager` at publication;
    ``evaluator``/``engine`` by :class:`EpochalPolicyEngine`.
    """

    def __init__(self, policies: tuple[Policy, ...],
                 by_head: HeadIndex, generation: int) -> None:
        self._policies = policies
        self._by_head = by_head
        self._generation = generation
        self.epoch: int | None = None
        self.evaluator: PolicyEvaluator | None = None
        #: BatchDecisionEngine, or a CompiledPolicyEngine when the
        #: owning EpochalPolicyEngine compiles its snapshots.
        self.engine: object | None = None

    @property
    def generation(self) -> int:
        return self._generation

    def __len__(self) -> int:
        return len(self._policies)

    def __iter__(self) -> Iterator[Policy]:
        return iter(self._policies)

    def candidates(self, action: Action,
                   path: ResourcePath | str) -> list[Policy]:
        return _candidates(self._by_head, action, path)

    def applicable(self, subject: Subject, action: Action,
                   path: ResourcePath | str,
                   payload: object = None) -> list[Policy]:
        return [p for p in self.candidates(action, path)
                if p.applies(subject, action, path, payload)]

    def close(self) -> None:
        """Reclamation hook: drop the per-epoch decision cache."""
        if self.evaluator is not None:
            self.evaluator.invalidate_cache()

    def __repr__(self) -> str:
        return (f"<PolicySnapshot gen={self._generation} "
                f"epoch={self.epoch} policies={len(self._policies)}>")


class SnapshotPolicyBase:
    """Writer-side policy store with O(1) :meth:`freeze`.

    Mutations are serialized by an internal lock and rebuild only the
    copy-on-write spine of the candidate index — the one action map and
    the one head bucket being touched; everything else is shared with
    every outstanding snapshot.
    """

    def __init__(self, policies: Iterable[Policy] = ()) -> None:
        self._lock = threading.RLock()
        self._policies: tuple[Policy, ...] = ()
        self._by_head: HeadIndex = {a: {} for a in Action}
        self._generation = Generation()
        for policy in policies:
            self.add(policy)

    @property
    def generation(self) -> int:
        return self._generation.value

    def __len__(self) -> int:
        return len(self._policies)

    def __iter__(self) -> Iterator[Policy]:
        return iter(self._policies)

    def add(self, policy: Policy) -> Policy:
        with self._lock:
            head = _head_of(policy)
            action_map = dict(self._by_head[policy.action])
            action_map[head] = action_map.get(head, ()) + (policy,)
            by_head = dict(self._by_head)
            by_head[policy.action] = action_map
            self._policies = self._policies + (policy,)
            self._by_head = by_head
            self._generation.bump()
        return policy

    def remove(self, policy: Policy) -> None:
        with self._lock:
            if policy not in self._policies:
                raise ConfigurationError(
                    f"{policy!r} not in policy base")
            head = _head_of(policy)
            action_map = dict(self._by_head[policy.action])
            action_map[head] = tuple(
                p for p in action_map.get(head, ()) if p is not policy)
            by_head = dict(self._by_head)
            by_head[policy.action] = action_map
            self._policies = tuple(
                p for p in self._policies if p is not policy)
            self._by_head = by_head
            self._generation.bump()

    def candidates(self, action: Action,
                   path: ResourcePath | str) -> list[Policy]:
        return _candidates(self._by_head, action, path)

    def applicable(self, subject: Subject, action: Action,
                   path: ResourcePath | str,
                   payload: object = None) -> list[Policy]:
        return [p for p in self.candidates(action, path)
                if p.applies(subject, action, path, payload)]

    def freeze(self) -> PolicySnapshot:
        """Capture the current state — three reference reads, O(1)."""
        with self._lock:
            return PolicySnapshot(self._policies, self._by_head,
                                  self._generation.value)


class EpochalPolicyEngine:
    """Lock-free authorization: reads pin an epoch, writes advance it.

    Implements the gateway engine contract (``decide_batch``); each
    published snapshot carries its own :class:`PolicyEvaluator` and
    :class:`BatchDecisionEngine` so worker threads never contend on
    writer state, and the per-epoch decision cache is dropped when the
    epoch is reclaimed.
    """

    def __init__(self, policies: Iterable[Policy] = (),
                 resolution: ConflictResolution =
                 ConflictResolution.DENY_OVERRIDES,
                 default: DefaultDecision = DefaultDecision.CLOSED,
                 audit: AuditLog | None = None,
                 epochs: EpochManager | None = None,
                 compile_policies: bool = False) -> None:
        self.base = SnapshotPolicyBase(policies)
        self.resolution = resolution
        self.default = default
        self.audit = audit
        self.epochs = epochs if epochs is not None else EpochManager()
        self.compile_policies = compile_policies
        self._publish()

    def _publish(self) -> PolicySnapshot:
        snapshot = self.base.freeze()
        if self.compile_policies:
            # The snapshot is immutable, so the compiled table stays
            # fresh for the epoch's whole lifetime; publication *is*
            # the recompilation hook.
            from repro.compile.engine import CompiledPolicyEngine

            snapshot.engine = CompiledPolicyEngine(
                base=snapshot, resolution=self.resolution,
                default=self.default, audit=self.audit)
        else:
            snapshot.evaluator = PolicyEvaluator(
                snapshot, resolution=self.resolution,
                default=self.default, audit=self.audit)
            snapshot.engine = BatchDecisionEngine(snapshot.evaluator)
        self.epochs.publish(snapshot)
        return snapshot

    # -- writer side -----------------------------------------------------

    def add_policy(self, policy: Policy) -> Policy:
        self.base.add(policy)
        self._publish()
        return policy

    def add_policies(self, policies: Iterable[Policy]) -> int:
        """Bulk load: add every policy, then publish *one* epoch.

        Publication is where snapshots compile, so N ``add_policy``
        calls pay N compilations while this pays one — the difference
        between O(N²) and O(N) total work when seeding a large base.
        Publishes even for an empty iterable (cheap, and keeps the
        "every writer call advances the epoch" invariant).
        """
        count = 0
        for policy in policies:
            self.base.add(policy)
            count += 1
        self._publish()
        return count

    def remove_policy(self, policy: Policy) -> None:
        self.base.remove(policy)
        self._publish()

    # -- reader side -----------------------------------------------------

    def current(self) -> PolicySnapshot:
        return self.epochs.current()

    def decide(self, subject: Subject, action: Action,
               path: ResourcePath | str,
               payload: object = None) -> Decision:
        with self.epochs.reading() as snapshot:
            if snapshot.evaluator is not None:
                return snapshot.evaluator.decide(subject, action, path,
                                                 payload)
            return snapshot.engine.decide(subject, action, path,
                                          payload)

    def decide_batch(self, requests: Sequence[tuple]) -> list[Decision]:
        with self.epochs.reading() as snapshot:
            return snapshot.engine.decide_batch(requests)
