"""Relational tables: typed schemas and row storage.

The conventional-DBMS substrate the paper contrasts the web with (§3.1).
Tables have a declared schema (column names + types), enforce types on
insert, and support a primary key for identity.  Rows are plain tuples;
a :class:`Row`-as-dict view is provided for ergonomic predicates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from repro.core.errors import QueryError


class ColumnType(enum.Enum):
    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    def accepts(self, value: object) -> bool:
        if value is None:
            return True
        if self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(
                value, bool)
        if self is ColumnType.TEXT:
            return isinstance(value, str)
        return isinstance(value, bool)


@dataclass(frozen=True)
class Column:
    name: str
    type: ColumnType
    nullable: bool = True


@dataclass(frozen=True)
class TableSchema:
    """Schema: ordered columns plus an optional primary key column."""

    name: str
    columns: tuple[Column, ...]
    primary_key: str | None = None

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise QueryError(f"table {self.name!r}: duplicate column names")
        if self.primary_key is not None and self.primary_key not in names:
            raise QueryError(
                f"table {self.name!r}: primary key {self.primary_key!r} "
                f"is not a column")

    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise QueryError(f"table {self.name!r} has no column {name!r}")

    def index_of(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise QueryError(f"table {self.name!r} has no column {name!r}")


def schema(name: str, /, primary_key: str | None = None,
           **columns: str) -> TableSchema:
    """Terse schema builder: ``schema("t", id="int", name="text")``.

    The table name is positional-only so columns named ``name`` work.
    """
    cols = tuple(Column(cname, ColumnType(ctype))
                 for cname, ctype in columns.items())
    return TableSchema(name, cols, primary_key)


Row = tuple


class Table:
    """Row storage with type and primary-key enforcement."""

    def __init__(self, table_schema: TableSchema) -> None:
        self.schema = table_schema
        self._rows: list[Row] = []
        self._pk_index: dict[object, int] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def _validate(self, row: Row) -> None:
        if len(row) != len(self.schema.columns):
            raise QueryError(
                f"table {self.schema.name!r}: expected "
                f"{len(self.schema.columns)} values, got {len(row)}")
        for value, column in zip(row, self.schema.columns):
            if value is None and not column.nullable:
                raise QueryError(
                    f"column {column.name!r} is not nullable")
            if not column.type.accepts(value):
                raise QueryError(
                    f"column {column.name!r} expects {column.type.value}, "
                    f"got {value!r}")

    def insert(self, *values: object) -> Row:
        row = tuple(values)
        self._validate(row)
        if self.schema.primary_key is not None:
            key = row[self.schema.index_of(self.schema.primary_key)]
            if key in self._pk_index:
                raise QueryError(
                    f"duplicate primary key {key!r} in table "
                    f"{self.schema.name!r}")
            self._pk_index[key] = len(self._rows)
        self._rows.append(row)
        return row

    def insert_dict(self, **values: object) -> Row:
        ordered = tuple(values.get(c.name) for c in self.schema.columns)
        unknown = set(values) - set(self.schema.column_names())
        if unknown:
            raise QueryError(f"unknown columns {sorted(unknown)}")
        return self.insert(*ordered)

    def get(self, key: object) -> Row | None:
        """Primary-key lookup."""
        if self.schema.primary_key is None:
            raise QueryError(
                f"table {self.schema.name!r} has no primary key")
        index = self._pk_index.get(key)
        return self._rows[index] if index is not None else None

    def delete_where(self, predicate: Callable[[Mapping[str, object]], bool]
                     ) -> int:
        """Delete rows matching a dict-predicate; returns count removed."""
        keep: list[Row] = []
        removed = 0
        for row in self._rows:
            if predicate(self.as_dict(row)):
                removed += 1
            else:
                keep.append(row)
        if removed:
            self._rows = keep
            self._rebuild_pk()
        return removed

    def update_where(self, predicate: Callable[[Mapping[str, object]], bool],
                     changes: Mapping[str, object]) -> int:
        """Update matching rows; returns count changed."""
        for name in changes:
            self.schema.column(name)
        count = 0
        for index, row in enumerate(self._rows):
            if not predicate(self.as_dict(row)):
                continue
            updated = list(row)
            for name, value in changes.items():
                updated[self.schema.index_of(name)] = value
            candidate = tuple(updated)
            self._validate(candidate)
            self._rows[index] = candidate
            count += 1
        if count and self.schema.primary_key is not None:
            self._rebuild_pk()
        return count

    def _rebuild_pk(self) -> None:
        if self.schema.primary_key is None:
            return
        pk = self.schema.index_of(self.schema.primary_key)
        self._pk_index = {row[pk]: i for i, row in enumerate(self._rows)}
        if len(self._pk_index) != len(self._rows):
            raise QueryError(
                f"update created duplicate primary keys in "
                f"{self.schema.name!r}")

    def as_dict(self, row: Row) -> dict[str, object]:
        return dict(zip(self.schema.column_names(), row))

    def rows_as_dicts(self) -> Iterator[dict[str, object]]:
        for row in self._rows:
            yield self.as_dict(row)

    def snapshot(self) -> list[Row]:
        return list(self._rows)

    def restore(self, rows: Iterable[Row]) -> None:
        """Transaction rollback support."""
        self._rows = list(rows)
        self._rebuild_pk()
