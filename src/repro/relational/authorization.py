"""System R style authorization: GRANT/REVOKE with the grant option.

"Today most of the commercial DBMSs rely on the System R access control
model" (§3.1).  The defining features reproduced here:

* privileges (SELECT/INSERT/UPDATE/DELETE) on tables, grantable per user;
* the *grant option*: a grantee holding it may grant onward;
* *recursive revocation*: revoking a grant also revokes every grant that
  depends on it — unless the grantee retains an independent path from
  the owner, computed over the grant graph exactly as System R does;
* row filters and column masks per grant, the hook that
  :mod:`repro.relational.query` enforces (view-style restriction).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.errors import AccessDenied, ConfigurationError
from repro.perf.cache import MISS, Generation, GenerationalCache

RowPredicate = Callable[[Mapping[str, object]], bool]


class Privilege(enum.Enum):
    SELECT = "select"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


_grant_ids = itertools.count(1)


@dataclass(frozen=True)
class Grant:
    """One edge of the grant graph."""

    grant_id: int
    grantor: str
    grantee: str
    table: str
    privilege: Privilege
    with_grant_option: bool
    sequence: int
    row_filter: RowPredicate | None = None
    column_mask: tuple[str, ...] = ()

    def __repr__(self) -> str:
        option = " WITH GRANT OPTION" if self.with_grant_option else ""
        return (f"GRANT#{self.grant_id} {self.privilege.value} ON "
                f"{self.table} TO {self.grantee} BY {self.grantor}{option}")


class AuthorizationManager:
    """The grant graph and its queries."""

    def __init__(self) -> None:
        self._grants: list[Grant] = []
        self._owners: dict[str, str] = {}
        self._sequence = itertools.count(1)
        # Bumped on every mutation of the grant graph or ownership map;
        # privilege/restriction lookups are memoized against it.
        self._generation = Generation()
        self._check_cache = GenerationalCache(maxsize=4096)

    @property
    def generation(self) -> int:
        """Mutation counter; changes on any grant/revoke/ownership change."""
        return self._generation.value

    def add_invalidation_hook(self, hook: Callable[[], None]) -> None:
        """Call *hook* after every mutation of the authorization state."""
        self._generation.add_hook(hook)

    def cache_stats(self) -> dict[str, int | float]:
        """Hit/miss counters of the privilege-check cache."""
        return self._check_cache.stats.snapshot()

    # -- ownership -----------------------------------------------------------

    def set_owner(self, table: str, owner: str) -> None:
        if table in self._owners:
            raise ConfigurationError(f"table {table!r} already has an owner")
        self._owners[table] = owner
        self._generation.bump()

    def owner_of(self, table: str) -> str:
        try:
            return self._owners[table]
        except KeyError:
            raise ConfigurationError(f"table {table!r} has no owner") from None

    def owners(self) -> dict[str, str]:
        """The table -> owner map (a copy; for analysis and audits)."""
        return dict(self._owners)

    # -- granting -------------------------------------------------------------

    def grant(self, grantor: str, grantee: str, table: str,
              privilege: Privilege, with_grant_option: bool = False,
              row_filter: RowPredicate | None = None,
              column_mask: Sequence[str] = ()) -> Grant:
        """Record a grant; the grantor must own the table or hold the
        privilege with grant option."""
        if not self._can_grant(grantor, table, privilege):
            raise AccessDenied(grantor, f"grant:{privilege.value}", table,
                               reason="grantor lacks grant authority")
        edge = Grant(next(_grant_ids), grantor, grantee, table, privilege,
                     with_grant_option, next(self._sequence),
                     row_filter, tuple(column_mask))
        self._grants.append(edge)
        self._generation.bump()
        return edge

    def import_grant(self, grantor: str, grantee: str, table: str,
                     privilege: Privilege,
                     with_grant_option: bool = False,
                     row_filter: RowPredicate | None = None,
                     column_mask: Sequence[str] = ()) -> Grant:
        """Record a grant edge *without* checking the grantor's authority.

        The bulk-load/restore path: replaying an audit log or adopting a
        grant graph serialized elsewhere must not re-run authority checks
        against the half-built graph.  Imported edges are exactly why the
        static analyzer's REL-DANGLING rule exists — run
        :func:`repro.analysis.analyze_grants` after a bulk load.
        """
        edge = Grant(next(_grant_ids), grantor, grantee, table, privilege,
                     with_grant_option, next(self._sequence),
                     row_filter, tuple(column_mask))
        self._grants.append(edge)
        self._generation.bump()
        return edge

    def _can_grant(self, user: str, table: str,
                   privilege: Privilege) -> bool:
        if self._owners.get(table) == user:
            return True
        return any(g.grantee == user and g.table == table
                   and g.privilege == privilege and g.with_grant_option
                   for g in self._grants)

    # -- checking ---------------------------------------------------------------

    def grants_for(self, user: str, table: str,
                   privilege: Privilege) -> list[Grant]:
        return [g for g in self._grants
                if g.grantee == user and g.table == table
                and g.privilege == privilege]

    def has_privilege(self, user: str, table: str,
                      privilege: Privilege) -> bool:
        key = ("priv", user, table, privilege)
        stamp = self._generation.value
        cached = self._check_cache.get(key, stamp)
        if cached is not MISS:
            return cached
        if self._owners.get(table) == user:
            held = True
        else:
            held = bool(self.grants_for(user, table, privilege))
        self._check_cache.put(key, stamp, held)
        return held

    def enforce(self, user: str, table: str,
                privilege: Privilege) -> None:
        if not self.has_privilege(user, table, privilege):
            raise AccessDenied(user, privilege.value, table,
                               reason="no applicable grant")

    def restriction(self, user: str, table: str, privilege: Privilege
                    ) -> tuple[RowPredicate | None, tuple[str, ...]]:
        """The (row_filter, column_mask) to apply for this user.

        The owner is unrestricted.  With several grants, the user sees
        the union of rows (a row passes if any grant's filter accepts it)
        and a column is masked only when every grant masks it.
        """
        if self._owners.get(table) == user:
            return None, ()
        key = ("restr", user, table, privilege)
        stamp = self._generation.value
        cached = self._check_cache.get(key, stamp)
        if cached is not MISS:
            return cached
        grants = self.grants_for(user, table, privilege)
        if not grants:
            # Denials are not cached: raising from a cache hit would
            # yield a less informative traceback for no measurable win.
            raise AccessDenied(user, privilege.value, table,
                               reason="no applicable grant")
        if any(g.row_filter is None for g in grants):
            row_filter = None
        else:
            filters = [g.row_filter for g in grants]

            def row_filter(record: Mapping[str, object]) -> bool:
                return any(f(record) for f in filters)  # type: ignore[misc]

        masks = [set(g.column_mask) for g in grants]
        column_mask = tuple(sorted(set.intersection(*masks))) if masks else ()
        result = (row_filter, column_mask)
        self._check_cache.put(key, stamp, result)
        return result

    # -- revocation ----------------------------------------------------------------

    def revoke(self, revoker: str, grantee: str, table: str,
               privilege: Privilege) -> list[Grant]:
        """Revoke *revoker*'s grants to *grantee*, cascading System R
        style; returns every grant removed."""
        direct = [g for g in self._grants
                  if g.grantor == revoker and g.grantee == grantee
                  and g.table == table and g.privilege == privilege]
        if not direct:
            raise ConfigurationError(
                f"{revoker!r} holds no matching grant to {grantee!r}")
        removed = list(direct)
        remaining = [g for g in self._grants if g not in direct]
        # Iteratively drop grants whose grantor no longer has authority
        # *as of a time before the grant was made* (System R's timestamp
        # rule, approximated with sequence numbers).
        changed = True
        while changed:
            changed = False
            for edge in list(remaining):
                if self._supported(edge, remaining):
                    continue
                remaining.remove(edge)
                removed.append(edge)
                changed = True
        self._grants = remaining
        self._generation.bump()
        return removed

    def _supported(self, edge: Grant, pool: list[Grant]) -> bool:
        """Does the grantor of *edge* still have authority predating it?"""
        if self._owners.get(edge.table) == edge.grantor:
            return True
        return any(g.grantee == edge.grantor and g.table == edge.table
                   and g.privilege == edge.privilege
                   and g.with_grant_option
                   and g.sequence < edge.sequence
                   for g in pool)

    def all_grants(self) -> list[Grant]:
        return list(self._grants)
