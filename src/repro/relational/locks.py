"""Concurrency control: strict two-phase locking with deadlock detection.

"Appropriate concurrency control and recovery techniques have to be
developed for the transaction models" (§2.1).  This module provides the
conventional side of that sentence — shared/exclusive locks held to
transaction end, upgrades, and wait-for-graph deadlock detection — the
model whose lock-on-first-touch behaviour §2.1 contrasts with open
bidding (see :mod:`repro.relational.bidding` and benchmark E14).

The manager is synchronous: ``acquire`` either grants, queues the
requester (returned as ``WOULD_WAIT``), or detects that waiting would
close a cycle and answers ``DEADLOCK`` so the caller can abort — the
victim-selection policy is "the requester dies", the simplest of the
classical choices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.errors import TransactionError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


class AcquireResult(enum.Enum):
    GRANTED = "granted"
    WOULD_WAIT = "would-wait"
    DEADLOCK = "deadlock"


@dataclass
class _LockState:
    holders: dict[str, LockMode] = field(default_factory=dict)
    waiters: list[tuple[str, LockMode]] = field(default_factory=list)


class LockManager:
    """S/X locks on named resources with a wait-for graph."""

    def __init__(self) -> None:
        self._locks: dict[str, _LockState] = {}
        self._waiting_for: dict[str, set[str]] = {}
        self.deadlocks_detected = 0

    # -- core ---------------------------------------------------------------

    def _state(self, resource: str) -> _LockState:
        return self._locks.setdefault(resource, _LockState())

    def holders(self, resource: str) -> dict[str, LockMode]:
        return dict(self._state(resource).holders)

    def _can_grant(self, state: _LockState, txn: str,
                   mode: LockMode) -> bool:
        for holder, held in state.holders.items():
            if holder == txn:
                continue
            if not mode.compatible_with(held):
                return False
        return True

    def _would_deadlock(self, txn: str, blockers: set[str]) -> bool:
        """Would txn waiting on *blockers* close a cycle?"""
        stack = list(blockers)
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current == txn:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._waiting_for.get(current, ()))
        return False

    def acquire(self, txn: str, resource: str,
                mode: LockMode) -> AcquireResult:
        """Try to take (or upgrade) a lock.

        GRANTED — the lock is now held.  WOULD_WAIT — the caller is
        queued; retry after the blockers release.  DEADLOCK — waiting
        would close a cycle; the caller must abort (its queue entry is
        not recorded).
        """
        state = self._state(resource)
        held = state.holders.get(txn)
        if held is mode or (held is LockMode.EXCLUSIVE
                            and mode is LockMode.SHARED):
            return AcquireResult.GRANTED
        if self._can_grant(state, txn, mode):
            state.holders[txn] = mode
            self._waiting_for.pop(txn, None)
            return AcquireResult.GRANTED
        blockers = {holder for holder, held_mode in state.holders.items()
                    if holder != txn
                    and not mode.compatible_with(held_mode)}
        if self._would_deadlock(txn, blockers):
            self.deadlocks_detected += 1
            return AcquireResult.DEADLOCK
        self._waiting_for.setdefault(txn, set()).update(blockers)
        if (txn, mode) not in state.waiters:
            state.waiters.append((txn, mode))
        return AcquireResult.WOULD_WAIT

    def release_all(self, txn: str) -> list[str]:
        """Release every lock txn holds (strict 2PL: at commit/abort).

        Returns transactions whose queued requests became grantable and
        were granted (FIFO per resource).
        """
        woken: list[str] = []
        self._waiting_for.pop(txn, None)
        for resource, state in self._locks.items():
            state.holders.pop(txn, None)
            state.waiters = [(t, m) for t, m in state.waiters
                             if t != txn]
            # Grant queued requests now compatible, in FIFO order.
            still_waiting: list[tuple[str, LockMode]] = []
            for waiter, mode in state.waiters:
                if self._can_grant(state, waiter, mode):
                    state.holders[waiter] = mode
                    self._waiting_for.pop(waiter, None)
                    woken.append(waiter)
                else:
                    still_waiting.append((waiter, mode))
            state.waiters = still_waiting
        # Drop txn from others' wait sets.
        for waiting in self._waiting_for.values():
            waiting.discard(txn)
        return woken

    def acquire_or_raise(self, txn: str, resource: str,
                         mode: LockMode) -> None:
        """Convenience for single-threaded tests: DEADLOCK raises,
        WOULD_WAIT also raises (nothing else will ever release)."""
        result = self.acquire(txn, resource, mode)
        if result is AcquireResult.DEADLOCK:
            raise TransactionError(
                f"deadlock: {txn!r} aborted on {resource!r}")
        if result is AcquireResult.WOULD_WAIT:
            raise TransactionError(
                f"{txn!r} would block on {resource!r}")
