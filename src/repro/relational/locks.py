"""Concurrency control: strict two-phase locking with deadlock detection.

"Appropriate concurrency control and recovery techniques have to be
developed for the transaction models" (§2.1).  This module provides the
conventional side of that sentence — shared/exclusive locks held to
transaction end, upgrades, and wait-for-graph deadlock detection — the
model whose lock-on-first-touch behaviour §2.1 contrasts with open
bidding (see :mod:`repro.relational.bidding` and benchmark E14).

The manager is synchronous: ``acquire`` either grants, queues the
requester (returned as ``WOULD_WAIT``), or detects that waiting would
close a cycle and answers ``DEADLOCK`` so the caller can abort — the
victim-selection policy is "the requester dies", the simplest of the
classical choices.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from repro.core.errors import TransactionError
from repro.crypto.hashing import sha256_int


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


class AcquireResult(enum.Enum):
    GRANTED = "granted"
    WOULD_WAIT = "would-wait"
    DEADLOCK = "deadlock"


@dataclass
class _LockState:
    holders: dict[str, LockMode] = field(default_factory=dict)
    waiters: list[tuple[str, LockMode]] = field(default_factory=list)


class LockManager:
    """S/X locks on named resources with a wait-for graph."""

    def __init__(self) -> None:
        self._locks: dict[str, _LockState] = {}
        self._waiting_for: dict[str, set[str]] = {}
        self.deadlocks_detected = 0

    # -- core ---------------------------------------------------------------

    def _state(self, resource: str) -> _LockState:
        return self._locks.setdefault(resource, _LockState())

    def holders(self, resource: str) -> dict[str, LockMode]:
        return dict(self._state(resource).holders)

    def _can_grant(self, state: _LockState, txn: str,
                   mode: LockMode) -> bool:
        for holder, held in state.holders.items():
            if holder == txn:
                continue
            if not mode.compatible_with(held):
                return False
        return True

    def _would_deadlock(self, txn: str, blockers: set[str]) -> bool:
        """Would txn waiting on *blockers* close a cycle?"""
        stack = list(blockers)
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current == txn:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._waiting_for.get(current, ()))
        return False

    def acquire(self, txn: str, resource: str,
                mode: LockMode) -> AcquireResult:
        """Try to take (or upgrade) a lock.

        GRANTED — the lock is now held.  WOULD_WAIT — the caller is
        queued; retry after the blockers release.  DEADLOCK — waiting
        would close a cycle; the caller must abort (its queue entry is
        not recorded).
        """
        state = self._state(resource)
        held = state.holders.get(txn)
        if held is mode or (held is LockMode.EXCLUSIVE
                            and mode is LockMode.SHARED):
            return AcquireResult.GRANTED
        if self._can_grant(state, txn, mode):
            state.holders[txn] = mode
            self._waiting_for.pop(txn, None)
            return AcquireResult.GRANTED
        blockers = {holder for holder, held_mode in state.holders.items()
                    if holder != txn
                    and not mode.compatible_with(held_mode)}
        if self._would_deadlock(txn, blockers):
            self.deadlocks_detected += 1
            return AcquireResult.DEADLOCK
        self._waiting_for.setdefault(txn, set()).update(blockers)
        if (txn, mode) not in state.waiters:
            state.waiters.append((txn, mode))
        return AcquireResult.WOULD_WAIT

    def cancel_wait(self, txn: str, resource: str) -> None:
        """Withdraw txn's queued request on *resource* (the caller is
        aborting instead of waiting).  Its wait set is recomputed from
        any requests still queued elsewhere."""
        state = self._state(resource)
        state.waiters = [(t, m) for t, m in state.waiters if t != txn]
        blockers: set[str] = set()
        for other in self._locks.values():
            for waiter, mode in other.waiters:
                if waiter != txn:
                    continue
                blockers.update(
                    holder for holder, held in other.holders.items()
                    if holder != txn and not mode.compatible_with(held))
        if blockers:
            self._waiting_for[txn] = blockers
        else:
            self._waiting_for.pop(txn, None)

    def waiting_for(self, txn: str) -> set[str]:
        """The transactions *txn* is currently queued behind (a copy)."""
        return set(self._waiting_for.get(txn, ()))

    def wait_graph(self) -> dict[str, set[str]]:
        """The whole wait-for graph (copies; for cross-stripe detection)."""
        return {txn: set(blockers)
                for txn, blockers in self._waiting_for.items()}

    def release_all(self, txn: str) -> list[str]:
        """Release every lock txn holds (strict 2PL: at commit/abort).

        Returns transactions whose queued requests became grantable and
        were granted (FIFO per resource).
        """
        woken: list[str] = []
        self._waiting_for.pop(txn, None)
        for resource, state in self._locks.items():
            state.holders.pop(txn, None)
            state.waiters = [(t, m) for t, m in state.waiters
                             if t != txn]
            # Grant queued requests now compatible, in FIFO order.
            still_waiting: list[tuple[str, LockMode]] = []
            for waiter, mode in state.waiters:
                if self._can_grant(state, waiter, mode):
                    state.holders[waiter] = mode
                    self._waiting_for.pop(waiter, None)
                    woken.append(waiter)
                else:
                    still_waiting.append((waiter, mode))
            state.waiters = still_waiting
        # Drop txn from others' wait sets.
        for waiting in self._waiting_for.values():
            waiting.discard(txn)
        return woken

    def acquire_or_raise(self, txn: str, resource: str,
                         mode: LockMode) -> None:
        """Convenience for single-threaded tests: DEADLOCK raises,
        WOULD_WAIT also raises (nothing else will ever release)."""
        result = self.acquire(txn, resource, mode)
        if result is AcquireResult.DEADLOCK:
            raise TransactionError(
                f"deadlock: {txn!r} aborted on {resource!r}")
        if result is AcquireResult.WOULD_WAIT:
            raise TransactionError(
                f"{txn!r} would block on {resource!r}")


class StripedLockManager:
    """Hash-striped S/X locks: one :class:`LockManager` per stripe.

    The single-manager design serializes every acquire/release behind
    one structure — fine for one store, a bottleneck once requests fan
    out across shards.  Here resources are hash-partitioned over
    *stripes* independent managers, each guarded by its own mutex, so
    transactions touching disjoint stripes never contend.

    Deadlock detection runs at two levels: each stripe's manager
    detects cycles among its own resources exactly as before, and a
    request that would wait is additionally checked against the
    *merged* wait-for graph of every stripe (stripe mutexes taken in
    index order, so two concurrent cross-stripe checks cannot
    deadlock on the mutexes themselves).  A cross-stripe cycle
    withdraws the queued request and answers DEADLOCK, preserving the
    "requester dies" policy of the single-stripe manager.
    """

    def __init__(self, stripes: int = 8) -> None:
        if stripes < 1:
            raise TransactionError("stripe count must be >= 1")
        self._managers = tuple(LockManager() for _ in range(stripes))
        self._mutexes = tuple(threading.Lock() for _ in range(stripes))
        self._cross_deadlocks = 0

    @property
    def stripe_count(self) -> int:
        return len(self._managers)

    def stripe_of(self, resource: str) -> int:
        """Deterministic stripe index for *resource* (SHA-256 based, so
        identical across processes regardless of PYTHONHASHSEED)."""
        return sha256_int(f"stripe:{resource}") % len(self._managers)

    @property
    def deadlocks_detected(self) -> int:
        """Intra-stripe detections plus cross-stripe ones."""
        return (self._cross_deadlocks
                + sum(m.deadlocks_detected for m in self._managers))

    def holders(self, resource: str) -> dict[str, LockMode]:
        index = self.stripe_of(resource)
        with self._mutexes[index]:
            return self._managers[index].holders(resource)

    def _merged_wait_graph(self) -> dict[str, set[str]]:
        merged: dict[str, set[str]] = {}
        for index, manager in enumerate(self._managers):
            with self._mutexes[index]:
                for txn, blockers in manager.wait_graph().items():
                    merged.setdefault(txn, set()).update(blockers)
        return merged

    @staticmethod
    def _closes_cycle(txn: str, graph: dict[str, set[str]]) -> bool:
        stack = list(graph.get(txn, ()))
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current == txn:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(graph.get(current, ()))
        return False

    def acquire(self, txn: str, resource: str,
                mode: LockMode) -> AcquireResult:
        """Same contract as :meth:`LockManager.acquire`, with deadlock
        detection spanning every stripe."""
        index = self.stripe_of(resource)
        with self._mutexes[index]:
            result = self._managers[index].acquire(txn, resource, mode)
        if result is not AcquireResult.WOULD_WAIT:
            return result
        # The stripe saw no local cycle; check the merged graph for one
        # closed through other stripes' waits.
        if self._closes_cycle(txn, self._merged_wait_graph()):
            with self._mutexes[index]:
                self._managers[index].cancel_wait(txn, resource)
            self._cross_deadlocks += 1
            return AcquireResult.DEADLOCK
        return AcquireResult.WOULD_WAIT

    def release_all(self, txn: str) -> list[str]:
        """Release txn's locks in every stripe; woken transactions are
        reported in stripe order (deterministic)."""
        woken: list[str] = []
        for index, manager in enumerate(self._managers):
            with self._mutexes[index]:
                woken.extend(manager.release_all(txn))
        return woken

    def acquire_or_raise(self, txn: str, resource: str,
                         mode: LockMode) -> None:
        result = self.acquire(txn, resource, mode)
        if result is AcquireResult.DEADLOCK:
            raise TransactionError(
                f"deadlock: {txn!r} aborted on {resource!r}")
        if result is AcquireResult.WOULD_WAIT:
            raise TransactionError(
                f"{txn!r} would block on {resource!r}")
