"""Relational substrate (§3.1): tables, query engine with security
filters, System R GRANT/REVOKE, transactions with integrity + security
constraints, and the open-bid web transaction model of §2.1.
"""

from repro.relational.authorization import (
    AuthorizationManager,
    Grant,
    Privilege,
)
from repro.relational.bidding import (
    AuctionStats,
    Bid,
    ImmediateLockAuction,
    Item,
    ItemState,
    OpenBidAuction,
)
from repro.relational.database import Database
from repro.relational.locks import (
    AcquireResult,
    LockManager,
    LockMode,
    StripedLockManager,
)
from repro.relational.query import ResultSet, aggregate, join, select
from repro.relational.recovery import (
    LoggedDatabase,
    LogKind,
    LogRecord,
    WriteAheadLog,
    recover,
)
from repro.relational.table import (
    Column,
    ColumnType,
    Table,
    TableSchema,
    schema,
)
from repro.relational.transactions import Transaction, TransactionManager

__all__ = [
    "AcquireResult", "AuctionStats", "AuthorizationManager", "Bid",
    "Column", "ColumnType", "Database", "Grant", "ImmediateLockAuction",
    "Item", "ItemState", "LockManager", "LockMode", "LogKind",
    "LogRecord", "LoggedDatabase", "OpenBidAuction", "Privilege",
    "ResultSet", "StripedLockManager", "Table", "TableSchema",
    "Transaction",
    "TransactionManager", "WriteAheadLog", "aggregate", "join",
    "recover", "schema", "select",
]
