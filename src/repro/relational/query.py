"""Query engine: select / project / join with security filter hooks.

"Query processing algorithms may need to take into consideration the
access control policies" (§3.1).  The engine therefore accepts optional
*row filters* and *column masks* injected by the authorization layer
(:mod:`repro.relational.authorization`) — queries never see what the
filters remove, which is the view-based enforcement conventional DBMSs
use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.errors import QueryError
from repro.relational.table import Table

RowPredicate = Callable[[Mapping[str, object]], bool]


@dataclass(frozen=True)
class ResultSet:
    """Query output: named columns + rows."""

    columns: tuple[str, ...]
    rows: tuple[tuple, ...]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def as_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[object]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise QueryError(f"result has no column {name!r}") from None
        return [row[index] for row in self.rows]


def select(table: Table,
           columns: Sequence[str] | None = None,
           where: RowPredicate | None = None,
           row_filter: RowPredicate | None = None,
           column_mask: Sequence[str] | None = None,
           order_by: str | None = None,
           limit: int | None = None) -> ResultSet:
    """Project *columns* from rows satisfying *where*.

    ``row_filter`` and ``column_mask`` are the security hooks: the filter
    drops rows before *where* even sees them; the mask silently replaces
    masked column values with None (column-level confidentiality).
    """
    names = table.schema.column_names()
    wanted = tuple(columns) if columns is not None else names
    for name in wanted:
        table.schema.column(name)
    masked = set(column_mask or ())
    for name in masked:
        table.schema.column(name)

    out_rows: list[tuple] = []
    for row in table:
        record = table.as_dict(row)
        if row_filter is not None and not row_filter(record):
            continue
        if masked:
            record = {k: (None if k in masked else v)
                      for k, v in record.items()}
        if where is not None and not where(record):
            continue
        out_rows.append(tuple(record[name] for name in wanted))

    if order_by is not None:
        if order_by not in wanted:
            raise QueryError(
                f"order_by column {order_by!r} must be selected")
        index = wanted.index(order_by)
        out_rows.sort(key=lambda r: (r[index] is None, r[index]))
    if limit is not None:
        out_rows = out_rows[:limit]
    return ResultSet(wanted, tuple(out_rows))


def join(left: Table, right: Table, on: tuple[str, str],
         columns: Sequence[str] | None = None,
         where: RowPredicate | None = None,
         left_filter: RowPredicate | None = None,
         right_filter: RowPredicate | None = None) -> ResultSet:
    """Equi-join (hash join) with per-side security filters.

    Output columns are prefixed ``left.col`` / ``right.col``; *columns*
    selects among those, defaulting to all.
    """
    left_key, right_key = on
    left.schema.column(left_key)
    right.schema.column(right_key)

    build: dict[object, list[Mapping[str, object]]] = {}
    for row in right:
        record = right.as_dict(row)
        if right_filter is not None and not right_filter(record):
            continue
        build.setdefault(record[right_key], []).append(record)

    left_names = [f"{left.schema.name}.{c}"
                  for c in left.schema.column_names()]
    right_names = [f"{right.schema.name}.{c}"
                   for c in right.schema.column_names()]
    all_names = tuple(left_names + right_names)
    wanted = tuple(columns) if columns is not None else all_names
    for name in wanted:
        if name not in all_names:
            raise QueryError(f"join result has no column {name!r}")

    out_rows: list[tuple] = []
    for row in left:
        record = left.as_dict(row)
        if left_filter is not None and not left_filter(record):
            continue
        for match in build.get(record[left_key], ()):
            combined = {f"{left.schema.name}.{k}": v
                        for k, v in record.items()}
            combined.update({f"{right.schema.name}.{k}": v
                             for k, v in match.items()})
            if where is not None and not where(combined):
                continue
            out_rows.append(tuple(combined[name] for name in wanted))
    return ResultSet(wanted, tuple(out_rows))


def aggregate(result: ResultSet, column: str,
              function: str) -> float | int | None:
    """COUNT / SUM / AVG / MIN / MAX over a result column."""
    if function == "count":
        return len(result)
    values = [v for v in result.column(column) if v is not None]
    if not values:
        return None
    numbers = [float(v) for v in values]  # type: ignore[arg-type]
    if function == "sum":
        return sum(numbers)
    if function == "avg":
        return sum(numbers) / len(numbers)
    if function == "min":
        return min(numbers)
    if function == "max":
        return max(numbers)
    raise QueryError(f"unknown aggregate {function!r}")
