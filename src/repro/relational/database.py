"""The relational database: catalog, metadata manager, secure facade.

Combines tables (:mod:`repro.relational.table`), the query engine and the
System R authorization manager into one object with a user-facing secure
API: ``db.select(user, ...)`` enforces privileges and injects the
grant-derived row filters / column masks automatically.

Also hosts the *metadata manager* of §2.1: "Metadata describes all of the
information pertaining to a data source ... the types of users, access
control issues, and policies enforced" — per-table metadata records that
the inference controller and benchmarks read.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.errors import QueryError
from repro.relational.authorization import AuthorizationManager, Privilege
from repro.relational.query import ResultSet, join, select
from repro.relational.table import Table, TableSchema

RowPredicate = Callable[[Mapping[str, object]], bool]


class Database:
    """Catalog of tables with integrated authorization."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.authorization = AuthorizationManager()
        self._tables: dict[str, Table] = {}
        self._metadata: dict[str, dict[str, object]] = {}

    # -- catalog ------------------------------------------------------------

    def create_table(self, table_schema: TableSchema,
                     owner: str) -> Table:
        if table_schema.name in self._tables:
            raise QueryError(f"table {table_schema.name!r} already exists")
        table = Table(table_schema)
        self._tables[table_schema.name] = table
        self._metadata[table_schema.name] = {}
        self.authorization.set_owner(table_schema.name, owner)
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"no table {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- metadata manager ------------------------------------------------------

    def set_metadata(self, table: str, key: str, value: object) -> None:
        self.table(table)
        self._metadata[table][key] = value

    def get_metadata(self, table: str, key: str,
                     default: object = None) -> object:
        self.table(table)
        return self._metadata[table].get(key, default)

    # -- secure data access ------------------------------------------------------

    def insert(self, user: str, table_name: str, **values: object) -> None:
        self.authorization.enforce(user, table_name, Privilege.INSERT)
        self.table(table_name).insert_dict(**values)

    def select(self, user: str, table_name: str,
               columns: Sequence[str] | None = None,
               where: RowPredicate | None = None,
               order_by: str | None = None,
               limit: int | None = None) -> ResultSet:
        """SELECT with grant-derived restriction injection."""
        self.authorization.enforce(user, table_name, Privilege.SELECT)
        row_filter, column_mask = self.authorization.restriction(
            user, table_name, Privilege.SELECT)
        return select(self.table(table_name), columns, where,
                      row_filter=row_filter, column_mask=column_mask,
                      order_by=order_by, limit=limit)

    def join(self, user: str, left_name: str, right_name: str,
             on: tuple[str, str],
             columns: Sequence[str] | None = None,
             where: RowPredicate | None = None) -> ResultSet:
        self.authorization.enforce(user, left_name, Privilege.SELECT)
        self.authorization.enforce(user, right_name, Privilege.SELECT)
        left_filter, _ = self.authorization.restriction(
            user, left_name, Privilege.SELECT)
        right_filter, _ = self.authorization.restriction(
            user, right_name, Privilege.SELECT)
        return join(self.table(left_name), self.table(right_name), on,
                    columns, where,
                    left_filter=left_filter, right_filter=right_filter)

    def update(self, user: str, table_name: str,
               where: RowPredicate, changes: Mapping[str, object]) -> int:
        self.authorization.enforce(user, table_name, Privilege.UPDATE)
        return self.table(table_name).update_where(where, changes)

    def delete(self, user: str, table_name: str,
               where: RowPredicate) -> int:
        self.authorization.enforce(user, table_name, Privilege.DELETE)
        return self.table(table_name).delete_where(where)
