"""Recovery: a write-ahead log with redo/undo crash recovery (§2.1).

The second half of "appropriate concurrency control and recovery
techniques": every change is logged before it is applied; a *crash*
loses the in-memory tables but not the log; :func:`recover` rebuilds the
database by redoing committed transactions and ignoring (thereby
undoing) uncommitted ones.  The log is hash-chained with the same
machinery as the audit log, so log tampering is also detectable —
"malicious corruption" applied to the recovery subsystem.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import IntegrityError, TransactionError
from repro.crypto.hashing import sha256_hex
from repro.relational.database import Database
from repro.relational.table import TableSchema


class LogKind(enum.Enum):
    BEGIN = "begin"
    INSERT = "insert"
    DELETE = "delete"
    COMMIT = "commit"
    ABORT = "abort"


GENESIS = "0" * 64


@dataclass(frozen=True)
class LogRecord:
    """One WAL entry; ``row`` is the full row image (physical logging)."""

    sequence: int
    txn_id: int
    kind: LogKind
    table: str = ""
    row: tuple = ()
    previous_digest: str = GENESIS
    digest: str = ""

    @staticmethod
    def compute_digest(sequence: int, txn_id: int, kind: LogKind,
                       table: str, row: tuple,
                       previous_digest: str) -> str:
        body = json.dumps([sequence, txn_id, kind.value, table,
                           list(map(repr, row)), previous_digest],
                          separators=(",", ":"))
        return sha256_hex(body)


class WriteAheadLog:
    """Append-only, hash-chained log."""

    def __init__(self) -> None:
        self._records: list[LogRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def append(self, txn_id: int, kind: LogKind, table: str = "",
               row: tuple = ()) -> LogRecord:
        previous = self._records[-1].digest if self._records else GENESIS
        sequence = len(self._records)
        digest = LogRecord.compute_digest(sequence, txn_id, kind, table,
                                          row, previous)
        record = LogRecord(sequence, txn_id, kind, table, row, previous,
                           digest)
        self._records.append(record)
        return record

    def verify(self) -> bool:
        previous = GENESIS
        for index, record in enumerate(self._records):
            if record.sequence != index or \
                    record.previous_digest != previous:
                raise IntegrityError(f"WAL broken at record {index}")
            expected = LogRecord.compute_digest(
                record.sequence, record.txn_id, record.kind,
                record.table, record.row, record.previous_digest)
            if expected != record.digest:
                raise IntegrityError(f"WAL digest mismatch at {index}")
            previous = record.digest
        return True


class LoggedDatabase:
    """A Database facade that WAL-logs inserts and deletes.

    Only the operations the recovery demo needs are wrapped; updates can
    be expressed as delete+insert.  Transactions must ``begin`` /
    ``commit`` / ``abort`` explicitly.
    """

    def __init__(self, database: Database,
                 log: WriteAheadLog | None = None) -> None:
        self.database = database
        self.log = log if log is not None else WriteAheadLog()
        self._next_txn = 1
        self._active: set[int] = set()

    def begin(self) -> int:
        txn_id = self._next_txn
        self._next_txn += 1
        self._active.add(txn_id)
        self.log.append(txn_id, LogKind.BEGIN)
        return txn_id

    def _require_active(self, txn_id: int) -> None:
        if txn_id not in self._active:
            raise TransactionError(f"txn {txn_id} is not active")

    def insert(self, txn_id: int, user: str, table: str,
               **values: object) -> None:
        self._require_active(txn_id)
        table_obj = self.database.table(table)
        row = tuple(values.get(c.name)
                    for c in table_obj.schema.columns)
        # Log first, then apply — the write-ahead rule.
        self.log.append(txn_id, LogKind.INSERT, table, row)
        self.database.insert(user, table, **values)

    def delete(self, txn_id: int, user: str, table: str,
               **key: object) -> int:
        self._require_active(txn_id)
        table_obj = self.database.table(table)
        column, value = next(iter(key.items()))
        victims = [row for row in table_obj
                   if table_obj.as_dict(row)[column] == value]
        for row in victims:
            self.log.append(txn_id, LogKind.DELETE, table, row)
        return self.database.delete(
            user, table, lambda r: r[column] == value)

    def commit(self, txn_id: int) -> None:
        self._require_active(txn_id)
        self.log.append(txn_id, LogKind.COMMIT)
        self._active.discard(txn_id)

    def abort(self, txn_id: int) -> None:
        """Logical abort: log it; recovery ignores the txn's changes.
        (The live in-memory state is rebuilt via :func:`recover` in the
        crash demo; live rollback is TransactionManager's job.)"""
        self._require_active(txn_id)
        self.log.append(txn_id, LogKind.ABORT)
        self._active.discard(txn_id)


def recover(log: WriteAheadLog,
            schemas: Iterable[TableSchema],
            owner: str = "dba") -> Database:
    """Rebuild a database from the WAL after a crash.

    Redo pass only (physical full-row images): changes of transactions
    with a COMMIT record are replayed; everything else — active at the
    crash or explicitly aborted — is skipped, which *is* the undo.
    The log chain is verified first: recovery refuses a tampered log.
    """
    log.verify()
    committed = {record.txn_id for record in log
                 if record.kind is LogKind.COMMIT}
    database = Database("recovered")
    for schema in schemas:
        database.create_table(schema, owner=owner)
    for record in log:
        if record.txn_id not in committed:
            continue
        if record.kind is LogKind.INSERT:
            table = database.table(record.table)
            table.insert(*record.row)
        elif record.kind is LogKind.DELETE:
            table = database.table(record.table)
            target = record.row

            table.delete_where(
                lambda r, t=table, row=target:
                tuple(r[c] for c in t.schema.column_names()) == row)
    return database
