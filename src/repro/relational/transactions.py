"""Transactions with integrity *and* security constraint checking.

"Transaction management algorithms may also need to consider the security
policies.  For example, the transaction will have to ensure that the
integrity as well as security constraints are satisfied" (§3.1).

A :class:`TransactionManager` runs transactions against a
:class:`~repro.relational.database.Database` with snapshot-based rollback
and two families of commit-time checks:

* *integrity constraints* — predicates over table contents;
* *security constraints* — predicates over (user, table, staged changes),
  e.g. "user X may not move salary values above 100k in one transaction".

Either kind failing aborts the transaction atomically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.errors import TransactionError
from repro.relational.database import Database
from repro.relational.table import Row, Table

IntegrityConstraint = Callable[[Table], bool]
SecurityConstraint = Callable[[str, str, list[Row]], bool]

_txn_ids = itertools.count(1)


@dataclass
class Transaction:
    """One open transaction: staged table snapshots + touched tables."""

    txn_id: int
    user: str
    snapshots: dict[str, list[Row]] = field(default_factory=dict)
    touched: set[str] = field(default_factory=set)
    active: bool = True


class TransactionManager:
    """Begin/commit/abort over a Database, with constraint enforcement."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._integrity: dict[str, list[tuple[str, IntegrityConstraint]]] = {}
        self._security: dict[str, list[tuple[str, SecurityConstraint]]] = {}
        self.committed = 0
        self.aborted = 0

    # -- constraint registration ---------------------------------------------

    def add_integrity_constraint(self, table: str, name: str,
                                 constraint: IntegrityConstraint) -> None:
        self._integrity.setdefault(table, []).append((name, constraint))

    def add_security_constraint(self, table: str, name: str,
                                constraint: SecurityConstraint) -> None:
        self._security.setdefault(table, []).append((name, constraint))

    # -- lifecycle -------------------------------------------------------------

    def begin(self, user: str) -> Transaction:
        return Transaction(next(_txn_ids), user)

    def _snapshot(self, txn: Transaction, table_name: str) -> None:
        if table_name not in txn.snapshots:
            txn.snapshots[table_name] = (
                self.database.table(table_name).snapshot())
        txn.touched.add(table_name)

    # -- operations within a transaction ----------------------------------------

    def insert(self, txn: Transaction, table_name: str,
               **values: object) -> None:
        self._require_active(txn)
        self._snapshot(txn, table_name)
        self.database.insert(txn.user, table_name, **values)

    def update(self, txn: Transaction, table_name: str,
               where: Callable[[Mapping[str, object]], bool],
               changes: Mapping[str, object]) -> int:
        self._require_active(txn)
        self._snapshot(txn, table_name)
        return self.database.update(txn.user, table_name, where, changes)

    def delete(self, txn: Transaction, table_name: str,
               where: Callable[[Mapping[str, object]], bool]) -> int:
        self._require_active(txn)
        self._snapshot(txn, table_name)
        return self.database.delete(txn.user, table_name, where)

    # -- commit / abort ------------------------------------------------------------

    def commit(self, txn: Transaction) -> None:
        """Check every constraint on touched tables; abort on failure."""
        self._require_active(txn)
        for table_name in sorted(txn.touched):
            table = self.database.table(table_name)
            for name, constraint in self._integrity.get(table_name, ()):
                if not constraint(table):
                    self.abort(txn)
                    raise TransactionError(
                        f"txn {txn.txn_id}: integrity constraint "
                        f"{name!r} violated on {table_name!r}")
            staged = self._staged_changes(txn, table_name)
            for name, constraint in self._security.get(table_name, ()):
                if not constraint(txn.user, table_name, staged):
                    self.abort(txn)
                    raise TransactionError(
                        f"txn {txn.txn_id}: security constraint "
                        f"{name!r} violated on {table_name!r}")
        txn.active = False
        self.committed += 1

    def abort(self, txn: Transaction) -> None:
        if not txn.active:
            return
        for table_name, rows in txn.snapshots.items():
            self.database.table(table_name).restore(rows)
        txn.active = False
        self.aborted += 1

    def _staged_changes(self, txn: Transaction,
                        table_name: str) -> list[Row]:
        """Rows present now but not in the pre-transaction snapshot."""
        before = set(txn.snapshots.get(table_name, []))
        return [row for row in self.database.table(table_name)
                if row not in before]

    @staticmethod
    def _require_active(txn: Transaction) -> None:
        if not txn.active:
            raise TransactionError(
                f"transaction {txn.txn_id} is no longer active")
