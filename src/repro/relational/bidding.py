"""Web transaction models: immediate-lock vs open bidding (§2.1).

"Various items may be sold through the Internet.  In this case, the item
should not be locked immediately when a potential buyer makes a bid.  It
has to be left open until several bids are received and the item is sold.
That is, special transaction models are needed."

Two auction engines over the same item table:

* :class:`ImmediateLockAuction` — the conventional model: the first bid
  exclusively locks the item; later bids are rejected until the holder
  completes or releases.  Simple, but starves concurrent bidders.
* :class:`OpenBidAuction` — the web model the paper calls for: bids
  accumulate during a bidding window; closing the item atomically sells
  to the best bid.

Benchmark E14 drives both with the same bid stream and compares
throughput, rejected bids, and sale prices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import TransactionError


class ItemState(enum.Enum):
    OPEN = "open"
    LOCKED = "locked"
    SOLD = "sold"


@dataclass
class Item:
    item_id: str
    reserve_price: float
    state: ItemState = ItemState.OPEN
    winner: str | None = None
    sale_price: float | None = None


@dataclass(frozen=True)
class Bid:
    bidder: str
    item_id: str
    amount: float


@dataclass
class AuctionStats:
    bids_received: int = 0
    bids_rejected: int = 0
    items_sold: int = 0
    revenue: float = 0.0


class ImmediateLockAuction:
    """First bid locks the item exclusively (conventional 2PL thinking)."""

    def __init__(self) -> None:
        self._items: dict[str, Item] = {}
        self._locks: dict[str, tuple[str, float]] = {}
        self.stats = AuctionStats()

    def list_item(self, item_id: str, reserve_price: float) -> Item:
        if item_id in self._items:
            raise TransactionError(f"item {item_id!r} already listed")
        item = Item(item_id, reserve_price)
        self._items[item_id] = item
        return item

    def place_bid(self, bid: Bid) -> bool:
        """True if the bid took the lock; False if rejected."""
        self.stats.bids_received += 1
        item = self._items[bid.item_id]
        if item.state is not ItemState.OPEN:
            self.stats.bids_rejected += 1
            return False
        if bid.amount < item.reserve_price:
            self.stats.bids_rejected += 1
            return False
        item.state = ItemState.LOCKED
        self._locks[bid.item_id] = (bid.bidder, bid.amount)
        return True

    def complete_sale(self, item_id: str) -> Item:
        item = self._items[item_id]
        if item.state is not ItemState.LOCKED:
            raise TransactionError(f"item {item_id!r} is not locked")
        bidder, amount = self._locks.pop(item_id)
        item.state = ItemState.SOLD
        item.winner = bidder
        item.sale_price = amount
        self.stats.items_sold += 1
        self.stats.revenue += amount
        return item

    def release(self, item_id: str) -> None:
        """Lock holder walks away; item reopens."""
        item = self._items[item_id]
        if item.state is ItemState.LOCKED:
            self._locks.pop(item_id, None)
            item.state = ItemState.OPEN

    def item(self, item_id: str) -> Item:
        return self._items[item_id]


class OpenBidAuction:
    """Bids accumulate; closing sells to the best one (the §2.1 model)."""

    def __init__(self) -> None:
        self._items: dict[str, Item] = {}
        self._bids: dict[str, list[Bid]] = {}
        self.stats = AuctionStats()

    def list_item(self, item_id: str, reserve_price: float) -> Item:
        if item_id in self._items:
            raise TransactionError(f"item {item_id!r} already listed")
        item = Item(item_id, reserve_price)
        self._items[item_id] = item
        self._bids[item_id] = []
        return item

    def place_bid(self, bid: Bid) -> bool:
        """Bids are accepted while the item is open — never locked out."""
        self.stats.bids_received += 1
        item = self._items[bid.item_id]
        if item.state is not ItemState.OPEN:
            self.stats.bids_rejected += 1
            return False
        self._bids[bid.item_id].append(bid)
        return True

    def bid_count(self, item_id: str) -> int:
        return len(self._bids[item_id])

    def close(self, item_id: str) -> Item:
        """Atomically sell to the best bid meeting the reserve."""
        item = self._items[item_id]
        if item.state is not ItemState.OPEN:
            raise TransactionError(f"item {item_id!r} is not open")
        valid = [b for b in self._bids[item_id]
                 if b.amount >= item.reserve_price]
        if not valid:
            item.state = ItemState.SOLD  # closed unsold
            item.sale_price = None
            return item
        best = max(valid, key=lambda b: (b.amount, b.bidder))
        item.state = ItemState.SOLD
        item.winner = best.bidder
        item.sale_price = best.amount
        self.stats.items_sold += 1
        self.stats.revenue += best.amount
        return item

    def item(self, item_id: str) -> Item:
        return self._items[item_id]
