"""Caching primitives for the hot paths (ROADMAP: "as fast as the
hardware allows").

Two cache shapes cover every hot path in the library:

* :class:`LRUCache` — a bounded least-recently-used map for results that
  never go stale, e.g. compiled XPath expressions keyed by source text
  (an XPath value is immutable, so sharing one compiled object across
  callers is safe).

* :class:`GenerationalCache` — a bounded LRU whose entries are stamped
  with the *generation* of the state they were computed from.  Mutable
  authorities (a :class:`~repro.core.policy.PolicyBase`, an
  :class:`~repro.relational.authorization.AuthorizationManager`, an XML
  document) carry a monotonically increasing generation counter bumped
  by every mutation; a lookup supplies the current generation and any
  entry with a different stamp is a miss.  Invalidation therefore costs
  one integer increment — no scanning, no explicit eviction — and a
  cached decision can never outlive the policy state that produced it.

Both caches take an internal lock around their bookkeeping, so reads
from the parallel dissemination path (:mod:`repro.xmlsec.dissemination`)
are safe; the cached *values* are immutable or treated as read-only by
convention (documented per call site).

This module deliberately imports nothing from the rest of ``repro`` so
that the lowest layers (``xmldb.xpath``) can use it without cycles.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

#: Sentinel distinguishing "not cached" from a cached None/False value.
MISS: Any = object()


@dataclass
class CacheStats:
    """Hit/miss bookkeeping, exposed so benchmarks can report rates."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stale_drops: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict[str, int | float]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "stale_drops": self.stale_drops,
                "hit_rate": round(self.hit_rate, 4)}


class LRUCache:
    """A bounded least-recently-used mapping.

    ``get`` returns :data:`MISS` when absent so that falsy values are
    cacheable.  Not generation-aware: use it only for immutable results
    (compiled XPaths, derived keys), never for policy decisions.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class Generation:
    """A monotonically increasing mutation counter with change hooks.

    Authorities embed one of these; every mutating operation calls
    :meth:`bump`, which also fires any registered invalidation hooks
    (external caches that cannot be generation-stamped, e.g. a path
    index, subscribe here).
    """

    def __init__(self) -> None:
        self._value = 0
        self._hooks: list[Callable[[], None]] = []

    @property
    def value(self) -> int:
        return self._value

    def bump(self) -> int:
        self._value += 1
        for hook in self._hooks:
            hook()
        return self._value

    def add_hook(self, hook: Callable[[], None]) -> None:
        self._hooks.append(hook)


class ShardedGeneration:
    """One :class:`Generation` per shard instead of one global counter.

    With a single global counter, *any* write invalidates *every* warm
    cache entry: a grant touching shard A's tables stales decisions
    about shard B's, even though nothing shard B serves could have
    changed.  Sharded stores (:mod:`repro.scale`) therefore stamp cache
    entries with the generation of the shard that owns the key; a write
    bumps only its own shard's counter, and every other shard's warm
    entries keep hitting.

    ``stamps()`` returns the tuple of all per-shard values for the rare
    cross-shard results (scatter-gather aggregates) that genuinely
    depend on every shard's state.
    """

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ValueError("shard count must be >= 1")
        self._generations = tuple(Generation()
                                  for _ in range(shard_count))

    @property
    def shard_count(self) -> int:
        return len(self._generations)

    def generation(self, shard: int) -> Generation:
        """The underlying counter of one shard (for hook registration)."""
        return self._generations[shard]

    def stamp(self, shard: int) -> int:
        """The current generation of *shard* — the per-shard cache stamp."""
        return self._generations[shard].value

    def stamps(self) -> tuple[int, ...]:
        """All shard generations at once — the cross-shard cache stamp."""
        return tuple(g.value for g in self._generations)

    def bump(self, shard: int) -> int:
        """Record a mutation in *shard*; other shards are untouched."""
        return self._generations[shard].bump()

    def add_hook(self, shard: int, hook: Callable[[], None]) -> None:
        """Call *hook* after every mutation of *shard* (only)."""
        self._generations[shard].add_hook(hook)


class DerivedArtifact:
    """Base for artifacts compiled from a generation-stamped source.

    A derived artifact (a compiled decision table, a path index, a
    serialized snapshot) is a *pure function of its source at one
    generation*.  Subclasses record the source generation at build time;
    consumers compare it against the source's current counter before
    every read — ``is_stale`` is the one-integer freshness check the
    ``LINT-STALECOMPILE`` lint rule expects compiled-artifact call sites
    to perform.  The class deliberately knows nothing about how to
    rebuild: recompilation policy belongs to the engine owning the
    artifact, staleness detection belongs here.
    """

    def __init__(self, source_generation: int) -> None:
        self.source_generation = source_generation

    def is_stale(self, current_generation: int) -> bool:
        """True when the source has mutated since this was derived."""
        return current_generation != self.source_generation


@dataclass
class _Stamped:
    stamp: Hashable
    value: Any
    # Strong references pinning the objects a key identifies by ``id()``
    # or identity-hash, so a dead object's recycled id can never alias a
    # live cache entry.
    pins: tuple = ()


class GenerationalCache:
    """A bounded LRU whose entries self-invalidate by generation stamp.

    ``get(key, stamp)`` hits only when the stored stamp equals *stamp*
    (stamps may be tuples, e.g. ``(policy_generation, doc_version)``).
    A stale entry is dropped on sight, so a burst of mutations costs
    nothing until the next lookup.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, _Stamped] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, stamp: Hashable) -> Any:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return MISS
            if entry.stamp != stamp:
                del self._entries[key]
                self.stats.stale_drops += 1
                self.stats.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.value

    def put(self, key: Hashable, stamp: Hashable, value: Any,
            pins: tuple = ()) -> None:
        with self._lock:
            self._entries[key] = _Stamped(stamp, value, pins)
            self._entries.move_to_end(key)
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
