"""Cross-cutting performance layer.

``repro.perf`` hosts the machinery the hot paths share:

* :mod:`repro.perf.cache` — bounded LRU and generation-stamped caches
  (compiled XPaths, policy decisions, document labellings);
* :mod:`repro.perf.multipath` — one-traversal evaluation of many XPath
  expressions at once, used by Author-X labelling and the dissemination
  packager.

``cache`` is import-cycle-free (it imports nothing from ``repro``) so
the lowest layers can use it; ``multipath`` sits above ``xmldb.xpath``
and is loaded lazily here so that ``xmldb.xpath`` itself can import
``repro.perf.cache`` without a cycle.
"""

from __future__ import annotations

from repro.perf.cache import (
    MISS,
    CacheStats,
    Generation,
    GenerationalCache,
    LRUCache,
)

_LAZY = ("simultaneous_select", "supports_path")

__all__ = ["MISS", "CacheStats", "Generation", "GenerationalCache",
           "LRUCache", *_LAZY]


def __getattr__(name: str):
    if name in _LAZY:
        from repro.perf import multipath
        return getattr(multipath, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
