"""Simultaneous evaluation of many XPath-lite expressions in one pass.

The Author-X labelling algorithm (:mod:`repro.xmlsec.authorx`) and the
dissemination packager (:mod:`repro.xmlsec.dissemination`) both need the
target sets of *every* applicable policy.  Evaluating each policy's
XPath separately walks the whole DOM once per policy — O(policies ×
nodes).  :func:`simultaneous_select` walks the DOM exactly once,
carrying an NFA-style state set per path:

* a *state* is a step index ``i`` meaning "steps ``0..i-1`` matched on
  the path from the root; step ``i`` is now looking for a match";
* a state whose step has the ``child`` axis applies only to the direct
  children of the node where step ``i-1`` matched; a ``descendant``
  state applies to the whole subtree below and stays active even after
  matching (descendant pools contain every descendant, so a chain of
  nested matches is possible);
* when the *final* step of a path matches a node, the node joins that
  path's result set.

Results are returned in document (pre-order) position, deduplicated —
exactly the *sets* :func:`repro.xmldb.xpath.select_elements` produces
for the same expressions (a property test cross-checks this).  Note the
classic engine's sequence order is stage-wise (all matches of one
context before the next context's), which for multi-step paths is not
always document order; every caller here resolves marks per element, so
only set equality matters.

Positional predicates (``[2]``) rank a node among the *matched
candidates of one context node*, which a streaming matcher cannot know
until the context's subtree is exhausted; paths using them — and paths
selecting attributes/text rather than elements — are not supported
here.  Callers check :func:`supports_path` and route unsupported paths
through the classic engine (see ``XmlPolicyBase.select_policy_targets``).
"""

from __future__ import annotations

from typing import Sequence

from repro.xmldb.model import Document, Element
from repro.xmldb.xpath import XPath, _passes, compile_xpath


def supports_path(path: XPath) -> bool:
    """True when *path* can be evaluated by the simultaneous matcher."""
    last = path.steps[-1]
    if last.test.startswith("@") or last.test == "text()":
        return False
    return not any(predicate.kind == "index"
                   for step in path.steps
                   for predicate in step.predicates)


def simultaneous_select(paths: Sequence[XPath | str],
                        context: Document | Element
                        ) -> list[list[Element]]:
    """Evaluate every path in one DOM traversal.

    Returns one element list per input path, each equal (as an ordered
    set, in document order) to ``select_elements(path, context)``.
    Raises ValueError if any path is unsupported — callers are expected
    to partition with :func:`supports_path` first.
    """
    compiled = [compile_xpath(p) if isinstance(p, str) else p
                for p in paths]
    unsupported = [str(p) for p in compiled if not supports_path(p)]
    if unsupported:
        raise ValueError(
            f"paths not supported by the simultaneous matcher: "
            f"{unsupported}")
    root = context.root if isinstance(context, Document) else context

    count = len(compiled)
    results: list[list[Element]] = [[] for _ in compiled]
    selected: list[set[int]] = [set() for _ in compiled]

    # Per step: (node test, predicates, is-final, next step's axis is
    # child).  Flattened once so the traversal touches no Step objects.
    infos: list[list[tuple[str, tuple, bool, bool]]] = []
    for path in compiled:
        steps = path.steps
        last = len(steps) - 1
        infos.append([
            (step.test, tuple(step.predicates), i == last,
             i < last and steps[i + 1].axis == "child")
            for i, step in enumerate(steps)])

    # Initial states.  The classic engine starts with current=[root]:
    # an absolute child-first path matches the root element itself (the
    # document node is its virtual parent); every other first step —
    # relative child-first, or any descendant-first — applies to the
    # root's children / strict descendants, never the root.
    empty: tuple[int, ...] = ()
    root_child: list[tuple[int, ...]] = []
    below_child: list[tuple[int, ...]] = []
    below_desc: list[tuple[int, ...]] = []
    for path in compiled:
        first = path.steps[0]
        if path.absolute and first.axis == "child":
            root_child.append((0,))
            below_child.append(empty)
            below_desc.append(empty)
        elif first.axis == "child":
            root_child.append(empty)
            below_child.append((0,))
            below_desc.append(empty)
        else:
            root_child.append(empty)
            below_child.append(empty)
            below_desc.append((0,))

    # States are tuples (state indices are unique per path: a state's
    # membership class — child vs descendant — is fixed by its step's
    # axis, and two distinct states never grow the same successor).
    # Tuples are reused unchanged wherever possible so quiet subtrees
    # allocate almost nothing per node.
    def visit(node: Element,
              child_states: list[tuple[int, ...]],
              desc_states: list[tuple[int, ...]],
              extra_child: list[tuple[int, ...]] | None,
              extra_desc: list[tuple[int, ...]] | None) -> None:
        tag = node.tag
        next_child: list[tuple[int, ...]] = []
        next_desc: list[tuple[int, ...]] = []
        descend = False
        for index in range(count):
            info = infos[index]
            desc = desc_states[index]
            grown_child: list[int] | None = None
            grown_desc: list[int] | None = None
            for state in child_states[index] + desc:
                test, predicates, is_final, next_is_child = info[state]
                if test != "*" and tag != test:
                    continue
                if predicates and not all(_passes(node, p)
                                          for p in predicates):
                    continue
                if is_final:
                    if id(node) not in selected[index]:
                        selected[index].add(id(node))
                        results[index].append(node)
                elif next_is_child:
                    if grown_child is None:
                        grown_child = [state + 1]
                    else:
                        grown_child.append(state + 1)
                elif state + 1 not in desc:
                    if grown_desc is None:
                        grown_desc = [state + 1]
                    else:
                        grown_desc.append(state + 1)
            if extra_child is not None and extra_child[index]:
                grown_child = ((grown_child or [])
                               + [s for s in extra_child[index]
                                  if grown_child is None
                                  or s not in grown_child])
            if extra_desc is not None and extra_desc[index]:
                grown_desc = ((grown_desc or [])
                              + [s for s in extra_desc[index]
                                 if s not in desc
                                 and (grown_desc is None
                                      or s not in grown_desc)])
            child_next = empty if grown_child is None else tuple(grown_child)
            # Descendant states persist down the whole subtree.
            desc_next = desc if grown_desc is None else desc + tuple(grown_desc)
            next_child.append(child_next)
            next_desc.append(desc_next)
            if child_next or desc_next:
                descend = True
        if descend:
            for child in node.element_children:
                visit(child, next_child, next_desc, None, None)

    visit(root, root_child, [empty] * count, below_child, below_desc)
    return results
