"""XPath-lite: the query language of the XML database.

Supported grammar (a practical XPath 1.0 subset)::

    path      := '/'? step ('/' step)* | '//' step ('/' step)*
    step      := axis? nodetest predicate*
    axis      := 'descendant::' | (empty = child) | '//' shorthand
    nodetest  := NAME | '*' | '@NAME' | '@*' | 'text()'
    predicate := '[' INTEGER ']'                 positional (1-based)
               | '[' relpath ']'                 existence
               | '[' relpath '=' STRING ']'      value comparison
               | '[' '@NAME' ('=' STRING)? ']'   attribute tests

Examples::

    /hospital/record
    //record[@id='r1']/diagnosis
    /hospital/record[diagnosis='flu']/name
    //record[2]
    //name/text()

Evaluation returns a list of :class:`Element`, attribute values (str) or
text values (str) depending on the final step.  The engine is deliberately
simple — a reference naive evaluator lives in the tests to cross-check it
property-style.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ParseError, QueryError
from repro.perf.cache import MISS, LRUCache
from repro.xmldb.model import Document, Element

#: Compiled expressions keyed by (stripped) source text.  XPath values
#: are immutable, so one compiled object is safely shared by every
#: caller; parse errors are not cached.
_COMPILE_CACHE = LRUCache(maxsize=4096)


@dataclass(frozen=True)
class Predicate:
    """One ``[...]`` filter on a step."""

    kind: str                 # 'index' | 'exists' | 'equals' | 'attr-exists' | 'attr-equals'
    path: tuple[str, ...] = ()
    attribute: str = ""
    value: str = ""
    index: int = 0


@dataclass(frozen=True)
class Step:
    """One location step."""

    axis: str                 # 'child' | 'descendant'
    test: str                 # tag name, '*', '@name', '@*', 'text()'
    predicates: tuple[Predicate, ...] = ()


@dataclass(frozen=True)
class XPath:
    """A compiled path expression."""

    steps: tuple[Step, ...]
    absolute: bool
    source: str

    def __str__(self) -> str:
        return self.source


class _Tokenizer:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, count: int = 1) -> str:
        return self.text[self.pos:self.pos + count]

    def take(self, literal: str) -> bool:
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.take(literal):
            raise ParseError(f"expected {literal!r} in XPath", self.pos)

    def read_name(self) -> str:
        start = self.pos
        while not self.eof():
            ch = self.text[self.pos]
            if ch.isalnum() or ch in "_-.":
                self.pos += 1
            else:
                break
        if self.pos == start:
            raise ParseError("expected a name in XPath", start)
        return self.text[start:self.pos]

    def read_string(self) -> str:
        quote = self.peek()
        if quote not in ("'", '"'):
            raise ParseError("expected a quoted string in XPath", self.pos)
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end < 0:
            raise ParseError("unterminated string in XPath", self.pos)
        value = self.text[self.pos:end]
        self.pos = end + 1
        return value


def _parse_nodetest(tok: _Tokenizer) -> str:
    if tok.take("@"):
        if tok.take("*"):
            return "@*"
        return "@" + tok.read_name()
    if tok.take("*"):
        return "*"
    name = tok.read_name()
    if name == "text" and tok.take("()"):
        return "text()"
    return name


def _parse_predicate(tok: _Tokenizer) -> Predicate:
    tok.expect("[")
    # positional predicate
    start = tok.pos
    if not tok.eof() and tok.peek().isdigit():
        digits = ""
        while not tok.eof() and tok.peek().isdigit():
            digits += tok.text[tok.pos]
            tok.pos += 1
        tok.expect("]")
        index = int(digits)
        if index < 1:
            raise ParseError("positional predicates are 1-based", start)
        return Predicate("index", index=index)
    if tok.take("@"):
        attribute = tok.read_name()
        if tok.take("="):
            value = tok.read_string()
            tok.expect("]")
            return Predicate("attr-equals", attribute=attribute, value=value)
        tok.expect("]")
        return Predicate("attr-exists", attribute=attribute)
    # relative path predicate (existence or equality)
    names = [tok.read_name()]
    while tok.take("/"):
        names.append(tok.read_name())
    if tok.take("="):
        value = tok.read_string()
        tok.expect("]")
        return Predicate("equals", path=tuple(names), value=value)
    tok.expect("]")
    return Predicate("exists", path=tuple(names))


def compile_xpath(text: str, use_cache: bool = True) -> XPath:
    """Compile an XPath-lite expression; raises ParseError on bad syntax.

    Results are memoized in a process-wide LRU keyed by source text, so
    repeated evaluation of the same expression string (the common shape:
    policies re-checked per request) skips tokenization entirely.
    """
    source = text.strip()
    if use_cache:
        cached = _COMPILE_CACHE.get(source)
        if cached is not MISS:
            return cached
    compiled = _compile_uncached(source)
    if use_cache:
        _COMPILE_CACHE.put(source, compiled)
    return compiled


def compile_cache_stats() -> dict[str, int | float]:
    """Hit/miss counters of the compile cache (for benchmarks)."""
    return _COMPILE_CACHE.stats.snapshot()


def _compile_uncached(source: str) -> XPath:
    tok = _Tokenizer(source)
    steps: list[Step] = []
    absolute = False
    axis = "child"
    if tok.take("//"):
        absolute = True
        axis = "descendant"
    elif tok.take("/"):
        absolute = True
    while True:
        test = _parse_nodetest(tok)
        predicates: list[Predicate] = []
        while tok.peek() == "[":
            predicates.append(_parse_predicate(tok))
        steps.append(Step(axis, test, tuple(predicates)))
        if tok.take("//"):
            axis = "descendant"
            continue
        if tok.take("/"):
            axis = "child"
            continue
        break
    if not tok.eof():
        raise ParseError("trailing characters in XPath", tok.pos)
    if not steps:
        raise ParseError("empty XPath", 0)
    for step in steps[:-1]:
        if step.test.startswith("@") or step.test == "text()":
            raise ParseError(
                "attribute/text() steps are only allowed last", 0)
    return XPath(tuple(steps), absolute, source)


# -- evaluation -----------------------------------------------------------


def _candidates(node: Element, step: Step) -> list[Element]:
    if step.axis == "descendant":
        pool = [e for e in node.iter() if e is not node]
    else:
        pool = node.element_children
    if step.test == "*":
        return pool
    return [e for e in pool if e.tag == step.test]


def _relative_values(node: Element, path: tuple[str, ...]) -> list[str]:
    """Text values of elements reached by a chain of child steps."""
    frontier = [node]
    for name in path:
        next_frontier: list[Element] = []
        for element in frontier:
            next_frontier.extend(element.find_all(name))
        frontier = next_frontier
    return [e.text for e in frontier]


def _passes(node: Element, predicate: Predicate) -> bool:
    if predicate.kind == "attr-exists":
        return predicate.attribute in node.attributes
    if predicate.kind == "attr-equals":
        return node.attributes.get(predicate.attribute) == predicate.value
    if predicate.kind == "exists":
        frontier = [node]
        for name in predicate.path:
            frontier = [child for e in frontier
                        for child in e.find_all(name)]
        return bool(frontier)
    if predicate.kind == "equals":
        return predicate.value in _relative_values(node, predicate.path)
    raise QueryError(f"unknown predicate kind {predicate.kind!r}")


def _apply_step(nodes: list[Element], step: Step) -> list[Element]:
    result: list[Element] = []
    seen: set[int] = set()
    for node in nodes:
        matches = _candidates(node, step)
        for predicate in step.predicates:
            if predicate.kind == "index":
                matches = ([matches[predicate.index - 1]]
                           if predicate.index <= len(matches) else [])
            else:
                matches = [m for m in matches if _passes(m, predicate)]
        for match in matches:
            if id(match) not in seen:
                seen.add(id(match))
                result.append(match)
    return result


def evaluate(path: XPath | str,
             context: Document | Element) -> list[Element | str]:
    """Evaluate *path* against a document or element context.

    For absolute paths against a Document, the first step must match the
    root element (as in XPath, where '/' selects the document node).
    """
    if isinstance(path, str):
        path = compile_xpath(path)
    if isinstance(context, Document):
        root = context.root
    else:
        root = context
    steps = list(path.steps)
    first = steps[0]
    current: list[Element]
    if path.absolute and first.axis == "child":
        # '/tag' matches the root element itself.
        matches = [root] if first.test in (root.tag, "*") else []
        for predicate in first.predicates:
            if predicate.kind == "index":
                matches = matches if predicate.index == 1 else []
            else:
                matches = [m for m in matches if _passes(m, predicate)]
        current = matches
        steps = steps[1:]
    else:
        current = [root]
        if not path.absolute:
            # relative: first step starts from the context element
            pass
    for index, step in enumerate(steps):
        last = index == len(steps) - 1
        if last and (step.test.startswith("@") or step.test == "text()"):
            values: list[Element | str] = []
            if step.test == "text()":
                for node in current:
                    text = node.text
                    if text:
                        values.append(text)
                return values
            if step.test == "@*":
                for node in current:
                    values.extend(v for _, v in sorted(node.attributes.items()))
                return values
            attr = step.test[1:]
            for node in current:
                if attr in node.attributes:
                    values.append(node.attributes[attr])
            return values
        current = _apply_step(current, step)
    return list(current)


def select_elements(path: XPath | str,
                    context: Document | Element) -> list[Element]:
    """Evaluate, requiring an element result set."""
    results = evaluate(path, context)
    if any(not isinstance(r, Element) for r in results):
        raise QueryError(
            f"XPath {path} selects values, not elements")
    return results  # type: ignore[return-value]
