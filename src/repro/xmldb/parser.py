"""A small XML parser.

Supported subset (documented per DESIGN.md §6): elements, attributes with
single- or double-quoted values, text content, self-closing tags,
comments, XML declarations and the five predefined entities.  Not
supported: namespaces-as-semantics (colons are allowed in names but not
interpreted), CDATA, processing instructions, DTD internal subsets.

The parser is a hand-written recursive-descent scanner — no external
dependencies and precise error offsets for :class:`ParseError`.
"""

from __future__ import annotations

from repro.core.errors import ParseError
from repro.xmldb.model import Document, Element

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if not self.eof() else ""

    def advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise ParseError(f"expected {literal!r}", self.pos)
        self.pos += len(literal)

    def starts_with(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def skip_whitespace(self) -> None:
        while not self.eof() and self.peek().isspace():
            self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        while not self.eof():
            ch = self.peek()
            if ch.isalnum() or ch in "_-.:":
                self.pos += 1
            else:
                break
        if self.pos == start:
            raise ParseError("expected a name", start)
        return self.text[start:self.pos]

    def read_until(self, stop: str) -> str:
        end = self.text.find(stop, self.pos)
        if end < 0:
            raise ParseError(f"unterminated, expected {stop!r}", self.pos)
        chunk = self.text[self.pos:end]
        self.pos = end + len(stop)
        return chunk


def _decode_entities(text: str, offset: int) -> str:
    if "&" not in text:
        return text
    out: list[str] = []
    index = 0
    while index < len(text):
        ch = text[index]
        if ch != "&":
            out.append(ch)
            index += 1
            continue
        end = text.find(";", index)
        if end < 0:
            raise ParseError("unterminated entity reference", offset + index)
        name = text[index + 1:end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise ParseError(f"unknown entity &{name};", offset + index)
        index = end + 1
    return "".join(out)


def _parse_attributes(scanner: _Scanner) -> dict[str, str]:
    attributes: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/", "?", ""):
            return attributes
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise ParseError("attribute value must be quoted", scanner.pos)
        scanner.advance()
        start = scanner.pos
        value = scanner.read_until(quote)
        if name in attributes:
            raise ParseError(f"duplicate attribute {name!r}", start)
        attributes[name] = _decode_entities(value, start)


def _parse_element(scanner: _Scanner) -> Element:
    scanner.expect("<")
    tag = scanner.read_name()
    attributes = _parse_attributes(scanner)
    scanner.skip_whitespace()
    node = Element(tag, attributes)
    if scanner.starts_with("/>"):
        scanner.advance(2)
        return node
    scanner.expect(">")
    _parse_content(scanner, node)
    scanner.expect("</")
    closing = scanner.read_name()
    if closing != tag:
        raise ParseError(
            f"mismatched closing tag </{closing}> for <{tag}>", scanner.pos)
    scanner.skip_whitespace()
    scanner.expect(">")
    return node


def _parse_content(scanner: _Scanner, parent: Element) -> None:
    while True:
        if scanner.eof():
            raise ParseError(f"unexpected end inside <{parent.tag}>",
                             scanner.pos)
        if scanner.starts_with("</"):
            return
        if scanner.starts_with("<!--"):
            scanner.advance(4)
            scanner.read_until("-->")
            continue
        if scanner.peek() == "<":
            parent.append(_parse_element(scanner))
            continue
        start = scanner.pos
        end = scanner.text.find("<", start)
        if end < 0:
            raise ParseError(f"unexpected end inside <{parent.tag}>", start)
        raw = scanner.text[start:end]
        scanner.pos = end
        text = _decode_entities(raw, start)
        if text.strip():
            # Whitespace-only runs are formatting, not content.
            parent.append(text.strip())


def parse(text: str, name: str = "") -> Document:
    """Parse *text* into a :class:`Document`.

    Raises :class:`~repro.core.errors.ParseError` with a character offset
    on malformed input.
    """
    scanner = _Scanner(text)
    scanner.skip_whitespace()
    if scanner.starts_with("<?"):
        scanner.advance(2)
        scanner.read_until("?>")
        scanner.skip_whitespace()
    while scanner.starts_with("<!--"):
        scanner.advance(4)
        scanner.read_until("-->")
        scanner.skip_whitespace()
    if not scanner.starts_with("<"):
        raise ParseError("document must start with an element", scanner.pos)
    root = _parse_element(scanner)
    scanner.skip_whitespace()
    while scanner.starts_with("<!--"):
        scanner.advance(4)
        scanner.read_until("-->")
        scanner.skip_whitespace()
    if not scanner.eof():
        raise ParseError("trailing content after document element",
                         scanner.pos)
    return Document(root, name)


def parse_element(text: str) -> Element:
    """Parse a single element (fragment) without document bookkeeping."""
    return parse(text).root
