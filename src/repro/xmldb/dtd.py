"""DTD-lite: structural validation for XML documents.

"Maintaining the integrity of the data is critical" (§2.1) — for XML the
first integrity line is structural validity.  A :class:`Schema` declares,
per element type, which children may occur (with multiplicities), which
attributes are required/optional, and whether text content is allowed.
This is intentionally a small fragment of DTD content models: named
children with ?, *, + multiplicities, unordered.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import ConfigurationError
from repro.xmldb.model import Document, Element


class Multiplicity(enum.Enum):
    ONE = "1"          # exactly one
    OPTIONAL = "?"     # zero or one
    MANY = "*"         # zero or more
    AT_LEAST_ONE = "+"

    def allows(self, count: int) -> bool:
        if self is Multiplicity.ONE:
            return count == 1
        if self is Multiplicity.OPTIONAL:
            return count <= 1
        if self is Multiplicity.AT_LEAST_ONE:
            return count >= 1
        return True


@dataclass(frozen=True)
class ChildSpec:
    tag: str
    multiplicity: Multiplicity = Multiplicity.ONE

    @classmethod
    def parse(cls, spec: str) -> "ChildSpec":
        """Parse 'name', 'name?', 'name*', 'name+'."""
        if spec and spec[-1] in "?*+":
            return cls(spec[:-1], Multiplicity(spec[-1]))
        return cls(spec, Multiplicity.ONE)


@dataclass
class ElementDecl:
    """Declaration for one element type."""

    tag: str
    children: tuple[ChildSpec, ...] = ()
    required_attributes: frozenset[str] = frozenset()
    optional_attributes: frozenset[str] = frozenset()
    allow_text: bool = False
    allow_other_children: bool = False


@dataclass(frozen=True)
class Violation:
    """One validation failure, addressable by node path."""

    node_path: str
    message: str

    def __str__(self) -> str:
        return f"{self.node_path}: {self.message}"


class Schema:
    """A set of element declarations with a designated root tag."""

    def __init__(self, root_tag: str) -> None:
        self.root_tag = root_tag
        self._decls: dict[str, ElementDecl] = {}

    def declare(self, tag: str, children: Iterable[str] = (),
                required_attributes: Iterable[str] = (),
                optional_attributes: Iterable[str] = (),
                allow_text: bool = False,
                allow_other_children: bool = False) -> ElementDecl:
        """Declare an element type; *children* use the 'name?/*/+' syntax."""
        if tag in self._decls:
            raise ConfigurationError(f"element {tag!r} already declared")
        decl = ElementDecl(
            tag,
            tuple(ChildSpec.parse(c) for c in children),
            frozenset(required_attributes),
            frozenset(optional_attributes),
            allow_text,
            allow_other_children,
        )
        self._decls[tag] = decl
        return decl

    def declarations(self) -> tuple[ElementDecl, ...]:
        """Every element declaration (the static analyzer's element
        graph is built from these)."""
        return tuple(self._decls.values())

    def declaration(self, tag: str) -> ElementDecl | None:
        return self._decls.get(tag)

    def validate(self, document: Document | Element) -> list[Violation]:
        """All structural violations; empty list means valid."""
        root = document.root if isinstance(document, Document) else document
        violations: list[Violation] = []
        if root.tag != self.root_tag:
            violations.append(Violation(
                root.node_path(),
                f"root must be <{self.root_tag}>, found <{root.tag}>"))
        for node in root.iter():
            violations.extend(self._validate_node(node))
        return violations

    def is_valid(self, document: Document | Element) -> bool:
        return not self.validate(document)

    def _validate_node(self, node: Element) -> list[Violation]:
        decl = self._decls.get(node.tag)
        if decl is None:
            # Undeclared elements are fine only under a parent that allows
            # arbitrary children; checked from the parent side below.
            return []
        violations: list[Violation] = []
        path = node.node_path()
        for attr in decl.required_attributes:
            if attr not in node.attributes:
                violations.append(Violation(
                    path, f"missing required attribute {attr!r}"))
        known = decl.required_attributes | decl.optional_attributes
        for attr in node.attributes:
            if attr not in known:
                violations.append(Violation(
                    path, f"undeclared attribute {attr!r}"))
        if not decl.allow_text and node.text.strip():
            violations.append(Violation(path, "text content not allowed"))
        declared_tags = {spec.tag for spec in decl.children}
        counts: dict[str, int] = {}
        for child in node.element_children:
            counts[child.tag] = counts.get(child.tag, 0) + 1
            if (child.tag not in declared_tags
                    and not decl.allow_other_children):
                violations.append(Violation(
                    path, f"unexpected child <{child.tag}>"))
        for spec in decl.children:
            count = counts.get(spec.tag, 0)
            if not spec.multiplicity.allows(count):
                violations.append(Violation(
                    path,
                    f"child <{spec.tag}> occurs {count} times, multiplicity "
                    f"is {spec.multiplicity.value}"))
        return violations
