"""The XML database: named collections of documents with query support.

This is the "web database" substrate of §3: documents live in collections
(mirroring the collection → document → element granularity ladder), are
queryable with XPath-lite, optionally schema-validated on insert, and
support updates addressed by node path.  The secure wrapper lives in
:mod:`repro.xmlsec`; this module is deliberately security-free so that
benchmarks can measure the overhead the security layer adds.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.errors import ConfigurationError, QueryError
from repro.xmldb.dtd import Schema, Violation
from repro.xmldb.model import Document, Element
from repro.xmldb.parser import parse
from repro.xmldb.xpath import XPath, evaluate


class Collection:
    """A named set of documents, optionally schema-validated."""

    def __init__(self, name: str, schema: Schema | None = None) -> None:
        self.name = name
        self.schema = schema
        self._documents: dict[str, Document] = {}

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def insert(self, doc_id: str, document: Document | str) -> Document:
        """Insert a document (object or raw XML text) under *doc_id*."""
        if doc_id in self._documents:
            raise ConfigurationError(
                f"document {doc_id!r} already in collection {self.name!r}")
        if isinstance(document, str):
            document = parse(document, name=doc_id)
        if self.schema is not None:
            violations = self.schema.validate(document)
            if violations:
                summary = "; ".join(str(v) for v in violations[:3])
                raise ConfigurationError(
                    f"document {doc_id!r} invalid for collection "
                    f"{self.name!r}: {summary}")
        self._documents[doc_id] = document
        return document

    def get(self, doc_id: str) -> Document:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise QueryError(
                f"no document {doc_id!r} in collection {self.name!r}"
            ) from None

    def delete(self, doc_id: str) -> Document:
        document = self.get(doc_id)
        del self._documents[doc_id]
        return document

    def replace(self, doc_id: str, document: Document | str) -> Document:
        self.delete(doc_id)
        return self.insert(doc_id, document)

    def doc_ids(self) -> list[str]:
        return sorted(self._documents)

    def documents(self) -> Iterator[tuple[str, Document]]:
        for doc_id in self.doc_ids():
            yield doc_id, self._documents[doc_id]

    def query(self, xpath: XPath | str) -> list[tuple[str, Element | str]]:
        """Evaluate *xpath* over every document; results tagged by doc id."""
        results: list[tuple[str, Element | str]] = []
        for doc_id, document in self.documents():
            for item in evaluate(xpath, document):
                results.append((doc_id, item))
        return results

    def validate_all(self) -> list[tuple[str, Violation]]:
        """Re-validate every document against the schema (if any)."""
        if self.schema is None:
            return []
        failures: list[tuple[str, Violation]] = []
        for doc_id, document in self.documents():
            for violation in self.schema.validate(document):
                failures.append((doc_id, violation))
        return failures


class XmlDatabase:
    """Named collections plus a metadata catalog.

    "Metadata describes all of the information pertaining to a data source
    ... including access control issues, and policies enforced" (§2.1) —
    the catalog here stores free-form metadata per collection so the
    security layers can attach their policy descriptors to it.
    """

    def __init__(self, name: str = "xmldb") -> None:
        self.name = name
        self._collections: dict[str, Collection] = {}
        self._metadata: dict[str, dict[str, object]] = {}

    def create_collection(self, name: str,
                          schema: Schema | None = None) -> Collection:
        if name in self._collections:
            raise ConfigurationError(f"collection {name!r} already exists")
        collection = Collection(name, schema)
        self._collections[name] = collection
        self._metadata[name] = {}
        return collection

    def collection(self, name: str) -> Collection:
        try:
            return self._collections[name]
        except KeyError:
            raise QueryError(f"no collection {name!r}") from None

    def drop_collection(self, name: str) -> None:
        self.collection(name)
        del self._collections[name]
        del self._metadata[name]

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def set_metadata(self, collection: str, key: str, value: object) -> None:
        self.collection(collection)
        self._metadata[collection][key] = value

    def get_metadata(self, collection: str, key: str,
                     default: object = None) -> object:
        self.collection(collection)
        return self._metadata[collection].get(key, default)

    def query(self, collection: str,
              xpath: XPath | str) -> list[tuple[str, Element | str]]:
        return self.collection(collection).query(xpath)

    def total_documents(self) -> int:
        return sum(len(c) for c in self._collections.values())
