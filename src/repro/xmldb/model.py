"""XML document model.

A small DOM: :class:`Element` nodes with attributes, text and element
children, rooted in a :class:`Document`.  Every node knows its parent and
its position-aware *node path* ("/hospital/record[2]/diagnosis"), which is
how the security layers address portions of documents (§3.2's "specific
portions within a document").
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.errors import ConfigurationError


class Element:
    """An XML element: tag, attributes, ordered children (Element | str)."""

    def __init__(self, tag: str,
                 attributes: dict[str, str] | None = None,
                 children: Iterable["Element | str"] = ()) -> None:
        if not tag or any(c.isspace() for c in tag):
            raise ConfigurationError(f"invalid element tag {tag!r}")
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.parent: Element | None = None
        self._children: list[Element | str] = []
        # Mutation counter, meaningful at the tree root: every tracked
        # mutation anywhere in the tree bumps the root's counter, which
        # is what caches and indexes stamp their entries with.
        self._subtree_version = 0
        for child in children:
            self.append(child)

    # -- mutation tracking ----------------------------------------------

    def tree_root(self) -> "Element":
        node: Element = self
        while node.parent is not None:
            node = node.parent
        return node

    def tree_version(self) -> int:
        """The mutation counter of this element's tree.

        Incremented by every tracked mutation (:meth:`append`,
        :meth:`remove`, :meth:`set_text`, :meth:`set_attribute`,
        :meth:`remove_attribute`) anywhere in the tree.  Callers
        mutating ``attributes`` directly must call :meth:`touch`.
        """
        return self.tree_root()._subtree_version

    def touch(self) -> None:
        """Record a mutation: bump the tree root's version counter."""
        self.tree_root()._subtree_version += 1

    # -- structure ------------------------------------------------------

    @property
    def children(self) -> tuple["Element | str", ...]:
        return tuple(self._children)

    @property
    def element_children(self) -> list["Element"]:
        return [c for c in self._children if isinstance(c, Element)]

    @property
    def text(self) -> str:
        """Concatenated direct text children."""
        return "".join(c for c in self._children if isinstance(c, str))

    def append(self, child: "Element | str") -> "Element | str":
        if isinstance(child, Element):
            if child.parent is not None:
                raise ConfigurationError(
                    f"element <{child.tag}> already has a parent")
            child.parent = self
        elif not isinstance(child, str):
            raise ConfigurationError(
                f"child must be Element or str, got {type(child).__name__}")
        self._children.append(child)
        self.touch()
        return child

    def remove(self, child: "Element | str") -> None:
        for index, existing in enumerate(self._children):
            if existing is child:
                del self._children[index]
                if isinstance(child, Element):
                    child.parent = None
                    # The detached subtree is now its own tree; bump it
                    # too so stamps taken while it was attached go stale.
                    child._subtree_version += 1
                self.touch()
                return
        raise ConfigurationError("child not found")

    def set_text(self, text: str) -> None:
        """Replace all text children with a single text node."""
        self._children = [c for c in self._children
                          if isinstance(c, Element)]
        if text:
            self._children.insert(0, text)
        self.touch()

    def set_attribute(self, name: str, value: str) -> None:
        """Tracked attribute write (bumps the tree version)."""
        self.attributes[name] = value
        self.touch()

    def remove_attribute(self, name: str) -> None:
        """Tracked attribute delete (bumps the tree version)."""
        if name in self.attributes:
            del self.attributes[name]
            self.touch()

    # -- addressing ------------------------------------------------------

    @property
    def index_among_siblings(self) -> int:
        """1-based position among same-tag siblings (XPath convention)."""
        if self.parent is None:
            return 1
        position = 0
        for sibling in self.parent.element_children:
            if sibling.tag == self.tag:
                position += 1
            if sibling is self:
                return position
        raise ConfigurationError("element not among its parent's children")

    def node_path(self) -> str:
        """Absolute position-qualified path, e.g. '/a/b[2]/c'."""
        parts: list[str] = []
        node: Element | None = self
        while node is not None:
            parts.append(f"{node.tag}[{node.index_among_siblings}]")
            node = node.parent
        return "/" + "/".join(reversed(parts))

    # -- traversal --------------------------------------------------------

    def iter(self) -> Iterator["Element"]:
        """Depth-first pre-order over this element and its descendants."""
        yield self
        for child in self.element_children:
            yield from child.iter()

    def find(self, tag: str) -> "Element | None":
        """First direct child with the given tag."""
        for child in self.element_children:
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> list["Element"]:
        """All direct children with the given tag."""
        return [c for c in self.element_children if c.tag == tag]

    def descendants_with_tag(self, tag: str) -> list["Element"]:
        return [e for e in self.iter() if e.tag == tag and e is not self]

    def ancestors(self) -> Iterator["Element"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # -- copying -----------------------------------------------------------

    def deep_copy(self) -> "Element":
        """Structure-equal copy, detached from any parent."""
        clone = Element(self.tag, dict(self.attributes))
        for child in self._children:
            if isinstance(child, Element):
                clone.append(child.deep_copy())
            else:
                clone.append(child)
        return clone

    def structurally_equal(self, other: "Element") -> bool:
        if (self.tag != other.tag
                or self.attributes != other.attributes
                or len(self._children) != len(other._children)):
            return False
        for mine, theirs in zip(self._children, other._children):
            if isinstance(mine, Element) != isinstance(theirs, Element):
                return False
            if isinstance(mine, Element):
                if not mine.structurally_equal(theirs):  # type: ignore[arg-type]
                    return False
            elif mine != theirs:
                return False
        return True

    def size(self) -> int:
        """Number of elements in the subtree, including self."""
        return sum(1 for _ in self.iter())

    def __repr__(self) -> str:
        return f"<Element {self.tag} attrs={len(self.attributes)} children={len(self._children)}>"


class Document:
    """A parsed XML document: a name plus a root element."""

    def __init__(self, root: Element, name: str = "") -> None:
        if root.parent is not None:
            raise ConfigurationError("document root must be parentless")
        self.root = root
        self.name = name

    @property
    def version(self) -> int:
        """Mutation counter of the document tree (see Element.tree_version)."""
        return self.root.tree_version()

    def iter(self) -> Iterator[Element]:
        return self.root.iter()

    def deep_copy(self, name: str | None = None) -> "Document":
        return Document(self.root.deep_copy(),
                        self.name if name is None else name)

    def size(self) -> int:
        return self.root.size()

    def __repr__(self) -> str:
        return f"Document({self.name!r}, root=<{self.root.tag}>, {self.size()} elements)"


def element(tag: str, text: str | None = None,
            attrs: dict[str, str] | None = None,
            *children: Element) -> Element:
    """Terse element builder for tests and data generators.

    >>> record = element("record", None, {"id": "r1"},
    ...                  element("name", "Alice"),
    ...                  element("diagnosis", "flu"))
    """
    node = Element(tag, attrs)
    if text is not None:
        node.append(text)
    for child in children:
        node.append(child)
    return node
