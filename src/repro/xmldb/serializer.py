"""Canonical XML serialization.

Canonicalization matters to security: signatures and Merkle hashes must be
computed over a *unique* byte representation.  Our canonical form sorts
attributes lexicographically, escapes the five predefined entities, and
emits no insignificant whitespace — the same document always serializes to
the same string, and parse(serialize(d)) round-trips.

Emission is writer-style: tokens are appended to one flat list and joined
once at the end.  The previous implementation concatenated each element's
fully-serialized body into its parent's f-string, so a document of depth d
re-copied every byte d times (O(n·d), quadratic on deep chain documents)
and recursed once per level (RecursionError past ~1000 levels).  The
explicit work stack keeps cost O(n) in total output bytes and handles
arbitrarily deep documents; ``tests/xmldb/test_serializer_scaling.py``
pins both properties.

The serializer is structural: it reads only ``tag``, ``attributes`` and
``children`` (text children are plain ``str``), so it accepts both the
mutable :class:`~repro.xmldb.model.Element` and the immutable
:class:`~repro.snap.frozen.FrozenElement` — the snapshot layer's interned
serialization relies on the two producing identical bytes.
"""

from __future__ import annotations

from repro.xmldb.model import Document, Element

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _TEXT_ESCAPES + [('"', "&quot;")]


def escape_text(text: str) -> str:
    for raw, escaped in _TEXT_ESCAPES:
        text = text.replace(raw, escaped)
    return text


def escape_attribute(text: str) -> str:
    for raw, escaped in _ATTR_ESCAPES:
        text = text.replace(raw, escaped)
    return text


def write_element(node, out: list[str]) -> None:
    """Append the canonical tokens of *node*'s subtree to *out*.

    Iterative (explicit stack) so that depth is bounded by memory, not
    the interpreter recursion limit, and each output byte is written
    exactly once — join the list once at the end for O(n) total cost.
    """
    # Stack entries: an element still to open, or a literal closing tag /
    # escaped text string ready for emission (marked by a None partner).
    stack: list[tuple[object, bool]] = [(node, False)]
    while stack:
        item, literal = stack.pop()
        if literal:
            out.append(item)  # type: ignore[arg-type]
            continue
        element = item
        attrs = "".join(
            f' {name}="{escape_attribute(value)}"'
            for name, value in sorted(element.attributes.items()))
        children = element.children
        if not children:
            out.append(f"<{element.tag}{attrs}/>")
            continue
        out.append(f"<{element.tag}{attrs}>")
        stack.append((f"</{element.tag}>", True))
        for child in reversed(children):
            if isinstance(child, str):
                stack.append((escape_text(child), True))
            else:
                stack.append((child, False))


def serialize_element(node) -> str:
    """Canonical single-line serialization of a subtree."""
    out: list[str] = []
    write_element(node, out)
    return "".join(out)


def serialize(document) -> str:
    return serialize_element(document.root)


def pretty(node: Element | Document, indent: str = "  ") -> str:
    """Human-readable, indented rendering (not canonical)."""
    if isinstance(node, Document):
        node = node.root

    def render(element: Element, depth: int) -> list[str]:
        pad = indent * depth
        attrs = "".join(
            f' {name}="{escape_attribute(value)}"'
            for name, value in sorted(element.attributes.items()))
        kids = element.children
        if not kids:
            return [f"{pad}<{element.tag}{attrs}/>"]
        if all(isinstance(c, str) for c in kids):
            text = escape_text("".join(kids))  # type: ignore[arg-type]
            return [f"{pad}<{element.tag}{attrs}>{text}</{element.tag}>"]
        lines = [f"{pad}<{element.tag}{attrs}>"]
        for child in kids:
            if isinstance(child, Element):
                lines.extend(render(child, depth + 1))
            else:
                lines.append(f"{pad}{indent}{escape_text(child)}")
        lines.append(f"{pad}</{element.tag}>")
        return lines

    return "\n".join(render(node, 0))
