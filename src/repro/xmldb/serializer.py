"""Canonical XML serialization.

Canonicalization matters to security: signatures and Merkle hashes must be
computed over a *unique* byte representation.  Our canonical form sorts
attributes lexicographically, escapes the five predefined entities, and
emits no insignificant whitespace — the same document always serializes to
the same string, and parse(serialize(d)) round-trips.
"""

from __future__ import annotations

from repro.xmldb.model import Document, Element

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _TEXT_ESCAPES + [('"', "&quot;")]


def escape_text(text: str) -> str:
    for raw, escaped in _TEXT_ESCAPES:
        text = text.replace(raw, escaped)
    return text


def escape_attribute(text: str) -> str:
    for raw, escaped in _ATTR_ESCAPES:
        text = text.replace(raw, escaped)
    return text


def serialize_element(node: Element) -> str:
    """Canonical single-line serialization of a subtree."""
    attrs = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in sorted(node.attributes.items()))
    parts: list[str] = []
    for child in node.children:
        if isinstance(child, Element):
            parts.append(serialize_element(child))
        else:
            parts.append(escape_text(child))
    body = "".join(parts)
    if not body:
        return f"<{node.tag}{attrs}/>"
    return f"<{node.tag}{attrs}>{body}</{node.tag}>"


def serialize(document: Document) -> str:
    return serialize_element(document.root)


def pretty(node: Element | Document, indent: str = "  ") -> str:
    """Human-readable, indented rendering (not canonical)."""
    if isinstance(node, Document):
        node = node.root

    def render(element: Element, depth: int) -> list[str]:
        pad = indent * depth
        attrs = "".join(
            f' {name}="{escape_attribute(value)}"'
            for name, value in sorted(element.attributes.items()))
        kids = element.children
        if not kids:
            return [f"{pad}<{element.tag}{attrs}/>"]
        if all(isinstance(c, str) for c in kids):
            text = escape_text("".join(kids))  # type: ignore[arg-type]
            return [f"{pad}<{element.tag}{attrs}>{text}</{element.tag}>"]
        lines = [f"{pad}<{element.tag}{attrs}>"]
        for child in kids:
            if isinstance(child, Element):
                lines.extend(render(child, depth + 1))
            else:
                lines.append(f"{pad}{indent}{escape_text(child)}")
        lines.append(f"{pad}</{element.tag}>")
        return lines

    return "\n".join(render(node, 0))
