"""XML substrate: document model, parser, canonical serializer, XPath-lite,
schema validation and a collection-based database.

Security-free by design; :mod:`repro.xmlsec` wraps it with the Author-X
access control model so benchmarks can compare the two.
"""

from repro.xmldb.database import Collection, XmlDatabase
from repro.xmldb.dtd import ChildSpec, ElementDecl, Multiplicity, Schema, Violation
from repro.xmldb.index import PathIndex, QueryCostModel, indexed_select
from repro.xmldb.model import Document, Element, element
from repro.xmldb.parser import parse, parse_element
from repro.xmldb.serializer import (
    escape_attribute,
    escape_text,
    pretty,
    serialize,
    serialize_element,
)
from repro.xmldb.xpath import (
    Predicate,
    Step,
    XPath,
    compile_xpath,
    evaluate,
    select_elements,
)

__all__ = [
    "ChildSpec", "Collection", "Document", "Element", "ElementDecl",
    "Multiplicity", "PathIndex", "Predicate", "QueryCostModel",
    "Schema", "Step", "Violation", "XPath", "XmlDatabase",
    "compile_xpath", "element", "escape_attribute", "escape_text",
    "evaluate", "indexed_select", "parse", "parse_element", "pretty",
    "select_elements", "serialize", "serialize_element",
]
