"""Path indexes for XML queries (§2.1: "appropriate index strategies and
access methods ... are needed").

A :class:`PathIndex` over a document (or a whole collection) maps

* tag name → elements with that tag, in document order;
* (tag, attribute, value) → elements carrying that attribute value;
* (tag, child tag, text) → elements with a matching child's text —

which covers the hot XPath-lite shapes ``//tag``, ``//tag[@a='v']`` and
``//tag[child='v']``.  :func:`indexed_select` answers those shapes from
the index and transparently falls back to the naive engine for anything
else, so results are always identical to :func:`repro.xmldb.xpath.evaluate`
(a property test asserts this).  Benchmark A1 measures the speedup and
its interaction with the security layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmldb.model import Document, Element
from repro.xmldb.xpath import Step, XPath, compile_xpath, select_elements


class PathIndex:
    """An inverted index over one element tree.

    The index records the tree's mutation counter at build time
    (:meth:`Element.tree_version`); after any tracked in-place edit it
    reports :attr:`stale` and :func:`indexed_select` /
    :class:`QueryCostModel` transparently :meth:`refresh` it before
    answering, so index-served results can never lag the document.
    """

    def __init__(self, root: Element) -> None:
        self._root = root
        self._by_tag: dict[str, list[Element]] = {}
        self._by_attr: dict[tuple[str, str, str], list[Element]] = {}
        self._by_child_text: dict[tuple[str, str, str],
                                  list[Element]] = {}
        self._built_version = -1
        self.rebuilds = 0
        self._build()

    @property
    def stale(self) -> bool:
        """Has the tree mutated since the index was (re)built?"""
        return self._built_version != self._root.tree_version()

    def refresh(self) -> None:
        """Rebuild the postings from the current tree state."""
        self._by_tag.clear()
        self._by_attr.clear()
        self._by_child_text.clear()
        self._build()

    def ensure_fresh(self) -> None:
        if self.stale:
            self.refresh()

    def _build(self) -> None:
        self._built_version = self._root.tree_version()
        self.rebuilds += 1
        for node in self._root.iter():
            self._by_tag.setdefault(node.tag, []).append(node)
            for name, value in node.attributes.items():
                self._by_attr.setdefault(
                    (node.tag, name, value), []).append(node)
            parent = node.parent
            if parent is not None and node.text:
                self._by_child_text.setdefault(
                    (parent.tag, node.tag, node.text), [])
                bucket = self._by_child_text[
                    (parent.tag, node.tag, node.text)]
                if not bucket or bucket[-1] is not parent:
                    bucket.append(parent)

    def by_tag(self, tag: str) -> list[Element]:
        return list(self._by_tag.get(tag, ()))

    def by_attribute(self, tag: str, attribute: str,
                     value: str) -> list[Element]:
        return list(self._by_attr.get((tag, attribute, value), ()))

    def by_child_text(self, tag: str, child_tag: str,
                      text: str) -> list[Element]:
        return list(self._by_child_text.get((tag, child_tag, text), ()))

    def entry_count(self) -> int:
        return (sum(len(v) for v in self._by_tag.values())
                + sum(len(v) for v in self._by_attr.values())
                + sum(len(v) for v in self._by_child_text.values()))


def _indexable_step(path: XPath) -> Step | None:
    """The single descendant step of an index-answerable expression."""
    if not path.absolute or len(path.steps) != 1:
        return None
    step = path.steps[0]
    if step.axis != "descendant" or step.test in ("*", "text()") \
            or step.test.startswith("@"):
        return None
    if len(step.predicates) > 1:
        return None
    if step.predicates:
        predicate = step.predicates[0]
        if predicate.kind == "attr-equals":
            return step
        if predicate.kind == "equals" and len(predicate.path) == 1:
            return step
        return None
    return step


def indexed_select(index: PathIndex, path: XPath | str,
                   context: Document | Element) -> list[Element]:
    """Element selection answered from the index when possible.

    Falls back to the naive engine for non-indexable shapes; results are
    always exactly those of ``select_elements``.  The root element is
    excluded for descendant steps (XPath semantics: '//x' from the
    document selects descendants-or-self of the root *element*'s parent,
    which our engine models as excluding the root itself only when it is
    the context — mirrored here by delegating root handling to the
    fallback when the root tag matches).
    """
    if isinstance(path, str):
        path = compile_xpath(path)
    step = _indexable_step(path)
    if step is None:
        return select_elements(path, context)
    index.ensure_fresh()
    root = context.root if isinstance(context, Document) else context
    if root.tag == step.test:
        # '//tag' never matches the context root in our engine; the
        # index includes it, so defer to the engine for this rare case.
        return select_elements(path, context)
    if not step.predicates:
        return index.by_tag(step.test)
    predicate = step.predicates[0]
    if predicate.kind == "attr-equals":
        return index.by_attribute(step.test, predicate.attribute,
                                  predicate.value)
    return index.by_child_text(step.test, predicate.path[0],
                               predicate.value)


@dataclass
class QueryCostModel:
    """The §2.1 'special cost model': decides scan vs index per query.

    Cost estimates in visited-element units: a scan touches every
    element; an index probe touches the posting list.  ``choose``
    returns ("index" | "scan", estimated_cost) and
    :meth:`run` executes accordingly, recording its decisions for
    benchmark A1.
    """

    index: PathIndex
    document_size: int
    decisions: dict[str, int] = field(
        default_factory=lambda: {"index": 0, "scan": 0})

    def estimate(self, path: XPath | str) -> tuple[str, int]:
        if isinstance(path, str):
            path = compile_xpath(path)
        step = _indexable_step(path)
        if step is None:
            return "scan", self.document_size
        self.index.ensure_fresh()
        postings = len(self.index.by_tag(step.test))
        return "index", max(postings, 1)

    def run(self, path: XPath | str,
            context: Document | Element) -> list[Element]:
        strategy, _cost = self.estimate(path)
        self.decisions[strategy] += 1
        if strategy == "index":
            return indexed_select(self.index, path, context)
        return select_elements(path, context)
