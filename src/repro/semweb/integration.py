"""Secure information integration across sources (§5).

"Researchers have done some work on the secure interoperability of
databases ... the challenge is how does one use these ontologies for
secure information integration."

A :class:`SecureIntegrator` federates several :class:`SourceBinding` s —
each a secure RDF store with its own labels plus a *term mapping* into a
shared ontology.  Queries are posed in shared-ontology terms; the
integrator translates per source, collects triples the requester's
clearance may read *under each source's own policy*, and relabels
results with the join of (triple label, source trust label) — crossing a
less-trusted source can only lower, never raise, what the requester
gets back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.mls import PUBLIC, Label, can_read
from repro.rdfdb.model import IRI, Triple
from repro.rdfdb.security import SecureRdfStore
from repro.semweb.ontology import Ontology


@dataclass
class SourceBinding:
    """One federated source: a secure store + its mapping + trust label.

    ``term_mapping`` maps shared-ontology term names to the source's
    local predicate IRIs.  ``trust`` is the integrator's label for the
    source itself: data from a SECRET-rated source stays SECRET even if
    the source labelled it public (the source may be honest but its
    channel is not).
    """

    name: str
    store: SecureRdfStore
    term_mapping: dict[str, IRI]
    trust: Label = PUBLIC


@dataclass(frozen=True)
class IntegratedTriple:
    """A result with provenance and its effective (joined) label."""

    source: str
    triple: Triple
    effective_label: Label


class SecureIntegrator:
    """Federated querying in shared-ontology terms."""

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology
        self._sources: dict[str, SourceBinding] = {}

    def add_source(self, binding: SourceBinding) -> None:
        if binding.name in self._sources:
            raise ConfigurationError(
                f"source {binding.name!r} already bound")
        for term_name in binding.term_mapping:
            if term_name not in self.ontology:
                raise ConfigurationError(
                    f"source {binding.name!r} maps unknown term "
                    f"{term_name!r}")
        self._sources[binding.name] = binding

    def sources(self) -> list[str]:
        return sorted(self._sources)

    def query_term(self, clearance: Label, term_name: str,
                   include_descendants: bool = True
                   ) -> list[IntegratedTriple]:
        """All readable triples whose predicate maps to *term_name* (or a
        descendant term, by default) across every source."""
        if term_name not in self.ontology:
            raise ConfigurationError(f"unknown term {term_name!r}")
        wanted_terms = {term_name}
        if include_descendants:
            wanted_terms |= {t.name for t in
                             self.ontology.descendants(term_name)}
        results: list[IntegratedTriple] = []
        for source_name in self.sources():
            binding = self._sources[source_name]
            for mapped_term, predicate in sorted(
                    binding.term_mapping.items()):
                if mapped_term not in wanted_terms:
                    continue
                for item in binding.store.store.match(None, predicate,
                                                      None):
                    source_label = binding.store.label_of(item)
                    effective = source_label.join(binding.trust)
                    if can_read(clearance, effective):
                        results.append(IntegratedTriple(
                            source_name, item, effective))
        return results

    def leakage_without_trust_join(self, clearance: Label,
                                   term_name: str) -> list[IntegratedTriple]:
        """Triples a naive integrator (ignoring source trust labels)
        would release to *clearance* but the secure one withholds —
        the integration-layer leak E13's ontology attacks model."""
        secure = {(r.source, r.triple)
                  for r in self.query_term(clearance, term_name)}
        leaked: list[IntegratedTriple] = []
        for source_name in self.sources():
            binding = self._sources[source_name]
            wanted_terms = {term_name} | {
                t.name for t in self.ontology.descendants(term_name)}
            for mapped_term, predicate in sorted(
                    binding.term_mapping.items()):
                if mapped_term not in wanted_terms:
                    continue
                for item in binding.store.store.match(None, predicate,
                                                      None):
                    if not can_read(clearance,
                                    binding.store.label_of(item)):
                        continue  # even the naive one respects this
                    if (source_name, item) not in secure:
                        leaked.append(IntegratedTriple(
                            source_name, item,
                            binding.store.label_of(item)))
        return leaked
