"""The layered secure semantic web of §5.

"Security cuts across all layers and this is a challenge ... one cannot
just have secure TCP/IP built on untrusted communication layers."

A :class:`LayerStack` models the paper's stack — network → XML → RDF →
ontology → logic/proof/trust — where each layer can have its security
enabled or disabled.  :meth:`LayerStack.end_to_end_secure` holds only
when *every* layer is secured (the paper's end-to-end argument), and
:meth:`attack_surface` runs a canned attack corpus: each attack targets
one layer and succeeds iff that layer is unsecured, letting benchmark
E13 produce the breach-rate-vs-secured-layers table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable


class LayerName(enum.Enum):
    NETWORK = "network"          # TCP/IP, sockets, HTTP
    XML = "xml"                  # document syntax
    RDF = "rdf"                  # semantics
    ONTOLOGY = "ontology"        # shared vocabularies, integration
    LOGIC = "logic"              # logic, proof and trust

    @property
    def order(self) -> int:
        return _LAYER_ORDER[self]


_LAYER_ORDER = {
    LayerName.NETWORK: 0,
    LayerName.XML: 1,
    LayerName.RDF: 2,
    LayerName.ONTOLOGY: 3,
    LayerName.LOGIC: 4,
}


@dataclass(frozen=True)
class Attack:
    """One attack in the corpus: targets a single layer."""

    name: str
    target: LayerName
    description: str = ""


#: The canned corpus used by tests and benchmark E13: three attacks per
#: layer, shapes taken from the paper's examples.
ATTACK_CORPUS: tuple[Attack, ...] = (
    Attack("packet-sniffing", LayerName.NETWORK,
           "read cleartext HTTP traffic"),
    Attack("tcp-hijack", LayerName.NETWORK, "take over a session"),
    Attack("dns-spoof", LayerName.NETWORK, "redirect to a rogue host"),
    Attack("xml-injection", LayerName.XML,
           "inject elements into a document"),
    Attack("doc-tampering", LayerName.XML,
           "modify document portions in transit"),
    Attack("unauthorized-read", LayerName.XML,
           "browse portions without authorization"),
    Attack("semantic-inference", LayerName.RDF,
           "derive classified facts from public triples"),
    Attack("reification-leak", LayerName.RDF,
           "read statements about protected statements"),
    Attack("context-abuse", LayerName.RDF,
           "read wartime-classified data as if declassified"),
    Attack("ontology-poisoning", LayerName.ONTOLOGY,
           "alter shared vocabulary to change meanings"),
    Attack("mapping-leak", LayerName.ONTOLOGY,
           "exploit integration mappings to reach hidden sources"),
    Attack("term-escalation", LayerName.ONTOLOGY,
           "use a low-level term mapped to a high-level one"),
    Attack("forged-proof", LayerName.LOGIC,
           "present an unverifiable proof as trusted"),
    Attack("trust-spoofing", LayerName.LOGIC,
           "claim an identity without verifiable credentials"),
    Attack("inference-chaining", LayerName.LOGIC,
           "combine proofs to deduce unauthorized conclusions"),
)


@dataclass
class LayerStack:
    """Which layers are secured, and what that implies."""

    secured: set[LayerName] = field(default_factory=set)

    @classmethod
    def all_secured(cls) -> "LayerStack":
        return cls(set(LayerName))

    @classmethod
    def none_secured(cls) -> "LayerStack":
        return cls(set())

    def secure(self, layer: LayerName) -> None:
        self.secured.add(layer)

    def unsecure(self, layer: LayerName) -> None:
        self.secured.discard(layer)

    def is_secured(self, layer: LayerName) -> bool:
        return layer in self.secured

    def end_to_end_secure(self) -> bool:
        """§5: end-to-end security requires *every* layer secured."""
        return self.secured == set(LayerName)

    def weakest_unsecured(self) -> LayerName | None:
        """The lowest unsecured layer — where an attacker goes first."""
        missing = [l for l in LayerName if l not in self.secured]
        return min(missing, key=lambda l: l.order) if missing else None

    def attack_surface(self, corpus: Iterable[Attack] = ATTACK_CORPUS
                       ) -> list[Attack]:
        """Attacks from the corpus that succeed against this stack."""
        return [a for a in corpus if a.target not in self.secured]

    def breach_rate(self, corpus: Iterable[Attack] = ATTACK_CORPUS
                    ) -> float:
        attacks = list(corpus)
        if not attacks:
            return 0.0
        return len(self.attack_surface(attacks)) / len(attacks)

    def undermined_layers(self) -> list[LayerName]:
        """Secured layers sitting on an unsecured one — "secure TCP/IP
        built on untrusted communication layers" generalized: a layer's
        guarantees are undermined when any layer below it is open."""
        undermined: list[LayerName] = []
        for layer in LayerName:
            if layer not in self.secured:
                continue
            if any(below not in self.secured
                   for below in LayerName if below.order < layer.order):
                undermined.append(layer)
        return undermined
