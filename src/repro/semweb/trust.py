"""Logic, proof and trust — the top of the §5 stack.

"Note that logic, proof and trust are at the highest layers of the
semantic web."  This module makes those layers concrete:

* **logic** — Horn rules over ground atoms
  (:class:`Rule`, :class:`Atom`), with a backward-chaining prover
  (:meth:`ProofEngine.prove`) that produces explicit *proof objects*;
* **proof** — a :class:`Proof` is a tree whose internal nodes are rule
  applications and whose leaves are asserted facts; proofs are
  *checkable* independently of the prover (:func:`check_proof`), so a
  consumer never has to trust the producer's reasoning;
* **trust** — leaves must be **signed facts**: a :class:`TrustPolicy`
  names which signers are authoritative for which predicates, and proof
  checking verifies every leaf signature against it.  A forged proof
  step, an unsigned leaf, or a leaf signed by a non-authoritative party
  all fail the check — the "forged-proof" and "trust-spoofing" attacks
  of the E13 corpus, defeated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.errors import AuthenticationError, ConfigurationError
from repro.crypto.rsa import PrivateKey, PublicKey, sign, verify


@dataclass(frozen=True)
class Atom:
    """A ground atom: predicate(arg1, ..., argN)."""

    predicate: str
    arguments: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(self.arguments)})"


def atom(predicate: str, *arguments: str) -> Atom:
    return Atom(predicate, tuple(arguments))


@dataclass(frozen=True)
class Rule:
    """A Horn rule: head :- body.  Variables are '?x'-style strings.

    Example: canRead(?u, ?d) :- doctor(?u), record(?d).
    """

    head: Atom
    body: tuple[Atom, ...]
    name: str = ""

    def __str__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        if not self.body:
            return f"{label}{self.head}."
        return (f"{label}{self.head} :- "
                f"{', '.join(str(a) for a in self.body)}.")


def _is_variable(term: str) -> bool:
    return term.startswith("?")


def _unify(pattern: Atom, fact: Atom,
           bindings: Mapping[str, str]) -> dict[str, str] | None:
    if pattern.predicate != fact.predicate or \
            len(pattern.arguments) != len(fact.arguments):
        return None
    result = dict(bindings)
    for pattern_term, fact_term in zip(pattern.arguments,
                                       fact.arguments):
        if _is_variable(pattern_term):
            bound = result.get(pattern_term)
            if bound is None:
                result[pattern_term] = fact_term
            elif bound != fact_term:
                return None
        elif pattern_term != fact_term:
            return None
    return result


def _substitute(pattern: Atom, bindings: Mapping[str, str]) -> Atom:
    return Atom(pattern.predicate, tuple(
        bindings.get(term, term) for term in pattern.arguments))


# -- signed facts (the trust layer) -----------------------------------------


@dataclass(frozen=True)
class SignedFact:
    """An atom asserted and signed by a named authority."""

    fact: Atom
    signer: str
    signature: int

    def verify(self, key: PublicKey) -> bool:
        return verify(key, f"fact:{self.fact}", self.signature)


def sign_fact(fact: Atom, signer: str,
              private_key: PrivateKey) -> SignedFact:
    return SignedFact(fact, signer, sign(private_key, f"fact:{fact}"))


class TrustPolicy:
    """Which signers are authoritative for which predicates."""

    def __init__(self) -> None:
        self._keys: dict[str, PublicKey] = {}
        self._authority: dict[str, set[str]] = {}

    def trust(self, signer: str, key: PublicKey,
              predicates: Iterable[str]) -> None:
        existing = self._keys.get(signer)
        if existing is not None and existing != key:
            raise ConfigurationError(
                f"conflicting key registered for signer {signer!r}")
        self._keys[signer] = key
        self._authority.setdefault(signer, set()).update(predicates)

    def authoritative(self, signer: str, predicate: str) -> bool:
        return predicate in self._authority.get(signer, ())

    def key_of(self, signer: str) -> PublicKey | None:
        return self._keys.get(signer)


# -- proofs -------------------------------------------------------------------


@dataclass(frozen=True)
class Proof:
    """A proof tree: ``rule is None`` marks a leaf backed by a signed
    fact; otherwise the node derives ``conclusion`` by applying ``rule``
    to the children's conclusions."""

    conclusion: Atom
    rule: Rule | None
    children: tuple["Proof", ...]
    evidence: SignedFact | None = None

    def leaves(self) -> list["Proof"]:
        if self.rule is None:
            return [self]
        result: list[Proof] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)


class ProofEngine:
    """Backward chaining over signed facts and Horn rules."""

    def __init__(self, rules: Iterable[Rule] = (),
                 facts: Iterable[SignedFact] = ()) -> None:
        self.rules = list(rules)
        self._facts: dict[str, list[SignedFact]] = {}
        for fact in facts:
            self.add_fact(fact)

    def add_rule(self, rule: Rule) -> Rule:
        self.rules.append(rule)
        return rule

    def add_fact(self, fact: SignedFact) -> SignedFact:
        self._facts.setdefault(fact.fact.predicate, []).append(fact)
        return fact

    def prove(self, goal: Atom, _depth: int = 0) -> Proof | None:
        """A proof of *goal*, or None.  Goals must be ground."""
        if _depth > 32:
            return None
        if any(_is_variable(term) for term in goal.arguments):
            raise ConfigurationError(f"goal {goal} must be ground")
        for fact in self._facts.get(goal.predicate, ()):
            if fact.fact == goal:
                return Proof(goal, None, (), fact)
        for rule in self.rules:
            bindings = _unify(rule.head, goal, {})
            if bindings is None:
                continue
            children = self._prove_body(rule.body, bindings, _depth)
            if children is not None:
                return Proof(goal, rule, tuple(children))
        return None

    def _prove_body(self, body: tuple[Atom, ...],
                    bindings: dict[str, str],
                    depth: int) -> list[Proof] | None:
        if not body:
            return []
        first, rest = body[0], body[1:]
        # Enumerate candidate bindings from facts and rule heads.
        candidates: list[dict[str, str]] = []
        for fact in self._facts.get(first.predicate, ()):
            unified = _unify(first, fact.fact, bindings)
            if unified is not None:
                candidates.append(unified)
        for rule in self.rules:
            if rule.head.predicate != first.predicate:
                continue
            # Try to close the subgoal via the rule with current
            # bindings; only ground instantiations are attempted.
            grounded = _substitute(first, bindings)
            if not any(_is_variable(t) for t in grounded.arguments):
                candidates.append(dict(bindings))
        seen: set[tuple] = set()
        for candidate in candidates:
            key = tuple(sorted(candidate.items()))
            if key in seen:
                continue
            seen.add(key)
            grounded = _substitute(first, candidate)
            if any(_is_variable(t) for t in grounded.arguments):
                continue
            subproof = self.prove(grounded, depth + 1)
            if subproof is None:
                continue
            remaining = self._prove_body(rest, candidate, depth)
            if remaining is not None:
                return [subproof] + remaining
        return None


def check_proof(proof: Proof, trust: TrustPolicy,
                known_rules: Iterable[Rule]) -> bool:
    """Independently verify a proof; raises AuthenticationError on any
    defect and returns ``True`` otherwise.  Checks: (a) every leaf
    carries a signature that verifies under a signer the policy deems
    authoritative for that predicate; (b) every internal node is a
    correct application of a *known* rule — some substitution maps the
    rule's head to the conclusion and its body, in order, to the
    children's conclusions."""
    rule_set = list(known_rules)
    _check_node(proof, trust, rule_set)
    return True


def _check_node(node: Proof, trust: TrustPolicy,
                rules: list[Rule]) -> None:
    if node.rule is None:
        evidence = node.evidence
        if evidence is None or evidence.fact != node.conclusion:
            raise AuthenticationError(
                f"leaf {node.conclusion} lacks matching evidence")
        key = trust.key_of(evidence.signer)
        if key is None or not evidence.verify(key):
            raise AuthenticationError(
                f"leaf {node.conclusion}: signature by "
                f"{evidence.signer!r} does not verify")
        if not trust.authoritative(evidence.signer,
                                   node.conclusion.predicate):
            raise AuthenticationError(
                f"leaf {node.conclusion}: {evidence.signer!r} is not "
                f"authoritative for {node.conclusion.predicate!r}")
        return
    if not any(_rule_matches(node, rule) for rule in rules):
        raise AuthenticationError(
            f"node {node.conclusion}: no known rule derives it from "
            f"{[str(c.conclusion) for c in node.children]}")
    for child in node.children:
        _check_node(child, trust, rules)


def _rule_matches(node: Proof, rule: Rule) -> bool:
    bindings = _unify(rule.head, node.conclusion, {})
    if bindings is None or len(rule.body) != len(node.children):
        return False
    for pattern, child in zip(rule.body, node.children):
        bindings = _unify(pattern, child.conclusion, bindings)
        if bindings is None:
            return False
    return True
