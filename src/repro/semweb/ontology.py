"""Ontologies with security levels (§3.2/§5).

Two directions, both from the paper:

* *securing ontologies* — "ontologies may have security levels attached
  to them"; an :class:`Ontology` is a term hierarchy (is-a DAG) whose
  terms carry MLS labels; reading a term requires clearance for it *and
  its ancestors* (a term's position in the hierarchy reveals its
  ancestors' existence);
* *ontologies for security* — "one could use ontologies to specify
  security policies"; :func:`policy_from_ontology` derives credential-
  based access policies from an ontology annotation ("everything under
  `medical-record` requires the physician credential").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.credentials import CredentialExpression, has_credential
from repro.core.errors import ConfigurationError
from repro.core.mls import PUBLIC, ClassificationMap, Label, can_read


@dataclass(frozen=True)
class Term:
    """One ontology term."""

    name: str

    def __str__(self) -> str:
        return self.name


class Ontology:
    """A labelled is-a hierarchy of terms."""

    def __init__(self, name: str, default: Label = PUBLIC) -> None:
        self.name = name
        self._parents: dict[Term, set[Term]] = {}
        self.labels = ClassificationMap(default)

    def add_term(self, name: str, parents: Iterable[str] = (),
                 label: Label | None = None) -> Term:
        term = Term(name)
        if term in self._parents:
            raise ConfigurationError(f"term {name!r} already defined")
        parent_terms = set()
        for parent_name in parents:
            parent = Term(parent_name)
            if parent not in self._parents:
                raise ConfigurationError(
                    f"unknown parent term {parent_name!r}")
            parent_terms.add(parent)
        self._parents[term] = parent_terms
        if label is not None:
            self.labels.classify(term, label)
        return term

    def terms(self) -> list[Term]:
        return sorted(self._parents, key=lambda t: t.name)

    def __contains__(self, name: str) -> bool:
        return Term(name) in self._parents

    def ancestors(self, name: str) -> set[Term]:
        """All (proper) ancestors via is-a."""
        term = Term(name)
        if term not in self._parents:
            raise ConfigurationError(f"unknown term {name!r}")
        closure: set[Term] = set()
        # Sorted extension keeps the traversal independent of set hash
        # order (PYTHONHASHSEED); the closure itself is order-free but
        # by-construction determinism costs nothing here.
        stack = sorted(self._parents[term], key=lambda t: t.name)
        while stack:
            current = stack.pop()
            if current in closure:
                continue
            closure.add(current)
            stack.extend(sorted(self._parents[current],
                                key=lambda t: t.name))
        return closure

    def descendants(self, name: str) -> set[Term]:
        root = Term(name)
        if root not in self._parents:
            raise ConfigurationError(f"unknown term {name!r}")
        result: set[Term] = set()
        for term in self._parents:
            if term != root and root in self.ancestors(term.name):
                result.add(term)
        return result

    def is_a(self, name: str, ancestor_name: str) -> bool:
        return (name == ancestor_name
                or Term(ancestor_name) in self.ancestors(name))

    def effective_label(self, name: str) -> Label:
        """A term's label joined with its ancestors' — you cannot know
        of 'nuclear-submarine-reactor' without knowing of 'reactor'."""
        label = self.labels.label_of(Term(name))
        for ancestor in self.ancestors(name):
            label = label.join(self.labels.label_of(ancestor))
        return label

    def readable_terms(self, clearance: Label) -> list[Term]:
        return [t for t in self.terms()
                if can_read(clearance, self.effective_label(t.name))]

    def visible_subtree(self, clearance: Label,
                        root_name: str) -> list[Term]:
        """The descendants of *root_name* the clearance may see."""
        return sorted(
            (t for t in self.descendants(root_name)
             if can_read(clearance, self.effective_label(t.name))),
            key=lambda t: t.name)


# -- ontologies *for* security ------------------------------------------------


@dataclass(frozen=True)
class OntologyPolicyRule:
    """An annotation: accessing data typed by *term* (or any descendant)
    requires the given credential type."""

    term: str
    required_credential: str


def policy_from_ontology(ontology: Ontology,
                         rules: Iterable[OntologyPolicyRule]
                         ) -> dict[str, CredentialExpression]:
    """Expand annotations down the hierarchy: each term maps to the
    conjunction of every credential required by its ancestors' rules.

    Returns term name -> credential expression; terms with no applicable
    rule are absent (publicly accessible).
    """
    rule_list = list(rules)
    expressions: dict[str, CredentialExpression] = {}
    for term in ontology.terms():
        applicable = [r for r in rule_list
                      if ontology.is_a(term.name, r.term)]
        if not applicable:
            continue
        expression = has_credential(applicable[0].required_credential)
        for extra in applicable[1:]:
            expression = expression & has_credential(
                extra.required_credential)
        expressions[term.name] = expression
    return expressions
