"""Towards a secure semantic web (§5): the layered stack, labelled
ontologies (and ontology-derived policies), secure information
integration, and the flexible security dial.
"""

from repro.semweb.flexible import (
    ALL_ATTACK_CLASSES,
    DEFAULT_MEASURES,
    FlexiblePolicy,
    Measure,
    OperatingPoint,
    SituationalPolicy,
)
from repro.semweb.integration import (
    IntegratedTriple,
    SecureIntegrator,
    SourceBinding,
)
from repro.semweb.layers import (
    ATTACK_CORPUS,
    Attack,
    LayerName,
    LayerStack,
)
from repro.semweb.ontology import (
    Ontology,
    OntologyPolicyRule,
    Term,
    policy_from_ontology,
)
from repro.semweb.trust import (
    Atom,
    Proof,
    ProofEngine,
    Rule,
    SignedFact,
    TrustPolicy,
    atom,
    check_proof,
    sign_fact,
)

__all__ = [
    "ALL_ATTACK_CLASSES", "ATTACK_CORPUS", "Atom", "Attack",
    "DEFAULT_MEASURES", "FlexiblePolicy", "IntegratedTriple",
    "LayerName", "LayerStack", "Measure", "Ontology",
    "OntologyPolicyRule", "OperatingPoint", "Proof", "ProofEngine",
    "Rule", "SecureIntegrator", "SignedFact", "SituationalPolicy",
    "SourceBinding", "Term", "TrustPolicy", "atom", "check_proof",
    "policy_from_ontology", "sign_fact",
]
