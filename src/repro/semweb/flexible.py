"""Flexible security policies (§5).

"We cannot also make the system inefficient if we must guarantee one
hundred percent security at all times.  What is needed is a flexible
security policy.  During some situations we may need one hundred percent
security while during some other situations say thirty percent security
(whatever that means) may be sufficient."

This module gives "whatever that means" a concrete, measurable meaning:
a :class:`FlexiblePolicy` maps a dial in [0, 100] to a set of enforcement
*measures*, each with a unit processing cost and a coverage over attack
classes.  Raising the dial turns on more measures: throughput drops,
residual risk drops.  :class:`SituationalPolicy` switches the dial by
named situation ("peacetime" → 30, "under-attack" → 100) — the paper's
flexibility.  Benchmark E11 sweeps the dial and prints the
security/efficiency frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class Measure:
    """One enforcement measure.

    ``threshold`` — the dial value at which the measure activates;
    ``cost`` — added processing units per request when active;
    ``mitigates`` — attack-class names this measure stops.
    """

    name: str
    threshold: int
    cost: float
    mitigates: frozenset[str]

    def __post_init__(self) -> None:
        if not 0 <= self.threshold <= 100:
            raise ConfigurationError("threshold must be in [0, 100]")
        if self.cost < 0:
            raise ConfigurationError("cost must be non-negative")


#: A default measure catalogue shaped after the paper's layer stack.
DEFAULT_MEASURES: tuple[Measure, ...] = (
    Measure("transport-encryption", 10, 0.10,
            frozenset({"eavesdropping"})),
    Measure("authentication", 25, 0.15,
            frozenset({"impersonation"})),
    Measure("access-control", 40, 0.25,
            frozenset({"unauthorized-read", "unauthorized-write"})),
    Measure("message-signing", 55, 0.30,
            frozenset({"tampering", "repudiation"})),
    Measure("audit-logging", 70, 0.20,
            frozenset({"undetected-abuse"})),
    Measure("inference-control", 85, 0.60,
            frozenset({"inference", "linkage"})),
    Measure("end-to-end-verification", 95, 0.80,
            frozenset({"third-party-forgery", "incompleteness"})),
)

#: Every attack class the default catalogue knows about.
ALL_ATTACK_CLASSES: frozenset[str] = frozenset(
    c for m in DEFAULT_MEASURES for c in m.mitigates)


@dataclass
class OperatingPoint:
    """The measured consequences of one dial setting."""

    dial: int
    active_measures: tuple[str, ...]
    cost_per_request: float
    throughput: float          # requests per unit time (normalized)
    covered_classes: frozenset[str]
    residual_risk: float       # fraction of attack classes uncovered


class FlexiblePolicy:
    """Maps the 0–100 dial to measures, cost, and residual risk."""

    def __init__(self, measures: Iterable[Measure] = DEFAULT_MEASURES,
                 base_cost: float = 1.0) -> None:
        self.measures = tuple(sorted(measures, key=lambda m: m.threshold))
        if base_cost <= 0:
            raise ConfigurationError("base cost must be positive")
        self.base_cost = base_cost
        self._attack_classes = frozenset(
            c for m in self.measures for c in m.mitigates)

    def active_measures(self, dial: int) -> list[Measure]:
        if not 0 <= dial <= 100:
            raise ConfigurationError("dial must be in [0, 100]")
        return [m for m in self.measures if m.threshold <= dial]

    def operating_point(self, dial: int) -> OperatingPoint:
        active = self.active_measures(dial)
        cost = self.base_cost + sum(m.cost for m in active)
        covered = frozenset(c for m in active for c in m.mitigates)
        total = len(self._attack_classes)
        residual = (len(self._attack_classes - covered) / total
                    if total else 0.0)
        return OperatingPoint(
            dial, tuple(m.name for m in active), cost,
            self.base_cost / cost, covered, residual)

    def frontier(self, dials: Iterable[int] = range(0, 101, 10)
                 ) -> list[OperatingPoint]:
        return [self.operating_point(d) for d in dials]

    def minimal_dial_covering(self, attack_classes: Iterable[str]) -> int:
        """The lowest dial whose measures cover the given classes."""
        needed = set(attack_classes)
        unknown = needed - self._attack_classes
        if unknown:
            raise ConfigurationError(
                f"no measure covers attack classes {sorted(unknown)}")
        for dial in range(0, 101):
            point = self.operating_point(dial)
            if needed <= point.covered_classes:
                return dial
        return 100


class SituationalPolicy:
    """Dial presets per named situation — §5's 30%/100% example."""

    def __init__(self, policy: FlexiblePolicy,
                 situations: dict[str, int] | None = None,
                 initial: str = "normal") -> None:
        self.policy = policy
        self.situations = dict(situations or {
            "relaxed": 30, "normal": 55, "elevated": 85,
            "under-attack": 100})
        if initial not in self.situations:
            raise ConfigurationError(f"unknown situation {initial!r}")
        self.current = initial

    def escalate_to(self, situation: str) -> OperatingPoint:
        if situation not in self.situations:
            raise ConfigurationError(f"unknown situation {situation!r}")
        self.current = situation
        return self.operating_point()

    def operating_point(self) -> OperatingPoint:
        return self.policy.operating_point(self.situations[self.current])

    def dial(self) -> int:
        return self.situations[self.current]
