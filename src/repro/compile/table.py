"""The compiled artifact: a flat decision table over static cells.

A :class:`CompiledPolicy` snapshots a policy base at one generation and
answers requests from a table keyed by ``(path class, action,
credential profile)``:

* the *path class* comes from the merged DFA
  (:mod:`repro.compile.pathdfa`) — one dict hop per previously seen
  path string, one DFA walk for a new one;
* the *credential profile* comes from
  :class:`~repro.compile.profiles.CredentialProfileIndex` — one dict
  hop per previously seen subject;
* the *cell* holds the fully resolved
  :class:`~repro.core.evaluator.Decision`, computed on first touch by
  the exact conflict-resolution code of the interpreter
  (:meth:`~repro.core.evaluator.PolicyEvaluator.resolve`) over the
  id-ordered applicable list the cell's masks select.  Warm lookups are
  three dict hops — O(1) in the policy count.

Content-dependent policies keep interpreter semantics: a request with a
payload is resolved per request (its applicable list filtered through
``applies_to_content``) and never cached, mirroring the serial
evaluator's rule; payload-free cells evaluate ``condition(None)`` once
at fill time, exactly as the serial cache does.

The artifact is a :class:`~repro.perf.cache.DerivedArtifact`: it
carries the source generation it was compiled from, and a digest over
the policy descriptors, resolution settings and the eagerly explored
automaton shape — two compilations of identical bases at the same
generation produce identical digests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.probes import as_probe_list
from repro.core.evaluator import (
    ConflictResolution,
    Decision,
    DefaultDecision,
    PolicyEvaluator,
)
from repro.core.objects import ResourcePath
from repro.core.policy import Action, Policy, PolicyBase
from repro.core.subjects import Subject
from repro.crypto.hashing import sha256_hex
from repro.perf.cache import DerivedArtifact

from repro.compile.pathdfa import MergedPathDfa
from repro.compile.profiles import CredentialProfileIndex, ProfileClass


@dataclass(frozen=True)
class CompileStats:
    """Size and fill counters of one compiled artifact."""

    policies: int
    path_classes: int
    dfa_states: int
    transitions: int
    profiles_seen: int
    cells_filled: int
    residual_policies: int
    source_generation: int


class CompiledPolicy(DerivedArtifact):
    """Immutable decision table compiled from one policy-base snapshot.

    "Immutable" applies to the decision semantics: cells and transitions
    are memoized on demand, but every memoized value is a pure function
    of the snapshotted policy tuple, so concurrent fills are benign and
    a cell can never change once observed.
    """

    def __init__(self, policies: Sequence[Policy], dfa: MergedPathDfa,
                 profiles: CredentialProfileIndex,
                 resolution: ConflictResolution,
                 default: DefaultDecision,
                 source_generation: int,
                 probes: Sequence[Subject]) -> None:
        super().__init__(source_generation)
        self.policies = tuple(policies)
        self.dfa = dfa
        self.profiles = profiles
        self.resolution = resolution
        self.default = default
        self.probes = tuple(probes)
        # resolve() never touches the base, only resolution/default;
        # the empty base keeps the resolver free of mutable state.
        self._resolver = PolicyEvaluator(
            PolicyBase(), resolution=resolution, default=default,
            audit=None, cache_decisions=False)
        self._by_action: dict[Action, tuple[int, ...]] = {}
        for index, policy in enumerate(self.policies):
            self._by_action.setdefault(policy.action, ())
            self._by_action[policy.action] += (index,)
        self.conditional_mask = 0
        for index, policy in enumerate(self.policies):
            if policy.condition is not None:
                self.conditional_mask |= 1 << index
        self._appliers: dict[int, dict[Action, tuple[int, ...]]] = {}
        self._cells: dict[tuple[int, Action, int], Decision] = {}
        self._path_states: dict[str, int] = {}
        self.digest = self._compute_digest()

    # -- identity -------------------------------------------------------

    def _compute_digest(self) -> str:
        lines = [f"resolution={self.resolution.value}",
                 f"default={self.default.value}",
                 f"generation={self.source_generation}"]
        for policy in self.policies:
            lines.append(
                f"policy|{policy.policy_id}|{policy.sign.value}"
                f"|{policy.action.value}|{policy.resource}"
                f"|{policy.propagation.value}|{policy.priority}"
                f"|{int(policy.condition is not None)}"
                f"|{policy.subject_expression.description}")
        for state in self.dfa.states():
            edges = ",".join(f"{seg}>{dst}" for seg, dst
                             in sorted(state.transitions.items()))
            lines.append(f"state|{state.state_id}"
                         f"|{state.applies_mask}|{edges}")
        return sha256_hex("\n".join(lines))

    # -- lookup ---------------------------------------------------------

    def classify(self, path: ResourcePath | str) -> int:
        """Path → path-class id, memoized per path string."""
        text = str(path) if isinstance(path, ResourcePath) else path
        state_id = self._path_states.get(text)
        if state_id is None:
            state_id = self.dfa.classify(text)
            self._path_states[text] = state_id
        return state_id

    def appliers(self, state_id: int) -> dict[Action, tuple[int, ...]]:
        """Per-action policy indices applying at one path class."""
        cached = self._appliers.get(state_id)
        if cached is None:
            applies = self.dfa.applies_mask(state_id)
            cached = {
                action: tuple(i for i in indices if applies >> i & 1)
                for action, indices in self._by_action.items()}
            self._appliers[state_id] = cached
        return cached

    def decide_cell(self, state_id: int, action: Action,
                    profile_mask: int,
                    payload: object = None) -> Decision:
        """Resolve one table cell; payload-free cells are memoized."""
        if payload is None:
            key = (state_id, action, profile_mask)
            decision = self._cells.get(key)
            if decision is not None:
                return decision
            applicable = [
                self.policies[i]
                for i in self.appliers(state_id).get(action, ())
                if profile_mask >> i & 1
                and self.policies[i].applies_to_content(None)]
            decision = self._resolver.resolve(applicable)
            self._cells[key] = decision
            return decision
        applicable = [
            self.policies[i]
            for i in self.appliers(state_id).get(action, ())
            if profile_mask >> i & 1
            and self.policies[i].applies_to_content(payload)]
        return self._resolver.resolve(applicable)

    def decide(self, subject: Subject, action: Action,
               path: ResourcePath | str,
               payload: object = None) -> Decision:
        """Full request → decision, byte-identical to the interpreter."""
        return self.decide_cell(self.classify(path), action,
                                self.profiles.profile(subject), payload)

    # -- reporting ------------------------------------------------------

    def profile_classes(self,
                        probes: Sequence[Subject] | None = None
                        ) -> list[ProfileClass]:
        return self.profiles.profile_classes(
            self.probes if probes is None else probes)

    def stats(self) -> CompileStats:
        return CompileStats(
            policies=len(self.policies),
            path_classes=self.dfa.eager_states,
            dfa_states=self.dfa.state_count,
            transitions=self.dfa.transition_count(),
            profiles_seen=len(self.profiles),
            cells_filled=len(self._cells),
            residual_policies=self.conditional_mask.bit_count(),
            source_generation=self.source_generation)


def compile_policy_base(base: PolicyBase | Iterable[Policy],
                        resolution: ConflictResolution =
                        ConflictResolution.DENY_OVERRIDES,
                        default: DefaultDecision = DefaultDecision.CLOSED,
                        probes: Sequence[Subject] | None = None,
                        explore: bool = True,
                        max_states: int = 50_000) -> CompiledPolicy:
    """Compile a policy base (or bare policy iterable) to a table.

    ``explore=True`` (the default) eagerly closes the path DFA over the
    witness alphabet so every static path class carries a witness for
    verification; the digest is computed over the explored shape, so it
    is deterministic for a given base state.
    """
    policies = sorted(base, key=lambda p: p.policy_id)
    dfa = MergedPathDfa(policies, max_states=max_states)
    if explore:
        dfa.explore()
    return CompiledPolicy(
        policies, dfa, CredentialProfileIndex(policies),
        resolution, default,
        source_generation=getattr(base, "generation", 0),
        probes=as_probe_list(probes))
