"""Compiled Author-X label tables: O(1) node labelling per path class.

The XML back-end of the policy compiler.  Where
:meth:`~repro.xmlsec.authorx.XmlPolicyBase.label_document` re-evaluates
every policy target per request, a :class:`CompiledLabelTable` reduces
each policy's XPath target to a :class:`~repro.compile.pathdfa.
PatternNfa` over *tag chains* and runs one product automaton per
credential-profile class.  A product state carries everything the
Author-X tier resolution (most-specific-wins, then deny-over-grant —
:meth:`~repro.xmlsec.authorx.XmlPolicyBase._label_from_marks`) needs:

* ``attached`` — the policies whose target selects the current element
  (the depth-*d* tier: if non-empty, it alone decides the label);
* ``one_level``/``cascades`` — policies attached at the *parent* with
  ONE_LEVEL / CASCADE propagation (the depth ``d-1`` tier);
* ``fallback`` — the cascade tier of the deepest ancestor strictly
  above the parent (what decides when both nearer tiers are empty).

The resolved :class:`~repro.xmlsec.authorx.NodeLabel` is computed once
per product state, so labelling a document is one memoized transition
per element — independent of the policy count.

Static enumerability mirrors :mod:`repro.compile.pathdfa`: per profile
class the automaton is eagerly explored over the DTD element graph
(:class:`~repro.analysis.xmlpolicy.DtdGraph`), assigning each state a
witness *tag chain* that the verification pass materializes as a spine
document and replays through the interpreter.  Transitions stay lazy
and exact for arbitrary (even DTD-invalid) documents.

Predicates are the XML analogue of residual conditions: a target like
``//record[diagnosis='flu']`` is compiled *predicate-free* (an
over-approximation) and the policy is reported as ``XML-DYNPRED`` —
the static table projects the policy onto its structural skeleton, and
the verification pass uses the dynamic-policy touch set to explain
(never mask) the cells where the projection and the interpreter
disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.analysis.findings import Finding, Severity, REGISTRY
from repro.analysis.probes import as_probe_list
from repro.analysis.xmlpolicy import DtdGraph
from repro.core.errors import ConfigurationError
from repro.core.subjects import Subject
from repro.crypto.hashing import sha256_hex
from repro.perf.cache import DerivedArtifact
from repro.xmldb.dtd import Schema
from repro.xmldb.model import Document, Element
from repro.xmldb.xpath import XPath
from repro.xmlsec.authorx import (
    NodeLabel,
    XmlPolicy,
    XmlPolicyBase,
    XmlPropagation,
)

from repro.compile.pathdfa import PatternNfa
# Registers COMPILE-DIVERGE, reused for unexplained label divergences.
import repro.compile.verify  # noqa: F401  (rule registration)

REGISTRY.register(
    "XML-DYNPRED", Severity.INFO, "compile",
    "predicate target compiled as its structural skeleton",
    "a content predicate selects by document data, which no static "
    "table can see; the compiled label is the predicate-free "
    "projection and enforcement must re-check the predicate")

#: Document id used to verify tables compiled for every document
#: ('*' selectors apply to it; any concrete selector does not).
VERIFY_DOC_ID = "__compile-verify__"

_UNMARKED = NodeLabel("none", None)


def xpath_nfa(target: XPath) -> PatternNfa:
    """The tag-chain NFA of one XPath target.

    A chain ``(t0, …, tn)`` — the tags from the document root to an
    element — is accepted exactly when the (predicate-free) target
    selects that element.  An absolute child-first path consumes the
    root with its first test; every other shape consumes the root with
    ``*`` (matching the evaluator, where relative and ``//`` paths
    start *below* the context root).  A descendant axis contributes a
    ``**`` before its test.  Value-selecting targets (``@attr``,
    ``text()``) yield a dead NFA: ``select_elements`` rejects them at
    enforcement time, so such a policy never labels anything.
    """
    final = target.steps[-1]
    if final.test.startswith("@") or final.test == "text()":
        return PatternNfa((), frozenset())
    steps = list(target.steps)
    segments: list[str] = []
    if target.absolute and steps[0].axis == "child":
        segments.append(steps[0].test)
        steps = steps[1:]
    else:
        segments.append("*")
    for step in steps:
        if step.axis == "descendant":
            segments.append("**")
        segments.append(step.test)
    return PatternNfa(tuple(segments), frozenset((len(segments),)))


def target_is_dynamic(target: XPath) -> bool:
    """Whether any step carries a predicate the table must project away."""
    return any(step.predicates for step in target.steps)


@dataclass
class LabelState:
    """One (tag-chain class, inherited-mark context) product state."""

    state_id: int
    tag: str
    key: tuple
    attached: tuple[int, ...]
    label: NodeLabel
    witness: tuple[str, ...] | None = None
    transitions: dict[str, int] = field(default_factory=dict)


class ProfileLabelWalk:
    """The label automaton of one credential-profile class."""

    def __init__(self, table: "CompiledLabelTable",
                 profile_mask: int) -> None:
        self.table = table
        self.mask = profile_mask
        self._states: list[LabelState] = []
        self._by_key: dict[tuple, int] = {}
        self._roots: dict[str, int] = {}
        self.eager_states = 0

    # -- construction ---------------------------------------------------

    def _resolve(self, attached: tuple[int, ...],
                 one_level: tuple[int, ...], cascades: tuple[int, ...],
                 fallback: tuple[int, ...]) -> NodeLabel:
        """Author-X resolution from the three candidate tiers.

        The element's own attachments are the deepest marks; the
        parent's ONE_LEVEL and CASCADE attachments tie one level up;
        older cascades only decide when both nearer tiers are empty.
        """
        tier = attached or tuple(sorted({*one_level, *cascades}))
        if not tier:
            tier = fallback
        if not tier:
            return _UNMARKED
        return XmlPolicyBase._label_from_marks(
            [(0, self.table.policies[i]) for i in tier])

    def _intern(self, tag: str, masks: tuple[int, ...],
                one_level: tuple[int, ...], cascades: tuple[int, ...],
                fallback: tuple[int, ...],
                witness: tuple[str, ...] | None) -> int:
        key = (tag, masks, one_level, cascades, fallback)
        state_id = self._by_key.get(key)
        if state_id is not None:
            state = self._states[state_id]
            if state.witness is None and witness is not None:
                state.witness = witness
            return state_id
        self.table._charge_state()
        nfas = self.table.nfas
        attached = tuple(i for i, mask in enumerate(masks)
                         if mask and nfas[i].accepts(mask))
        label = self._resolve(attached, one_level, cascades, fallback)
        state = LabelState(len(self._states), tag, key, attached, label,
                           witness)
        self._states.append(state)
        self._by_key[key] = state.state_id
        return state.state_id

    def root_state(self, tag: str) -> int:
        state_id = self._roots.get(tag)
        if state_id is None:
            nfas = self.table.nfas
            masks = tuple(
                nfas[i].step(nfas[i].start_mask, tag)
                if self.mask >> i & 1 else 0
                for i in range(len(nfas)))
            state_id = self._intern(tag, masks, (), (), (),
                                    witness=(tag,))
            self._roots[tag] = state_id
        return state_id

    def step(self, state_id: int, tag: str) -> int:
        """Memoized child transition; exact for arbitrary tags."""
        state = self._states[state_id]
        nxt = state.transitions.get(tag)
        if nxt is None:
            nfas = self.table.nfas
            masks = tuple(
                nfas[i].step(mask, tag) if mask else 0
                for i, mask in enumerate(state.key[1]))
            policies = self.table.policies
            one_level = tuple(
                i for i in state.attached
                if policies[i].propagation is XmlPropagation.ONE_LEVEL)
            cascades = tuple(
                i for i in state.attached
                if policies[i].propagation is XmlPropagation.CASCADE)
            fallback = state.key[3] or state.key[4]
            witness = (None if state.witness is None
                       else state.witness + (tag,))
            nxt = self._intern(tag, masks, one_level, cascades,
                               fallback, witness)
            state.transitions[tag] = nxt
        return nxt

    # -- lookup ---------------------------------------------------------

    def label(self, state_id: int) -> NodeLabel:
        return self._states[state_id].label

    def label_chain(self, tags: Sequence[str]) -> NodeLabel:
        state_id = self.root_state(tags[0])
        for tag in tags[1:]:
            state_id = self.step(state_id, tag)
        return self.label(state_id)

    def state(self, state_id: int) -> LabelState:
        return self._states[state_id]

    def states(self) -> Iterator[LabelState]:
        return iter(self._states)

    @property
    def state_count(self) -> int:
        return len(self._states)

    def explore(self, graph: DtdGraph) -> int:
        """BFS-close over DTD child edges, assigning witness chains."""
        start = self.root_state(graph.root)
        pending = [start]
        seen = {start}
        while pending:
            state_id = pending.pop(0)
            tag = self._states[state_id].tag
            for child_tag in sorted(graph.child_tags(tag)):
                nxt = self.step(state_id, child_tag)
                if nxt not in seen:
                    seen.add(nxt)
                    pending.append(nxt)
        self.eager_states = len(seen)
        return self.eager_states


@dataclass(frozen=True)
class XmlCompileStats:
    """Size counters of one compiled label table."""

    policies: int
    profile_classes: int
    states: int
    eager_states: int
    dynamic_policies: int
    source_generation: int
    doc_id: str


class CompiledLabelTable(DerivedArtifact):
    """Per-profile label automata compiled from one XML policy base."""

    def __init__(self, policies: Sequence[XmlPolicy], graph: DtdGraph,
                 doc_id: str, source_generation: int,
                 probes: Sequence[Subject],
                 max_states: int = 50_000) -> None:
        super().__init__(source_generation)
        self.policies = tuple(
            sorted(policies, key=lambda p: p.policy_id))
        self.graph = graph
        self.doc_id = doc_id
        self.probes = tuple(probes)
        self.max_states = max_states
        self.nfas = tuple(xpath_nfa(p.target) for p in self.policies)
        self.dynamic_mask = 0
        for index, policy in enumerate(self.policies):
            if target_is_dynamic(policy.target):
                self.dynamic_mask |= 1 << index
        self._profile_masks: dict[Subject, int] = {}
        self._walks: dict[int, ProfileLabelWalk] = {}
        self._state_total = 0

    def _charge_state(self) -> None:
        if self._state_total >= self.max_states:
            raise ConfigurationError(
                f"XML label table exceeded {self.max_states} states "
                f"across profiles; the policy targets are "
                f"pathologically diverse")
        self._state_total += 1

    # -- profiles -------------------------------------------------------

    def profile(self, subject: Subject) -> int:
        """Bit *i* set iff ``policies[i].applies_to_subject(subject)``."""
        mask = self._profile_masks.get(subject)
        if mask is None:
            mask = 0
            for index, policy in enumerate(self.policies):
                if policy.applies_to_subject(subject):
                    mask |= 1 << index
            self._profile_masks[subject] = mask
        return mask

    def profile_classes(self, probes: Sequence[Subject] | None = None
                        ) -> list[tuple[int, Subject, int]]:
        """Distinct (mask, witness, size) classes of a probe universe."""
        grouped: dict[int, list[Subject]] = {}
        for subject in (self.probes if probes is None else probes):
            grouped.setdefault(self.profile(subject), []).append(subject)
        return [(mask, members[0], len(members))
                for mask, members in sorted(grouped.items())]

    def walk(self, profile_mask: int) -> ProfileLabelWalk:
        walk = self._walks.get(profile_mask)
        if walk is None:
            walk = ProfileLabelWalk(self, profile_mask)
            self._walks[profile_mask] = walk
        return walk

    # -- lookup ---------------------------------------------------------

    def label_chain(self, subject: Subject,
                    tags: Sequence[str]) -> NodeLabel:
        return self.walk(self.profile(subject)).label_chain(tags)

    def label_document(self, subject: Subject,
                       document: Document) -> dict[int, NodeLabel]:
        """One memoized automaton transition per element.

        Returns the same ``id(element) → NodeLabel`` map as the
        interpreter's ``label_document`` — the equivalence the
        verification pass and the property suite assert.
        """
        walk = self.walk(self.profile(subject))
        labels: dict[int, NodeLabel] = {}

        def visit(node: Element, state_id: int) -> None:
            labels[id(node)] = walk.label(state_id)
            for child in node.element_children:
                visit(child, walk.step(state_id, child.tag))

        visit(document.root, walk.root_state(document.root.tag))
        return labels

    # -- reporting ------------------------------------------------------

    def explore(self) -> int:
        """Eagerly close every probe profile's walk over the DTD."""
        total = 0
        for mask, _witness, _size in self.profile_classes():
            total += self.walk(mask).explore(self.graph)
        return total

    def stats(self) -> XmlCompileStats:
        return XmlCompileStats(
            policies=len(self.policies),
            profile_classes=len(self.profile_classes()),
            states=self._state_total,
            eager_states=sum(w.eager_states
                             for w in self._walks.values()),
            dynamic_policies=self.dynamic_mask.bit_count(),
            source_generation=self.source_generation,
            doc_id=self.doc_id)

    def compute_digest(self) -> str:
        """Digest of the policies plus every explored automaton shape."""
        lines = [f"doc_id={self.doc_id}",
                 f"generation={self.source_generation}"]
        for index, policy in enumerate(self.policies):
            lines.append(
                f"policy|{policy.policy_id}|{policy.sign.value}"
                f"|{policy.privilege.value}|{policy.document_selector}"
                f"|{policy.target}|{policy.propagation.value}"
                f"|{int(self.dynamic_mask >> index & 1)}"
                f"|{policy.subject_spec.description}")
        for mask in sorted(self._walks):
            walk = self._walks[mask]
            for state in walk.states():
                edges = ",".join(
                    f"{tag}>{dst}" for tag, dst
                    in sorted(state.transitions.items()))
                deciding = state.label.deciding_policy
                lines.append(
                    f"walk|{mask}|{state.state_id}|{state.tag}"
                    f"|{state.label.access}"
                    f"|{'' if deciding is None else deciding.policy_id}"
                    f"|{edges}")
        return sha256_hex("\n".join(lines))


def compile_xml_policy_base(base: XmlPolicyBase, schema: Schema,
                            doc_id: str = "*",
                            probes: Sequence[Subject] | None = None,
                            explore: bool = True,
                            max_states: int = 50_000
                            ) -> CompiledLabelTable:
    """Compile one XML policy base (for one document selector class).

    Only policies applying to *doc_id* are compiled; ``doc_id='*'``
    compiles the collection-wide policies, the table every document
    shares.
    """
    policies = [p for p in base if p.applies_to_document(doc_id)]
    table = CompiledLabelTable(
        policies, DtdGraph(schema), doc_id,
        source_generation=base.generation,
        probes=as_probe_list(probes), max_states=max_states)
    if explore:
        table.explore()
    return table


# -- verification ---------------------------------------------------------


def _label_key(label: NodeLabel) -> tuple[str, int | None]:
    deciding = label.deciding_policy
    return (label.access,
            None if deciding is None else deciding.policy_id)


def _chain_document(tags: Sequence[str]) -> tuple[Document, Element]:
    root = Element(tags[0])
    node = root
    for tag in tags[1:]:
        child = Element(tag)
        node.append(child)
        node = child
    return Document(root, name="compile-verify"), node


@dataclass(frozen=True)
class LabelDisagreement:
    """One cell where table and labeller differ, with explanations."""

    profile_mask: int
    subject_name: str
    chain: tuple[str, ...]
    compiled: NodeLabel
    interpreted: NodeLabel
    explanations: tuple[str, ...]

    @property
    def explained(self) -> bool:
        return bool(self.explanations)


@dataclass
class LabelVerification:
    """Outcome of one verification pass over a compiled label table."""

    digest: str
    source_generation: int
    base_generation: int
    doc_id: str
    cells: int = 0
    disagreements: list[LabelDisagreement] = field(default_factory=list)
    dynamic_policy_ids: tuple[int, ...] = ()

    @property
    def explained(self) -> int:
        return sum(1 for d in self.disagreements if d.explained)

    @property
    def unexplained(self) -> int:
        return sum(1 for d in self.disagreements if not d.explained)

    @property
    def verdict(self) -> str:
        return "proved" if self.unexplained == 0 else "refuted"

    def findings(self) -> list[Finding]:
        found = [
            REGISTRY.make_finding(
                "XML-DYNPRED", f"policy#{policy_id}",
                "predicate target is compiled predicate-free; the "
                "static labels are its structural projection",
                fix_hint="keep predicate policies on the interpreted "
                         "path, or split the predicate into a "
                         "structural target")
            for policy_id in self.dynamic_policy_ids]
        for disagreement in self.disagreements:
            if disagreement.explained:
                continue
            chain = "/".join(disagreement.chain)
            found.append(REGISTRY.make_finding(
                "COMPILE-DIVERGE",
                f"chain({chain!r}, subject="
                f"{disagreement.subject_name})",
                f"table labels {disagreement.compiled.access!r}; the "
                f"labeller says {disagreement.interpreted.access!r}; "
                f"no dynamic policy touches the chain",
                fix_hint="recompile the table from the current XML "
                         "policy base (generation "
                         f"{self.base_generation} vs compiled "
                         f"{self.source_generation})"))
        return found

    def to_dict(self) -> dict:
        return {
            "digest": self.digest,
            "source_generation": self.source_generation,
            "base_generation": self.base_generation,
            "doc_id": self.doc_id,
            "cells": self.cells,
            "disagreements": len(self.disagreements),
            "explained": self.explained,
            "unexplained": self.unexplained,
            "dynamic_policies": len(self.dynamic_policy_ids),
            "verdict": self.verdict,
        }


def verify_label_table(table: CompiledLabelTable, base: XmlPolicyBase,
                       probes: Sequence[Subject] | None = None
                       ) -> LabelVerification:
    """Replay every explored (profile, chain) cell through the labeller.

    Each witness chain is materialized as a spine document and labelled
    by *base* (the authority the table claims to compile); the deepest
    element's label must equal the compiled state's.  Disagreements are
    explained by the dynamic-policy touch set — a predicate policy
    whose skeleton accepts some prefix of the chain — and anything
    unexplained is a ``COMPILE-DIVERGE`` error, the stale-table
    signature.
    """
    probe_list = as_probe_list(
        probes if probes is not None else table.probes)
    verify_doc_id = (VERIFY_DOC_ID if table.doc_id == "*"
                     else table.doc_id)
    result = LabelVerification(
        digest=table.compute_digest(),
        source_generation=table.source_generation,
        base_generation=base.generation,
        doc_id=table.doc_id,
        dynamic_policy_ids=tuple(
            table.policies[i].policy_id
            for i in range(len(table.policies))
            if table.dynamic_mask >> i & 1))
    for mask, witness_subject, _size in table.profile_classes(
            probe_list):
        walk = table.walk(mask)
        if not walk.eager_states:
            walk.explore(table.graph)
        for state in list(walk.states()):
            if state.witness is None:
                continue
            document, deepest = _chain_document(state.witness)
            interpreted = base.label_document(
                witness_subject, verify_doc_id, document,
                use_cache=False)[id(deepest)]
            result.cells += 1
            if _label_key(state.label) == _label_key(interpreted):
                continue
            explanations = tuple(
                f"XML-DYNPRED at policy#{table.policies[i].policy_id}"
                for i in _dynamic_touch_set(table, mask,
                                            state.witness))
            result.disagreements.append(LabelDisagreement(
                mask, witness_subject.identity.name, state.witness,
                state.label, interpreted, explanations))
    return result


def _dynamic_touch_set(table: CompiledLabelTable, profile_mask: int,
                       chain: Sequence[str]) -> list[int]:
    """Dynamic policies whose skeleton selects any prefix of *chain*."""
    touched: list[int] = []
    active = table.dynamic_mask & profile_mask
    for index, nfa in enumerate(table.nfas):
        if not active >> index & 1:
            continue
        mask = nfa.start_mask
        for tag in chain:
            mask = nfa.step(mask, tag)
            if nfa.accepts(mask):
                touched.append(index)
                break
    return touched
