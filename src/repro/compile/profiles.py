"""Credential-profile classes: subjects collapsed to qualification masks.

The second compiler axis.  A policy decision depends on the subject only
through the vector of ``applies_to_subject`` answers over the policy
base — two subjects with the same vector are indistinguishable to every
policy.  :class:`CredentialProfileIndex` packs that vector into a
bitmask over the id-sorted policy tuple (bit *i* ⇔ policy *i* qualifies
the subject) and memoizes it per subject: credential expressions are
evaluated once per subject per compiled artifact instead of once per
request.

Subjects hash by identity and the
:class:`~repro.core.subjects.SubjectDirectory` replaces (never mutates)
them on credential change, so a subject is a sound memo key for the
artifact's lifetime; the memo is unbounded because the subject
population is bounded by construction.  Unlike the analyzer's
:func:`~repro.analysis.probes.probe_mask`, profile computation does
*not* swallow exceptions — the interpreter would raise on the same
hostile predicate, and the compiled engine must agree with the
interpreter bit for bit, failures included.

:meth:`profile_classes` quotients a finite probe universe by profile
mask — the credential-profile classes of the compiled decision table,
each carrying one witness subject for the verification pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.policy import Policy
from repro.core.subjects import Subject


@dataclass(frozen=True)
class ProfileClass:
    """One equivalence class of subjects under policy qualification."""

    mask: int
    witness: Subject
    size: int


class CredentialProfileIndex:
    """Subject → qualification bitmask over an id-sorted policy tuple."""

    def __init__(self, policies: Sequence[Policy]) -> None:
        self.policies = tuple(policies)
        self._masks: dict[Subject, int] = {}

    def __len__(self) -> int:
        return len(self._masks)

    def profile(self, subject: Subject) -> int:
        """Bit *i* set iff ``policies[i].applies_to_subject(subject)``."""
        mask = self._masks.get(subject)
        if mask is None:
            mask = 0
            for index, policy in enumerate(self.policies):
                if policy.applies_to_subject(subject):
                    mask |= 1 << index
            self._masks[subject] = mask
        return mask

    def profile_classes(self, probes: Sequence[Subject]
                        ) -> list[ProfileClass]:
        """The distinct profiles of a probe universe, with witnesses."""
        grouped: dict[int, list[Subject]] = {}
        for subject in probes:
            grouped.setdefault(self.profile(subject), []).append(subject)
        return [ProfileClass(mask, members[0], len(members))
                for mask, members in sorted(grouped.items())]
