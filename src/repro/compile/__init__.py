"""Policy compilation: static analysis graphs → O(1) decision tables.

The pipeline (§3.2's policy bases made cheap to enforce):

1. :mod:`repro.compile.pathdfa` — every policy's resource reach merged
   into one path-class DFA (lazy subset construction, eagerly explored
   over a witness alphabet);
2. :mod:`repro.compile.profiles` — subjects quotiented into
   credential-profile classes by their policy-qualification bitmask;
3. :mod:`repro.compile.table` — the flat decision table keyed by
   (path class, action, profile), filled by the interpreter's own
   conflict-resolution code;
4. :mod:`repro.compile.engine` — the drop-in engine: generation-stamped
   freshness, recompilation on drift, gateway/serial surfaces;
5. :mod:`repro.compile.verify` — the static equivalence proof: every
   compiled cell replayed through the interpreter on its witness, with
   analysis findings explaining (never masking) disagreements;
6. :mod:`repro.compile.xmltable` — the Author-X analogue: per-profile
   label automata over tag chains, verified against the document
   labeller on spine documents.
"""

from repro.compile.pathdfa import (
    MergedPathDfa,
    OTHER_SEGMENT,
    PatternNfa,
    glob_witnesses,
    nfa_for_policy,
)
from repro.compile.profiles import CredentialProfileIndex, ProfileClass
from repro.compile.table import (
    CompiledPolicy,
    CompileStats,
    compile_policy_base,
)
from repro.compile.engine import CompiledPolicyEngine, EngineStats
from repro.compile.verify import (
    CellDisagreement,
    CompileVerification,
    verify_compiled,
)
from repro.compile.xmltable import (
    CompiledLabelTable,
    LabelVerification,
    XmlCompileStats,
    compile_xml_policy_base,
    verify_label_table,
    xpath_nfa,
)

__all__ = [
    "MergedPathDfa",
    "OTHER_SEGMENT",
    "PatternNfa",
    "glob_witnesses",
    "nfa_for_policy",
    "CredentialProfileIndex",
    "ProfileClass",
    "CompiledPolicy",
    "CompileStats",
    "compile_policy_base",
    "CompiledPolicyEngine",
    "EngineStats",
    "CellDisagreement",
    "CompileVerification",
    "verify_compiled",
    "CompiledLabelTable",
    "LabelVerification",
    "XmlCompileStats",
    "compile_xml_policy_base",
    "verify_label_table",
    "xpath_nfa",
]
