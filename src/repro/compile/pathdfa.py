"""Merged path-class DFA: every policy's resource reach in one automaton.

The front-end of the policy compiler.  Each policy's
``applies_to_resource`` predicate — glob pattern matching *plus*
propagation through ancestors (:class:`~repro.core.policy.Propagation`)
— is encoded as a small position NFA over path segments
(:class:`PatternNfa`); the :class:`MergedPathDfa` runs every NFA in
lockstep via lazy subset construction, so one walk over a path's
segments yields the exact applicability bitmask of the whole policy
base.  Two properties make the result usable as a compiled artifact:

* **Runtime exactness.**  Transitions are memoized per (state, segment)
  but computed from the NFAs with ``fnmatchcase`` on demand, so
  :meth:`classify` agrees with the interpreter on *every* path — also
  paths whose segments were never seen at compile time.

* **Static enumerability.**  :meth:`explore` eagerly closes the
  automaton over a *witness alphabet*: every literal segment appearing
  in any pattern, synthesized witnesses for glob segments, and one
  fresh ``OTHER_SEGMENT`` standing for "any segment no pattern names".
  Each explored state records a concrete witness path, which is what
  lets the verification pass (:mod:`repro.compile.verify`) replay every
  compiled path class through the interpreter.  The witness alphabet is
  a deliberate finite cut of the infinite segment space: segment
  behaviours it cannot express (e.g. one segment satisfying two
  disjoint globs at once) are simply extra path classes discovered —
  and still answered exactly — at runtime.

Propagation is folded into the NFA, not special-cased at lookup time:
``LOCAL`` keeps the pattern as-is, ``ONE_LEVEL`` appends a ``*``
segment (the pattern or its direct child may match), ``CASCADE``
appends ``**`` (the pattern or any descendant).  Both the original and
the extended accept positions are accepting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Iterator, Sequence

from repro.core.errors import ConfigurationError
from repro.core.objects import ResourcePath
from repro.core.policy import Policy, Propagation

#: Stand-in for "a segment no pattern mentions" in the witness alphabet.
OTHER_SEGMENT = "~other~"

_GLOB_CHARS = "*?["
_CHAR_CLASS = re.compile(r"\[(!?)([^\]]+)\]")


def _is_glob(segment: str) -> bool:
    return any(ch in segment for ch in _GLOB_CHARS)


def glob_witnesses(segment: str) -> frozenset[str]:
    """Concrete segments matching one glob segment (best effort).

    Substitutes neutral characters for the glob operators and keeps only
    candidates that verifiably match.  ``*``/``**`` yield nothing — the
    generic :data:`OTHER_SEGMENT` already covers "anything".
    """
    if segment in ("*", "**"):
        return frozenset()
    candidates = set()
    stripped = _CHAR_CLASS.sub(
        lambda m: "~" if m.group(1) else m.group(2)[0], segment)
    stripped = stripped.replace("?", "~")
    candidates.add(stripped.replace("*", ""))
    candidates.add(stripped.replace("*", "~"))
    return frozenset(
        c for c in candidates
        if c and "/" not in c and not _is_glob(c)
        and fnmatchcase(c, segment))


class PatternNfa:
    """Position NFA over path segments; masks are position bitsets.

    Position *i* means "the first *i* segments of the (extended) pattern
    are consumed".  A ``**`` segment self-loops (absorbing a segment)
    and epsilon-advances (absorbing zero), which :meth:`close` applies.
    """

    __slots__ = ("segments", "accept_mask", "start_mask", "_star_bits")

    def __init__(self, segments: tuple[str, ...],
                 accept_positions: frozenset[int]) -> None:
        self.segments = segments
        self.accept_mask = 0
        for position in accept_positions:
            self.accept_mask |= 1 << position
        self._star_bits = tuple(
            1 << i for i, seg in enumerate(segments) if seg == "**")
        self.start_mask = self.close(1)

    def close(self, mask: int) -> int:
        """Epsilon closure: a reached ``**`` may also be skipped.

        Iterates to fixpoint so adjacent ``**`` segments chain.
        """
        changed = True
        while changed:
            changed = False
            for bit in self._star_bits:
                if mask & bit and not mask & (bit << 1):
                    mask |= bit << 1
                    changed = True
        return mask

    def step(self, mask: int, segment: str) -> int:
        """Consume one path segment from a closed position mask."""
        if not mask:
            return 0
        out = 0
        for index, pattern_segment in enumerate(self.segments):
            bit = 1 << index
            if not mask & bit:
                continue
            if pattern_segment == "**":
                out |= bit
            elif fnmatchcase(segment, pattern_segment):
                out |= bit << 1
        return self.close(out)

    def accepts(self, mask: int) -> bool:
        return bool(mask & self.accept_mask)


def nfa_for_policy(policy: Policy) -> PatternNfa:
    """The NFA deciding ``policy.applies_to_resource`` exactly."""
    base = policy.resource.segments
    if policy.propagation is Propagation.ONE_LEVEL:
        extended = base + ("*",)
    elif policy.propagation is Propagation.CASCADE:
        extended = base + ("**",)
    else:
        extended = base
    return PatternNfa(extended,
                      frozenset((len(base), len(extended))))


@dataclass
class DfaState:
    """One path class: all paths sharing this per-policy position tuple."""

    state_id: int
    key: tuple[int, ...]
    applies_mask: int
    witness: tuple[str, ...] | None = None
    transitions: dict[str, int] = field(default_factory=dict)


class MergedPathDfa:
    """Lazy product DFA of every policy's :class:`PatternNfa`.

    ``classify(path)`` walks the path's segments once and lands on a
    :class:`DfaState` whose ``applies_mask`` has bit *i* set exactly
    when ``policies[i].applies_to_resource(path)`` — the property test
    suite asserts this bit-for-bit against the interpreter.
    """

    def __init__(self, policies: Sequence[Policy],
                 max_states: int = 50_000) -> None:
        self.policies = tuple(policies)
        self.max_states = max_states
        self._nfas = tuple(nfa_for_policy(p) for p in self.policies)
        self._states: list[DfaState] = []
        self._by_key: dict[tuple[int, ...], int] = {}
        self._glob_literal_matches: dict[str, frozenset[str]] = {}
        self._all_literals = frozenset(
            seg for nfa in self._nfas for seg in nfa.segments
            if not _is_glob(seg))
        self.eager_states = 0
        self.start = self._intern(
            tuple(nfa.start_mask for nfa in self._nfas), witness=())

    # -- construction ---------------------------------------------------

    def _intern(self, key: tuple[int, ...],
                witness: tuple[str, ...] | None = None) -> int:
        state_id = self._by_key.get(key)
        if state_id is not None:
            state = self._states[state_id]
            if state.witness is None and witness is not None:
                state.witness = witness
            return state_id
        if len(self._states) >= self.max_states:
            raise ConfigurationError(
                f"path DFA exceeded {self.max_states} states; the policy "
                f"base's patterns are pathologically diverse")
        applies = 0
        for index, (nfa, mask) in enumerate(zip(self._nfas, key)):
            if mask and nfa.accepts(mask):
                applies |= 1 << index
        state = DfaState(len(self._states), key, applies, witness)
        self._states.append(state)
        self._by_key[key] = state.state_id
        return state.state_id

    def step(self, state_id: int, segment: str) -> int:
        """Memoized transition; exact for arbitrary segments."""
        state = self._states[state_id]
        nxt = state.transitions.get(segment)
        if nxt is None:
            key = tuple(nfa.step(mask, segment)
                        for nfa, mask in zip(self._nfas, state.key))
            witness = (None if state.witness is None
                       else state.witness + (segment,))
            nxt = self._intern(key, witness)
            state.transitions[segment] = nxt
        return nxt

    # -- lookup ---------------------------------------------------------

    def classify(self, path: ResourcePath | str) -> int:
        path = ResourcePath(path)
        state_id = self.start
        for segment in path.segments:
            state_id = self.step(state_id, segment)
        return state_id

    def state(self, state_id: int) -> DfaState:
        return self._states[state_id]

    def applies_mask(self, state_id: int) -> int:
        return self._states[state_id].applies_mask

    def witness_path(self, state_id: int) -> ResourcePath | None:
        witness = self._states[state_id].witness
        return None if witness is None else ResourcePath(witness)

    @property
    def state_count(self) -> int:
        return len(self._states)

    def states(self) -> Iterator[DfaState]:
        return iter(self._states)

    def transition_count(self) -> int:
        return sum(len(s.transitions) for s in self._states)

    # -- eager closure over the witness alphabet ------------------------

    def _matching_literals(self, glob: str) -> frozenset[str]:
        cached = self._glob_literal_matches.get(glob)
        if cached is None:
            cached = frozenset(lit for lit in self._all_literals
                               if fnmatchcase(lit, glob))
            self._glob_literal_matches[glob] = cached
        return cached

    def state_alphabet(self, state_id: int) -> frozenset[str]:
        """Segments that can distinguish behaviour from this state.

        Active pattern positions contribute their literals directly; an
        active glob contributes its synthesized witnesses plus every
        pattern literal it matches (the "literal under glob" classes).
        :data:`OTHER_SEGMENT` represents every remaining segment.
        """
        segments: set[str] = {OTHER_SEGMENT}
        state = self._states[state_id]
        for nfa, mask in zip(self._nfas, state.key):
            if not mask:
                continue
            for index, seg in enumerate(nfa.segments):
                if not mask & (1 << index):
                    continue
                if seg in ("*", "**"):
                    continue
                if _is_glob(seg):
                    segments |= glob_witnesses(seg)
                    segments |= self._matching_literals(seg)
                else:
                    segments.add(seg)
        return frozenset(segments)

    def explore(self) -> int:
        """BFS-close the DFA over per-state witness alphabets.

        Assigns every reachable-by-witness state a concrete witness
        path; returns (and records) the eager state count.  The sink
        state (no policy can ever apply again) only self-loops, so the
        walk terminates.
        """
        pending = [self.start]
        seen = {self.start}
        while pending:
            state_id = pending.pop(0)
            for segment in sorted(self.state_alphabet(state_id)):
                nxt = self.step(state_id, segment)
                if nxt not in seen:
                    seen.add(nxt)
                    pending.append(nxt)
        self.eager_states = len(seen)
        return self.eager_states
