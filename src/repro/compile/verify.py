"""Static equivalence verification: compiled table ≡ interpreter.

For every *cell* of a compiled artifact — an eagerly explored path
class (which carries a concrete witness path), a credential-profile
class of the probe universe (which carries a witness subject), and an
action — this pass replays the witness request through a fresh,
cache-free :class:`~repro.core.evaluator.PolicyEvaluator` over the
source base and statically checks ``table[cell] ==
interpreter(cell)``, full :class:`~repro.core.evaluator.Decision`
equality: verdict, determining policy, applicable tuple and reason
string.

Disagreements are *explained, not masked*: each one is matched against
what the analysis layer already knows —

* content-dependent (residual) policies among the cell's candidates,
  whose conditions the table can only project at ``payload=None``
  (``COMPILE-RESIDUAL``, reported per residual policy regardless of
  disagreement);
* dead / conflicting / shadowed policies from the ``policy`` analysis
  domain (:mod:`repro.analysis.corepolicy`) touching the cell's
  policies.

A disagreement *no* finding explains is the verification failure mode:
``COMPILE-DIVERGE`` (error severity) — the canonical instance being a
stale artifact verified against a drifted base.  ``verdict`` is
``"proved"`` only when every cell agrees or is explained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.findings import Finding, Severity, REGISTRY
from repro.analysis.probes import as_probe_list
from repro.core.evaluator import Decision, PolicyEvaluator
from repro.core.policy import Action, PolicyBase
from repro.core.subjects import Subject

from repro.compile.table import CompiledPolicy

REGISTRY.register(
    "COMPILE-DIVERGE", Severity.ERROR, "compile",
    "compiled decision table disagrees with the interpreter",
    "a decision served from a table that is not provably equivalent to "
    "the policy interpreter silently rewrites the access control policy")
REGISTRY.register(
    "COMPILE-RESIDUAL", Severity.INFO, "compile",
    "content-dependent policy compiled as residual",
    "a condition over request payloads cannot be folded into a static "
    "table; the compiled engine interprets it per request, and the "
    "static proof covers only its payload-free projection")


@dataclass(frozen=True)
class CellDisagreement:
    """One cell where table and interpreter differ, with explanations."""

    state_id: int
    witness_path: str
    action: Action
    profile_mask: int
    subject_name: str
    compiled: Decision
    interpreted: Decision
    explanations: tuple[str, ...]

    @property
    def explained(self) -> bool:
        return bool(self.explanations)


@dataclass
class CompileVerification:
    """Outcome of one verification pass over a compiled artifact."""

    digest: str
    source_generation: int
    base_generation: int
    cells: int = 0
    disagreements: list[CellDisagreement] = field(default_factory=list)
    residual_policy_ids: tuple[int, ...] = ()

    @property
    def explained(self) -> int:
        return sum(1 for d in self.disagreements if d.explained)

    @property
    def unexplained(self) -> int:
        return sum(1 for d in self.disagreements if not d.explained)

    @property
    def verdict(self) -> str:
        return "proved" if self.unexplained == 0 else "refuted"

    def findings(self) -> list[Finding]:
        found = [
            REGISTRY.make_finding(
                "COMPILE-RESIDUAL", f"policy#{policy_id}",
                "content-dependent policy is interpreted per request; "
                "the static proof covers its payload-free projection "
                "condition(None)",
                fix_hint="lift the condition into the resource pattern "
                         "or subject expression to make it compilable")
            for policy_id in self.residual_policy_ids]
        for disagreement in self.disagreements:
            if disagreement.explained:
                continue
            found.append(REGISTRY.make_finding(
                "COMPILE-DIVERGE",
                f"cell(path={disagreement.witness_path!r}, "
                f"action={disagreement.action.value}, "
                f"subject={disagreement.subject_name})",
                f"table says granted={disagreement.compiled.granted} "
                f"({disagreement.compiled.reason}); interpreter says "
                f"granted={disagreement.interpreted.granted} "
                f"({disagreement.interpreted.reason}); no analysis "
                f"finding explains the divergence",
                fix_hint="recompile the artifact from the current "
                         "policy base (generation "
                         f"{self.base_generation} vs compiled "
                         f"{self.source_generation})"))
        return found

    def to_dict(self) -> dict:
        return {
            "digest": self.digest,
            "source_generation": self.source_generation,
            "base_generation": self.base_generation,
            "cells": self.cells,
            "disagreements": len(self.disagreements),
            "explained": self.explained,
            "unexplained": self.unexplained,
            "residual_policies": len(self.residual_policy_ids),
            "verdict": self.verdict,
        }


def _analysis_explanations(policies: Sequence) -> dict[int, list[str]]:
    """policy id → analysis findings naming it (dead/conflict/shadow)."""
    # Function-level import: corepolicy builds its overlap test on the
    # compile package, so a module-level import would be circular.
    from repro.analysis.corepolicy import analyze_core_policies
    report = analyze_core_policies(policies)
    by_policy: dict[int, list[str]] = {}
    for finding in report:
        for policy in policies:
            tag = f"policy#{policy.policy_id}"
            if tag == finding.location or tag in finding.message:
                by_policy.setdefault(policy.policy_id, []).append(
                    f"{finding.rule_id} at {finding.location}")
    return by_policy


def verify_compiled(artifact: CompiledPolicy, base: PolicyBase,
                    probes: Sequence[Subject] | None = None,
                    actions: Sequence[Action] | None = None
                    ) -> CompileVerification:
    """Prove (or refute) table ≡ interpreter over every static cell.

    *base* is the authority the artifact claims to compile; verifying
    an artifact against a drifted base is exactly how a stale table is
    caught.  *actions* defaults to every action the compiled policies
    mention plus READ (cells for unmentioned actions are all
    default-decision and carry no information).
    """
    probe_list = as_probe_list(
        probes if probes is not None else artifact.probes)
    interpreter = PolicyEvaluator(
        base, resolution=artifact.resolution, default=artifact.default,
        audit=None, cache_decisions=False)
    if actions is None:
        mentioned = {p.action for p in artifact.policies}
        mentioned.add(Action.READ)
        actions = sorted(mentioned, key=lambda a: a.value)
    classes = artifact.profile_classes(probe_list)
    residual_ids = tuple(
        p.policy_id for p in artifact.policies if p.condition is not None)
    result = CompileVerification(
        digest=artifact.digest,
        source_generation=artifact.source_generation,
        base_generation=getattr(base, "generation",
                                artifact.source_generation),
        residual_policy_ids=residual_ids)
    explanations_by_policy: dict[int, list[str]] | None = None
    for state in list(artifact.dfa.states()):
        if state.witness is None:
            continue
        witness_path = "/".join(state.witness)
        for action in actions:
            for profile in classes:
                result.cells += 1
                compiled = artifact.decide_cell(
                    state.state_id, action, profile.mask)
                interpreted = interpreter.decide(  # lint: allow=LINT-BATCHLOOP
                    profile.witness, action, witness_path)
                if compiled == interpreted:
                    continue
                if explanations_by_policy is None:
                    explanations_by_policy = _analysis_explanations(
                        artifact.policies)
                involved = {
                    artifact.policies[i].policy_id
                    for i in artifact.appliers(state.state_id).get(
                        action, ())
                    if profile.mask >> i & 1}
                involved.update(p.policy_id
                                for p in interpreted.applicable)
                explanations: list[str] = []
                for policy_id in sorted(involved):
                    if policy_id in set(residual_ids):
                        explanations.append(
                            f"COMPILE-RESIDUAL at policy#{policy_id}")
                    explanations.extend(
                        explanations_by_policy.get(policy_id, ()))
                result.disagreements.append(CellDisagreement(
                    state.state_id, witness_path, action, profile.mask,
                    profile.witness.identity.name, compiled,
                    interpreted, tuple(dict.fromkeys(explanations))))
    return result
