"""``CompiledPolicyEngine``: the interpreter's O(1) drop-in.

Wraps a mutable :class:`~repro.core.policy.PolicyBase` (or any
duck-typed stand-in such as a
:class:`~repro.snap.policy.PolicySnapshot`) and serves decisions from a
:class:`~repro.compile.table.CompiledPolicy` artifact.  Freshness rides
on the generation stamps from :mod:`repro.perf.cache`: every decision
path calls :meth:`ensure_fresh`, which compares the artifact's
``source_generation`` against the base's current counter and recompiles
on drift; when the base exposes ``add_invalidation_hook`` the engine
additionally drops the artifact eagerly on mutation, so a stale table
is never consulted even by code reading ``current()`` directly.

The engine duck-types the surfaces its neighbours expect:

* the gateway contract (:mod:`repro.scale.gateway`) — ``decide_batch``;
* the serial evaluator surface — ``decide``/``check``, with identical
  audit records (one per decision, in request order);
* the ``PolicyBase`` evaluation surface — ``candidates``/
  ``applicable``/``generation``/iteration — delegated to the wrapped
  base, so the engine can stand wherever a policy base is expected
  (e.g. handed to a :class:`~repro.core.evaluator.PolicyEvaluator` as
  an oracle in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.audit import AuditLog
from repro.core.evaluator import (
    ConflictResolution,
    Decision,
    DefaultDecision,
)
from repro.core.objects import ResourcePath
from repro.core.policy import Action, Policy, PolicyBase
from repro.core.subjects import Subject

from repro.compile.table import CompiledPolicy, compile_policy_base


@dataclass
class EngineStats:
    """Recompilation bookkeeping for benchmarks and tests."""

    compilations: int = 0
    decisions: int = 0


class CompiledPolicyEngine:
    """Authorization from a compiled decision table, recompiled on drift."""

    def __init__(self, policies: Iterable[Policy] = (),
                 resolution: ConflictResolution =
                 ConflictResolution.DENY_OVERRIDES,
                 default: DefaultDecision = DefaultDecision.CLOSED,
                 audit: AuditLog | None = None,
                 probes: Sequence[Subject] | None = None,
                 base: object = None) -> None:
        self.base = base if base is not None else PolicyBase(policies)
        self.resolution = resolution
        self.default = default
        self.audit = audit
        self.probes = probes
        self.stats = EngineStats()
        self._artifact: CompiledPolicy | None = None
        hook = getattr(self.base, "add_invalidation_hook", None)
        if hook is not None:
            hook(self._drop_artifact)
        self.ensure_fresh()

    def _drop_artifact(self) -> None:
        self._artifact = None

    def ensure_fresh(self) -> CompiledPolicy:
        """The compiled artifact for the base's *current* generation."""
        artifact = self._artifact
        if artifact is None or artifact.is_stale(self.base.generation):
            artifact = compile_policy_base(
                self.base, resolution=self.resolution,
                default=self.default, probes=self.probes)
            self._artifact = artifact
            self.stats.compilations += 1
        return artifact

    def current(self) -> CompiledPolicy:
        """Public accessor for the fresh artifact (digest, stats)."""
        return self.ensure_fresh()

    # -- writer side ----------------------------------------------------

    def add_policy(self, policy: Policy) -> Policy:
        return self.base.add(policy)

    def remove_policy(self, policy: Policy) -> None:
        self.base.remove(policy)

    # -- reader side ----------------------------------------------------

    def decide(self, subject: Subject, action: Action,
               path: ResourcePath | str,
               payload: object = None) -> Decision:
        table = self.ensure_fresh()
        decision = table.decide(subject, action, path, payload)
        self.stats.decisions += 1
        self._record(subject, action, path, decision)
        return decision

    def check(self, subject: Subject, action: Action,
              path: ResourcePath | str, payload: object = None) -> bool:
        return self.decide(subject, action, path, payload).granted

    def decide_batch(self, requests: Sequence[tuple]) -> list[Decision]:
        """Gateway-contract batch: decisions and audit in input order."""
        table = self.ensure_fresh()
        decisions: list[Decision] = []
        for request in requests:
            subject, action, path = request[0], request[1], request[2]
            payload = request[3] if len(request) > 3 else None
            decision = table.decide(  # lint: allow=LINT-BATCHLOOP
                subject, action, path, payload)
            decisions.append(decision)
            self._record(subject, action, path, decision)
        self.stats.decisions += len(decisions)
        return decisions

    def _record(self, subject: Subject, action: Action,
                path: ResourcePath | str, decision: Decision) -> None:
        if self.audit is not None:
            self.audit.record(
                subject=subject.identity.name, action=action.value,
                resource=str(ResourcePath(path)),
                granted=decision.granted, detail=decision.reason)

    # -- PolicyBase evaluation surface (delegated) ----------------------

    @property
    def generation(self) -> int:
        return self.base.generation

    def __len__(self) -> int:
        return len(self.base)

    def __iter__(self) -> Iterator[Policy]:
        return iter(self.base)

    def candidates(self, action: Action,
                   path: ResourcePath | str) -> list[Policy]:
        return self.base.candidates(action, path)

    def applicable(self, subject: Subject, action: Action,
                   path: ResourcePath | str,
                   payload: object = None) -> list[Policy]:
        return self.base.applicable(subject, action, path, payload)
