"""The closed-loop request pipeline: admission → batch → decision.

:class:`RequestGateway` is the end-to-end throughput harness the A7
experiment drives: callers :meth:`submit` authorization requests and
get futures back; a bounded admission queue sheds load with a typed
:class:`~repro.core.errors.AdmissionRejected` (never an unbounded
backlog); worker threads drain the queue in batches, group each batch
by shard, and push the groups through the sharded engine's batched
decision path.  Per-stage counters (admitted/rejected, queue wait,
evaluation time, batch sizes) make the sweep's bottlenecks visible.

Fault semantics (the chaos battery's contract): an optional
:class:`~repro.faults.injector.FaultInjector` is stepped once per
shard-group at the site ``gateway:shard<i>``.  A fault never alters a
decision — it converts the whole group's responses into one *typed*
:class:`~repro.core.errors.TransportError` subclass (CRASH →
ReplicaUnavailable, DROP/REORDER → MessageDropped, CORRUPT →
CorruptMessage, STALE_READ → StaleRead).  DELAY only charges the fault
clock and DUPLICATE re-evaluates the group (decisions are read-only,
so a duplicate is harmless — which the chaos suite asserts).  Every
response is therefore byte-identical to the fault-free run or a typed
error: fail closed, never a silently wrong grant.

``workers=0`` runs the gateway synchronously — :meth:`process_pending`
drains the queue on the caller's thread in submission order, which is
what makes the chaos battery deterministic per seed.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass

from repro.core.errors import (
    AdmissionRejected,
    ConfigurationError,
    CorruptMessage,
    MessageDropped,
    ReplicaUnavailable,
    StaleRead,
)
from repro.core.evaluator import Decision
from repro.core.objects import ResourcePath
from repro.core.policy import Action
from repro.core.subjects import Subject
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind
# Telemetry is shared with the asyncio gateway (repro.gateway.stats
# loads before anything else in that package, so this import is safe
# from every entry point); GatewayStats/LatencyHistogram stay
# re-exported here for existing callers.
from repro.gateway.stats import GatewayStats, LatencyHistogram

__all__ = ["GatewayStats", "LatencyHistogram", "Request",
           "RequestGateway"]


@dataclass(frozen=True)
class Request:
    """One authorization question in flight through the gateway."""

    subject: Subject
    action: Action
    path: ResourcePath | str
    payload: object = None

    def triple(self) -> tuple:
        return (self.subject, self.action, self.path, self.payload)


#: FaultKind → the typed TransportError the whole shard-group fails with.
_FAULT_ERRORS = {
    FaultKind.CRASH: lambda site: ReplicaUnavailable(
        f"shard behind {site} is down"),
    FaultKind.DROP: lambda site: MessageDropped(
        f"batch to {site} lost in transit"),
    FaultKind.REORDER: lambda site: MessageDropped(
        f"batch to {site} arrived out of order and was discarded"),
    FaultKind.CORRUPT: lambda site: CorruptMessage(
        f"batch to {site} failed its frame checksum"),
    FaultKind.STALE_READ: lambda site: StaleRead(
        f"shard behind {site} served a lagging snapshot"),
}


class RequestGateway:
    """Bounded admission + worker pool over a sharded policy engine.

    *engine* needs ``decide_batch(requests)`` and (optionally)
    ``shard_for_path(path)``; a monolithic
    :class:`~repro.scale.batch.BatchDecisionEngine` works too — all
    requests then form a single shard-0 group.
    """

    def __init__(self, engine, workers: int = 4,
                 queue_limit: int = 1024, batch_size: int = 32,
                 linger_s: float = 0.0,
                 faults: FaultInjector | None = None,
                 epochs=None, publisher=None, replicas=None,
                 durability: str | None = None) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.engine = engine
        # Snapshot wiring (repro.snap): *epochs* is an EpochManager the
        # read path pins; *publisher* is a writer-side store (needs
        # ``publish()`` and optionally ``writer()``) the write path
        # advances.  Both stay duck-typed so this module does not
        # depend on repro.snap; an engine carrying its own manager
        # (EpochalPolicyEngine) donates it when *epochs* is omitted.
        if epochs is None:
            epochs = getattr(publisher, "epochs", None)
        if epochs is None:
            epochs = getattr(engine, "epochs", None)
        self.epochs = epochs
        self.publisher = publisher
        # Replication wiring (repro.replica): *replicas* is a
        # ReplicaRouter (duck-typed: ``get``/``put``/``session``) the
        # key-value read/write path routes through — reads fan to any
        # caught-up replica, writes go to the shard primary.
        self.replicas = replicas
        # Durability wiring (repro.wal): *durability* selects the ack
        # contract of :meth:`write` when *publisher* is a durable store
        # (duck-typed: exposes ``wal_sync()``).  ``"fsync"`` — write()
        # returns only after every record it produced is fsynced;
        # ``"enqueue"`` — write() returns at enqueue and the store's
        # bounded lag (typed DurabilityLagExceeded) is the only brake.
        if durability is not None:
            if durability not in ("fsync", "enqueue"):
                raise ConfigurationError(
                    f"unknown durability mode {durability!r}; expected "
                    f"'fsync' or 'enqueue'")
            if not hasattr(publisher, "wal_sync"):
                raise ConfigurationError(
                    "durability= needs a durable publisher (one with "
                    "wal_sync()); wrap the store in repro.wal.durable")
        self.durability = durability
        self.queue_limit = queue_limit
        self.batch_size = batch_size
        # Optional: how long a worker holding a *partial* batch waits
        # for it to fill before evaluating anyway.  Off by default —
        # under a closed loop the linger only added idle waits (the
        # submitter is blocked on our futures, so the batch can never
        # fill), which showed up as sub-serial sweep points.  Open-loop
        # callers who want deeper batches can opt back in.
        self.linger_s = linger_s
        self.faults = faults
        self.stats = GatewayStats()
        self._queue: deque[tuple[Request, Future, float]] = deque()
        self._mutex = threading.Lock()
        self._not_empty = threading.Condition(self._mutex)
        self._closing = False
        self._workers: list[threading.Thread] = []
        for index in range(workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"gateway-worker-{index}",
                                      daemon=True)
            thread.start()
            self._workers.append(thread)

    # -- admission ---------------------------------------------------------

    def submit(self, request: Request) -> Future:
        """Admit *request* or shed it with AdmissionRejected."""
        future: Future = Future()
        with self._mutex:
            if self._closing:
                raise AdmissionRejected("gateway is shutting down")
            if len(self._queue) >= self.queue_limit:
                with self.stats._lock:
                    self.stats.rejected += 1
                raise AdmissionRejected(
                    f"admission queue full ({self.queue_limit} pending)")
            self._queue.append((request, future, time.perf_counter()))
            with self.stats._lock:
                self.stats.admitted += 1
            self._not_empty.notify()
        return future

    def pending(self) -> int:
        with self._mutex:
            return len(self._queue)

    # -- the pipeline ------------------------------------------------------

    def _drain(self) -> list[tuple[Request, Future, float]]:
        """Pop up to batch_size entries (caller holds no locks)."""
        with self._mutex:
            batch = []
            while self._queue and len(batch) < self.batch_size:
                batch.append(self._queue.popleft())
            return batch

    def _shard_of(self, request: Request) -> int:
        shard_for_path = getattr(self.engine, "shard_for_path", None)
        if shard_for_path is None:
            return 0
        return shard_for_path(request.path)

    def _evaluate(self, batch: list[tuple[Request, Future, float]]) -> None:
        """Group one drained batch by shard and decide each group."""
        dequeued_at = time.perf_counter()
        with self.stats._lock:
            self.stats.batches += 1
            queue_wait = self.stats.stage("queue_wait")
            for _, _, submitted_at in batch:
                wait = dequeued_at - submitted_at
                self.stats.queue_wait_s += wait
                queue_wait.record(wait)

        groups: dict[int, list[tuple[Request, Future, float]]] = {}
        for request, future, submitted_at in batch:
            groups.setdefault(self._shard_of(request), []).append(
                (request, future, submitted_at))

        for shard in sorted(groups):
            group = groups[shard]
            error = self._fault_for(shard)
            if error is not None:
                for _, future, _ in group:
                    future.set_exception(error)
                with self.stats._lock:
                    self.stats.failed += len(group)
                continue
            started = time.perf_counter()
            try:
                decisions: list[Decision] = self.engine.decide_batch(
                    [request.triple() for request, _, _ in group])
            except Exception as exc:  # typed errors flow to the caller
                for _, future, _ in group:
                    future.set_exception(exc)
                with self.stats._lock:
                    self.stats.failed += len(group)
                continue
            finished = time.perf_counter()
            with self.stats._lock:
                self.stats.evaluate_s += finished - started
                self.stats.completed += len(group)
                self.stats.stage("evaluate").record(finished - started)
                for _, _, submitted_at in group:
                    self.stats.latency.record(finished - submitted_at)
            for (_, future, _), decision in zip(group, decisions):
                future.set_result(decision)

    def _fault_for(self, shard: int) -> Exception | None:
        """Step the injector for this shard-group; worst event wins.

        DELAY has already charged the fault clock inside ``step``;
        DUPLICATE means the group would be evaluated twice — decisions
        are read-only, so the second evaluation is the one we run.
        """
        if self.faults is None:
            return None
        events = self.faults.step(f"gateway:shard{shard}")
        for kind in (FaultKind.CRASH, FaultKind.CORRUPT,
                     FaultKind.STALE_READ, FaultKind.DROP,
                     FaultKind.REORDER):
            if any(event.kind is kind for event in events):
                return _FAULT_ERRORS[kind](f"gateway:shard{shard}")
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._not_empty:
                # Park until there is work (or shutdown) — a pure
                # condition wait, no poll timeout: every submit and
                # close notifies, so a missed-wakeup backstop would
                # only add idle latency.
                while not self._queue and not self._closing:
                    self._not_empty.wait()
                if self._closing and not self._queue:
                    return
                if self.linger_s > 0:
                    # Opt-in linger: give a partial batch a bounded
                    # chance to fill before evaluating it.
                    deadline = time.monotonic() + self.linger_s
                    while (len(self._queue) < self.batch_size
                            and not self._closing):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._not_empty.wait(timeout=remaining)
            batch = self._drain()
            if batch:
                self._evaluate(batch)

    # -- synchronous mode (workers=0) --------------------------------------

    def process_pending(self) -> int:
        """Drain and evaluate everything queued, on this thread, in
        submission order.  The deterministic path: same submissions +
        same fault plan ⇒ same responses, every run."""
        processed = 0
        while True:
            batch = self._drain()
            if not batch:
                return processed
            self._evaluate(batch)
            processed += len(batch)

    # -- the snapshot read/write path (repro.snap) -------------------------

    def read(self, fn):
        """Run ``fn(snapshot)`` against the pinned current epoch.

        Lock-free with respect to writers: the epoch pointer swap is
        the only synchronization point, and the pinned snapshot cannot
        be reclaimed until *fn* returns.
        """
        if self.epochs is None:
            raise ConfigurationError(
                "gateway has no epoch manager; pass epochs= or a "
                "publisher/engine that carries one")
        with self.epochs.reading() as snapshot:
            result = fn(snapshot)
        with self.stats._lock:
            self.stats.snapshot_reads += 1
        return result

    def write(self, fn):
        """Apply ``fn(publisher)`` as one write and advance the epoch.

        When the publisher supports multi-operation atomicity
        (``writer()``), every mutation *fn* makes lands in a single
        published epoch; in-flight :meth:`read` calls keep their pinned
        snapshot and the next read sees the new epoch.
        """
        if self.publisher is None:
            raise ConfigurationError(
                "gateway has no snapshot publisher; pass publisher=")
        writer = getattr(self.publisher, "writer", None)
        if writer is not None:
            with writer():
                result = fn(self.publisher)
        else:
            result = fn(self.publisher)
            publish = getattr(self.publisher, "publish", None)
            if publish is not None:
                publish()
        if self.durability == "fsync":
            # Settle every record *fn* produced before acknowledging;
            # a sealed pipeline's typed WalError propagates to the
            # caller instead of a false ack.
            self.publisher.wal_sync()
        with self.stats._lock:
            self.stats.writes += 1
            self.stats.epochs_advanced += 1
        return result

    # -- the replicated key-value path (repro.replica) ---------------------

    def replica_session(self):
        """A read-your-writes session over the replica router."""
        if self.replicas is None:
            raise ConfigurationError(
                "gateway has no replica router; pass replicas=")
        return self.replicas.session()

    def replica_read(self, key: str, session=None):
        """Read *key* from any caught-up replica of its shard.

        With a *session*, the read is served at or above the session's
        watermark floor (read-your-writes); lagging replicas answer
        with a typed StaleRead and the router probes the next copy.
        """
        if self.replicas is None:
            raise ConfigurationError(
                "gateway has no replica router; pass replicas=")
        value = self.replicas.get(key, session=session)
        with self.stats._lock:
            self.stats.replica_reads += 1
        return value

    def replica_write(self, key: str, value: str, session=None) -> int:
        """Write through the shard primary; acknowledged only when at
        least one read replica holds the delta.  Returns the version,
        which also raises the session's watermark floor."""
        if self.replicas is None:
            raise ConfigurationError(
                "gateway has no replica router; pass replicas=")
        version = self.replicas.put(key, value, session=session)
        with self.stats._lock:
            self.stats.replica_writes += 1
        return version

    # -- lifecycle ---------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop accepting work; by default finish what was admitted."""
        with self._mutex:
            self._closing = True
            self._not_empty.notify_all()
        for thread in self._workers:
            thread.join(timeout=5.0)
        if drain:
            self.process_pending()
        else:
            while True:
                batch = self._drain()
                if not batch:
                    break
                for _, future, _ in batch:
                    future.set_exception(
                        AdmissionRejected("gateway closed before evaluation"))

    def __enter__(self) -> RequestGateway:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
