"""Hash-sharded policy stores with per-shard batch evaluation.

One monolithic :class:`~repro.core.policy.PolicyBase` is a single
mutation domain: every grant added anywhere bumps one global generation
and stales every warm decision.  :class:`ShardedPolicyEngine` splits
the resource space by the *first literal segment* of each policy's
pattern — the same head the base's candidate index already prunes on —
across N independent bases:

* a policy whose pattern head is a literal lives on exactly one shard
  (the ring owner of that head);
* a policy whose head is a glob (``*``, ``**``, ``r*`` ...) can reach
  any path, so it is **broadcast** to every shard;
* a request for a path is decided entirely by the shard owning the
  path's head — which, by the routing rule above, holds precisely the
  policies the monolithic candidate index would have returned.

That last point is the sharding-equivalence contract (property-tested):
``sharded.decide(t) == monolithic.decide(t)`` for every triple, and
``decide_batch`` distributes a batch across shards and reassembles
results in input order.

Each shard owns its own evaluator, decision cache and
:class:`~repro.scale.batch.BatchDecisionEngine`; a
:class:`~repro.perf.cache.ShardedGeneration` mirrors the shards'
policy-base generations so cross-layer caches can stamp per shard —
a write to shard A no longer invalidates anything warm about shard B.
"""

from __future__ import annotations

import threading
from typing import Iterator, Sequence

from repro.core.audit import AuditLog
from repro.core.evaluator import (
    ConflictResolution,
    Decision,
    DefaultDecision,
    PolicyEvaluator,
)
from repro.core.objects import ResourcePath
from repro.core.policy import Action, Policy, PolicyBase
from repro.core.subjects import Subject
from repro.perf.cache import ShardedGeneration
from repro.scale.batch import BatchDecisionEngine, BatchRequest
from repro.scale.router import ConsistentHashRouter

_GLOB_CHARS = "*?["


def _pattern_head(policy: Policy) -> str:
    segments = policy.resource.segments
    return segments[0] if segments else "**"


def is_broadcast(policy: Policy) -> bool:
    """True when the policy's pattern head is a glob, so the policy can
    match paths under any head and must live on every shard."""
    head = _pattern_head(policy)
    return any(ch in head for ch in _GLOB_CHARS)


class ShardedPolicyEngine:
    """N policy shards behind one evaluator-compatible surface."""

    def __init__(self, shard_count: int = 4,
                 resolution: ConflictResolution =
                 ConflictResolution.DENY_OVERRIDES,
                 default: DefaultDecision = DefaultDecision.CLOSED,
                 audit: AuditLog | None = None,
                 cache_decisions: bool = True) -> None:
        self.router = ConsistentHashRouter(shard_count)
        self.shard_count = shard_count
        self._bases = tuple(PolicyBase() for _ in range(shard_count))
        self._evaluators = tuple(
            PolicyEvaluator(base, resolution, default, audit,
                            cache_decisions=cache_decisions)
            for base in self._bases)
        self._batch_engines = tuple(BatchDecisionEngine(evaluator)
                                    for evaluator in self._evaluators)
        # One mutex per shard: gateway workers evaluating different
        # shards run without contention, while two batches hitting the
        # same shard serialize instead of racing its decision cache.
        self._locks = tuple(threading.Lock() for _ in range(shard_count))
        # Mirror of each shard base's generation: external caches stamp
        # entries with generations.stamp(shard) and survive writes to
        # every *other* shard.
        self.generations = ShardedGeneration(shard_count)
        for index, base in enumerate(self._bases):
            base.add_invalidation_hook(
                lambda index=index: self.generations.bump(index))

    # -- routing ----------------------------------------------------------

    def shard_for_path(self, path: ResourcePath | str) -> int:
        """The shard that decides requests about *path*."""
        path = ResourcePath(path)
        head = path.segments[0] if path.segments else ""
        return self.router.shard_for(head)

    def shards_for_policy(self, policy: Policy) -> tuple[int, ...]:
        """Where *policy* lives: one shard, or all for broadcast heads."""
        if is_broadcast(policy):
            return tuple(range(self.shard_count))
        return (self.router.shard_for(_pattern_head(policy)),)

    def evaluator(self, shard: int) -> PolicyEvaluator:
        return self._evaluators[shard]

    def base(self, shard: int) -> PolicyBase:
        return self._bases[shard]

    # -- policy administration -------------------------------------------

    def add(self, policy: Policy) -> Policy:
        for shard in self.shards_for_policy(policy):
            self._bases[shard].add(policy)
        return policy

    def remove(self, policy: Policy) -> None:
        for shard in self.shards_for_policy(policy):
            self._bases[shard].remove(policy)

    def policies(self) -> Iterator[Policy]:
        """Every distinct policy, in id order (broadcast dedup'd)."""
        seen: set[int] = set()
        collected: list[Policy] = []
        for base in self._bases:
            for policy in base:
                if policy.policy_id not in seen:
                    seen.add(policy.policy_id)
                    collected.append(policy)
        return iter(sorted(collected, key=lambda p: p.policy_id))

    def __len__(self) -> int:
        return sum(1 for _ in self.policies())

    # -- evaluation -------------------------------------------------------

    def decide(self, subject: Subject, action: Action,
               path: ResourcePath | str,
               payload: object = None) -> Decision:
        shard = self.shard_for_path(path)
        with self._locks[shard]:
            return self._evaluators[shard].decide(subject, action, path,
                                                  payload)

    def check(self, subject: Subject, action: Action,
              path: ResourcePath | str, payload: object = None) -> bool:
        return self.decide(subject, action, path, payload).granted

    def decide_batch(self, requests: Sequence[BatchRequest]
                     ) -> list[Decision]:
        """Partition a batch by shard, batch-decide per shard, and
        reassemble results in input order."""
        by_shard: dict[int, list[int]] = {}
        for index, request in enumerate(requests):
            shard = self.shard_for_path(request[2])
            by_shard.setdefault(shard, []).append(index)
        results: list[Decision | None] = [None] * len(requests)
        for shard in sorted(by_shard):
            indices = by_shard[shard]
            with self._locks[shard]:
                decisions = self._batch_engines[shard].decide_batch(
                    [requests[i] for i in indices])
            for index, decision in zip(indices, decisions):
                results[index] = decision
        return [d for d in results if d is not None]

    def batch_engine(self, shard: int) -> BatchDecisionEngine:
        return self._batch_engines[shard]

    # -- telemetry --------------------------------------------------------

    def cache_stats(self) -> list[dict[str, int | float] | None]:
        return [evaluator.cache_stats for evaluator in self._evaluators]

    def batch_stats(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for engine in self._batch_engines:
            for key, value in engine.stats.snapshot().items():
                totals[key] = totals.get(key, 0) + value
        return totals
