"""repro.scale: sharded stores + batched authorization for throughput.

The paper's setting — "millions of subjects accessing millions of web
databases" — needs more than correct decisions; it needs decisions at
rate.  This package scales the existing engines without changing their
answers, and every wrapper carries an equivalence contract that the
property tests and bench oracles enforce:

* :class:`BatchDecisionEngine` — ``decide_batch(triples)`` equals the
  serial ``[decide(t) for t in triples]``, audit records included;
* :class:`ShardedPolicyEngine`, :class:`ShardedDatabase`,
  :class:`ShardedCollection` / :class:`ShardedXmlDatabase`,
  :class:`ShardedUddiRegistry` — each sharded store answers exactly as
  its monolithic counterpart holding the union of the shards;
* :class:`RequestGateway` — closed-loop admission/batching pipeline
  whose responses under faults are byte-identical to the fault-free
  run or a typed :class:`~repro.core.errors.TransportError`.
"""

from repro.scale.batch import BatchDecisionEngine, BatchStats
from repro.scale.engine import ShardedPolicyEngine, is_broadcast
from repro.scale.gateway import GatewayStats, Request, RequestGateway
from repro.scale.registry import ShardedUddiRegistry
from repro.scale.relational import ShardedDatabase
from repro.scale.router import ConsistentHashRouter
from repro.scale.xmlstore import ShardedCollection, ShardedXmlDatabase

__all__ = [
    "BatchDecisionEngine",
    "BatchStats",
    "ConsistentHashRouter",
    "GatewayStats",
    "Request",
    "RequestGateway",
    "ShardedCollection",
    "ShardedDatabase",
    "ShardedPolicyEngine",
    "ShardedUddiRegistry",
    "ShardedXmlDatabase",
    "is_broadcast",
]
