"""Consistent-hash routing of keys to shards.

The ROADMAP's "millions of subjects accessing millions of databases"
cannot be served by one monolithic store; every sharded wrapper in
:mod:`repro.scale` routes its keys (table names, document ids, business
keys, resource-path heads) through this ring.

Why a *ring* rather than ``hash(key) % n``: consistent hashing moves
only ``~1/n`` of the keys when a shard is added or removed, which is
what makes resharding a live system feasible.  Each shard owns
``replicas`` points on a 64-bit ring derived from SHA-256 — fully
deterministic across processes (the builtin ``hash`` is salted per
process and is banned here by LINT-HASH).
"""

from __future__ import annotations

from bisect import bisect_right

from repro.core.errors import ConfigurationError
from repro.crypto.hashing import sha256_int

_RING_BITS = 64
_RING_MASK = (1 << _RING_BITS) - 1


def _point(label: str) -> int:
    return sha256_int(f"ring:{label}") & _RING_MASK


class ConsistentHashRouter:
    """Maps string keys to shard indices ``0..shard_count-1``.

    The ring is built once at construction; ``shard_for`` is two hash
    computations and a binary search.  Routing depends only on
    ``(shard_count, replicas, key)``, never on insertion order or
    process state, so two routers with equal parameters agree on every
    key — the property every scatter-gather merge in this package
    relies on.
    """

    def __init__(self, shard_count: int, replicas: int = 64) -> None:
        if shard_count < 1:
            raise ConfigurationError("shard count must be >= 1")
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self.shard_count = shard_count
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for shard in range(shard_count):
            for replica in range(replicas):
                points.append((_point(f"{shard}:{replica}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._shards = [s for _, s in points]

    def shard_for(self, key: str) -> int:
        """The shard owning *key*: the first ring point at or after the
        key's hash, wrapping at the top of the ring."""
        position = _point(f"key:{key}")
        index = bisect_right(self._points, position)
        if index == len(self._points):
            index = 0
        return self._shards[index]

    def partition(self, keys: list[str]) -> dict[int, list[str]]:
        """Group *keys* by owning shard; input order is kept per shard
        and shards are emitted in index order (deterministic)."""
        grouped: dict[int, list[str]] = {}
        for key in keys:
            grouped.setdefault(self.shard_for(key), []).append(key)
        return {shard: grouped[shard] for shard in sorted(grouped)}

    def spread(self, keys: list[str]) -> dict[int, int]:
        """Keys-per-shard histogram (for balance diagnostics and the
        A7 ablation)."""
        counts: dict[int, int] = {}
        for key in keys:
            shard = self.shard_for(key)
            counts[shard] = counts.get(shard, 0) + 1
        return {shard: counts[shard] for shard in sorted(counts)}
