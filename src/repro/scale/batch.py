"""Batched authorization: many (subject, action, path) triples, one pass.

The serial evaluator re-derives everything per request: candidate
policies, resource-pattern matches, credential qualification.  Under
web traffic most of that work repeats — thousands of subjects ask about
the same few resources, and one subject's credential either satisfies a
policy's expression or it doesn't, regardless of which request is
asking.  :class:`BatchDecisionEngine` exploits both redundancies:

* requests are grouped by ``(action, path)``; candidate lookup runs
  **once per group** instead of once per request, and resource-pattern
  matches are memoized per ``(policy, path)`` **across batches** —
  policies are immutable, so a pattern either matches a path or it
  never will;
* credential qualification (``policy.applies_to_subject``) is memoized
  per ``(policy, subject)`` pair **across the whole batch** — the
  amortization the related work on scalable policy evaluation calls
  for;
* content conditions are still evaluated per request (a payload is
  request-local state) and decisions carrying one are never cached,
  mirroring the serial evaluator's rule.

The contract, enforced by a property test and the bench oracle::

    engine.decide_batch(triples) == [evaluator.decide(*t) for t in triples]

including audit records (same order, same content) and decision-cache
population: the batch path consults and fills the *same*
generation-stamped cache as the serial path, so the two can interleave
freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.evaluator import Decision, PolicyEvaluator
from repro.core.objects import ResourcePath
from repro.core.policy import Action
from repro.core.subjects import Subject
from repro.perf.cache import LRUCache, MISS

#: A request triple, optionally carrying a content payload.
BatchRequest = tuple  # (subject, action, path[, payload])


@dataclass
class BatchStats:
    """Where the amortization came from, per engine lifetime."""

    requests: int = 0
    groups: int = 0
    cache_hits: int = 0
    resource_checks: int = 0
    resource_reuses: int = 0
    subject_checks: int = 0
    subject_reuses: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "groups": self.groups,
            "cache_hits": self.cache_hits,
            "resource_checks": self.resource_checks,
            "resource_reuses": self.resource_reuses,
            "subject_checks": self.subject_checks,
            "subject_reuses": self.subject_reuses,
        }


@dataclass
class _Group:
    """One (action, path) equivalence class within a batch."""

    path: ResourcePath
    indices: list[int] = field(default_factory=list)


class BatchDecisionEngine:
    """Evaluates request batches against one :class:`PolicyEvaluator`.

    The engine owns no policy state: it reads the evaluator's policy
    base, shares its decision cache, resolves conflicts through its
    public :meth:`~repro.core.evaluator.PolicyEvaluator.resolve`, and
    records to its audit log — which is what makes the batch-equivalence
    contract structural rather than aspirational.

    Not safe against concurrent *policy mutation* mid-batch (neither is
    the serial path); concurrent read-only batches are fine.
    """

    def __init__(self, evaluator: PolicyEvaluator) -> None:
        self.evaluator = evaluator
        self.stats = BatchStats()
        # (policy_id, path_text) -> did the policy's resource pattern
        # match — persistent across batches.  Safe because policies are
        # immutable and policy_ids never recycled, so an entry can go
        # cold but never stale.  This is where small-batch closed loops
        # win: profiles showed glob/ancestor matching dominating when
        # every batch re-checked the same few paths against the same
        # candidates.
        self._resource_applies: LRUCache = LRUCache(maxsize=65536)

    def decide_batch(self, requests: Sequence[BatchRequest]
                     ) -> list[Decision]:
        """Decide every request; results align with the input order."""
        evaluator = self.evaluator
        base = evaluator.policy_base
        normalized: list[tuple[Subject, Action, ResourcePath, object]] = []
        for request in requests:
            subject, action, path, *rest = request
            payload = rest[0] if rest else None
            normalized.append((subject, action, ResourcePath(path),
                               payload))
        self.stats.requests += len(normalized)

        results: list[Decision | None] = [None] * len(normalized)
        cache = evaluator.decision_cache
        stamp = base.generation
        groups: dict[tuple[Action, str], _Group] = {}
        for index, (subject, action, path, payload) in enumerate(
                normalized):
            if cache is not None and payload is None:
                hit = cache.get((subject, action, str(path)), stamp)
                if hit is not MISS:
                    results[index] = hit
                    self.stats.cache_hits += 1
                    continue
            group = groups.setdefault((action, str(path)), _Group(path))
            group.indices.append(index)

        # (policy_id, subject) -> bool, shared across every group of
        # this batch: one credential qualification per pair, no matter
        # how many paths the subject asks about.
        subject_applies: dict[tuple[int, Subject], bool] = {}

        for action, path_text in sorted(groups,
                                        key=lambda k: (k[0].value, k[1])):
            group = groups[(action, path_text)]
            path = group.path
            candidates = base.candidates(action, path)
            on_target = []
            for policy in candidates:
                key = (policy.policy_id, path_text)
                matched = self._resource_applies.get(key)
                if matched is MISS:
                    matched = policy.applies_to_resource(path)
                    self._resource_applies.put(key, matched)
                    self.stats.resource_checks += 1
                else:
                    self.stats.resource_reuses += 1
                if matched:
                    on_target.append(policy)
            self.stats.groups += 1
            for index in group.indices:
                subject, _, _, payload = normalized[index]
                applicable = []
                for policy in on_target:
                    pair = (policy.policy_id, subject)
                    matched = subject_applies.get(pair)
                    if matched is None:
                        matched = policy.applies_to_subject(subject)
                        subject_applies[pair] = matched
                        self.stats.subject_checks += 1
                    else:
                        self.stats.subject_reuses += 1
                    if matched and policy.applies_to_content(payload):
                        applicable.append(policy)
                decision = evaluator.resolve(applicable)
                results[index] = decision
                if cache is not None and payload is None:
                    cache.put((subject, action, path_text), stamp,
                              decision)

        # Audit in input order, exactly as a serial loop would have.
        decisions: list[Decision] = []
        for (subject, action, path, _), decision in zip(normalized,
                                                        results):
            assert decision is not None
            evaluator.record(subject, action, path, decision)
            decisions.append(decision)
        return decisions
