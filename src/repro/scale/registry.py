"""Hash-sharded UDDI registry.

Each shard is a complete :class:`~repro.uddi.registry.UddiRegistry`.
Routing keys: businesses by ``business_key``, tModels by
``tmodel_key``, publisher assertions by their **fromKey** — the side
whose ownership the filing check inspects, so the check still sees the
owner record without any cross-shard lookup.

Browse inquiries (find_xxx) scatter to every shard and gather with the
same sort keys the monolithic registry uses (business_key /
service_key / tmodel_key), so the merged rows equal the monolithic
result.  ``find_related_businesses`` needs *mutual* assertions, and the
two directions of a relationship live on (potentially) different
shards — it gathers all shards' assertions first, then applies the
monolithic mutuality rule to the union.

``state_digest`` merges every shard's
:meth:`~repro.uddi.registry.UddiRegistry.state_parts` under their
canonical sort keys, producing a digest byte-identical to a monolithic
registry holding the union — the convergence oracle the chaos suite
compares across sharded and unsharded runs.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.core.errors import RegistryError
from repro.crypto.hashing import combine, sha256_hex
from repro.scale.router import ConsistentHashRouter
from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    PublisherAssertion,
    TModel,
)
from repro.uddi.registry import (
    BusinessOverview,
    ServiceOverview,
    UddiRegistry,
)


class ShardedUddiRegistry:
    """N UDDI registries behind the monolithic registry's surface."""

    def __init__(self, shard_count: int = 4, name: str = "registry",
                 executor: ThreadPoolExecutor | None = None) -> None:
        self.name = name
        self.shard_count = shard_count
        self.router = ConsistentHashRouter(shard_count)
        self._shards = tuple(UddiRegistry(f"{name}-s{index}")
                             for index in range(shard_count))
        self._executor = executor

    # -- routing ----------------------------------------------------------

    def shard_index(self, key: str) -> int:
        return self.router.shard_for(key)

    def shard(self, index: int) -> UddiRegistry:
        return self._shards[index]

    def shard_of(self, key: str) -> UddiRegistry:
        return self._shards[self.shard_index(key)]

    def _gather(self, job):
        """Run *job* on every shard; results in shard-index order."""
        if self._executor is not None and self.shard_count > 1:
            return list(self._executor.map(job, self._shards))
        return [job(shard) for shard in self._shards]

    # -- publisher API ----------------------------------------------------

    def save_business(self, entity: BusinessEntity, publisher: str,
                      idempotency_key: str | None = None) -> BusinessEntity:
        return self.shard_of(entity.business_key).save_business(
            entity, publisher, idempotency_key)

    def delete_business(self, business_key: str, publisher: str) -> None:
        home = self.shard_index(business_key)
        self._shards[home].delete_business(business_key, publisher)
        # Assertions *about* this business filed by other owners live on
        # the other owners' shards: purge them everywhere.
        for index, shard in enumerate(self._shards):
            if index != home:
                shard.purge_assertions(business_key)

    def save_tmodel(self, tmodel: TModel, publisher: str,
                    idempotency_key: str | None = None) -> TModel:
        return self.shard_of(tmodel.tmodel_key).save_tmodel(
            tmodel, publisher, idempotency_key)

    def add_assertion(self, assertion: PublisherAssertion,
                      publisher: str,
                      idempotency_key: str | None = None) -> None:
        # Filed on the fromKey owner's shard — where the ownership
        # record the filing check needs already lives.
        self.shard_of(assertion.from_key).add_assertion(
            assertion, publisher, idempotency_key)

    def has_applied(self, idempotency_key: str) -> bool:
        return any(shard.has_applied(idempotency_key)
                   for shard in self._shards)

    def owner_of(self, business_key: str) -> str:
        return self.shard_of(business_key).owner_of(business_key)

    # -- drill-down inquiries (get_xxx) -----------------------------------

    def get_business_detail(self, business_key: str) -> BusinessEntity:
        return self.shard_of(business_key).get_business_detail(business_key)

    def get_tmodel_detail(self, tmodel_key: str) -> TModel:
        return self.shard_of(tmodel_key).get_tmodel_detail(tmodel_key)

    def get_service_detail(self, service_key: str) -> BusinessService:
        # Services are nested inside businesses, which are routed by
        # *business* key — a service key alone doesn't name a shard, so
        # probe shards in index order (deterministic).
        for shard in self._shards:
            try:
                return shard.get_service_detail(service_key)
            except RegistryError:
                continue
        raise RegistryError(f"unknown service {service_key!r}")

    def get_binding_detail(self, binding_key: str) -> BindingTemplate:
        for shard in self._shards:
            try:
                return shard.get_binding_detail(binding_key)
            except RegistryError:
                continue
        raise RegistryError(f"unknown binding {binding_key!r}")

    # -- browse inquiries (find_xxx) --------------------------------------

    def find_business(self, name_pattern: str = "*") -> list[BusinessOverview]:
        chunks = self._gather(lambda s: s.find_business(name_pattern))
        rows = [row for chunk in chunks for row in chunk]
        return sorted(rows, key=lambda r: r.business_key)

    def find_service(self, name_pattern: str = "*",
                     category: str | None = None) -> list[ServiceOverview]:
        chunks = self._gather(
            lambda s: s.find_service(name_pattern, category))
        rows = [row for chunk in chunks for row in chunk]
        return sorted(rows, key=lambda r: r.service_key)

    def find_tmodel(self, name_pattern: str = "*") -> list[TModel]:
        chunks = self._gather(lambda s: s.find_tmodel(name_pattern))
        rows = [row for chunk in chunks for row in chunk]
        return sorted(rows, key=lambda t: t.tmodel_key)

    def find_related_businesses(self, business_key: str) -> list[str]:
        """Mutually asserted relationships, resolved over the union of
        every shard's assertions (the two directions of one
        relationship can live on two shards)."""
        forward = {(a.from_key, a.to_key, a.relationship)
                   for shard in self._shards
                   for a in shard.assertions()}
        related: set[str] = set()
        for from_key, to_key, relationship in forward:
            if (to_key, from_key, relationship) not in forward:
                continue
            if from_key == business_key:
                related.add(to_key)
            elif to_key == business_key:
                related.add(from_key)
        return sorted(related)

    # -- state fingerprinting ---------------------------------------------

    def state_digest(self) -> str:
        """Digest over the union of all shards, byte-identical to a
        monolithic registry holding the same content."""
        parts = [pair for shard in self._shards
                 for pair in shard.state_parts()]
        parts.sort(key=lambda pair: pair[0])
        ordered = [part for _, part in parts]
        return combine(*ordered) if ordered else \
            sha256_hex("empty-registry")

    # -- enumeration / telemetry ------------------------------------------

    def business_keys(self) -> list[str]:
        keys = [key for shard in self._shards
                for key in shard.business_keys()]
        return sorted(keys)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    @property
    def inquiry_count(self) -> int:
        return sum(shard.inquiry_count for shard in self._shards)

    @property
    def publish_count(self) -> int:
        return sum(shard.publish_count for shard in self._shards)

    def spread(self) -> dict[int, int]:
        """Businesses-per-shard histogram (balance diagnostics)."""
        return {index: len(shard)
                for index, shard in enumerate(self._shards)
                if len(shard)}
