"""Hash-sharded XML document store.

Documents are routed by ``doc_id`` over the consistent-hash ring; each
shard is a plain :class:`~repro.xmldb.database.Collection`, so insert,
validation, and point lookups touch exactly one shard.  Queries compile
the XPath **once** and scatter the compiled form to every shard
(optionally on a thread pool), then gather with a stable merge:

    unsharded ``Collection.query`` iterates documents in sorted-doc-id
    order and, within a document, in evaluation order.  The sharded
    gather therefore sorts the flattened per-shard results by doc id —
    Python's sort is stable, so within one document the shard's own
    evaluation order survives — and the merged list is **equal** to the
    monolithic result.  That equality is the store's equivalence oracle
    in the bench and the determinism suite.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterator

from repro.core.errors import ConfigurationError, QueryError
from repro.scale.router import ConsistentHashRouter
from repro.xmldb.database import Collection
from repro.xmldb.dtd import Schema, Violation
from repro.xmldb.model import Document, Element
from repro.xmldb.xpath import XPath, compile_xpath


class ShardedCollection:
    """One logical collection, hash-partitioned by document id."""

    def __init__(self, name: str, shard_count: int = 4,
                 schema: Schema | None = None,
                 executor: ThreadPoolExecutor | None = None) -> None:
        self.name = name
        self.shard_count = shard_count
        self.router = ConsistentHashRouter(shard_count)
        self._shards = tuple(Collection(f"{name}-s{index}", schema)
                             for index in range(shard_count))
        self._executor = executor

    # -- routing ----------------------------------------------------------

    def shard_index(self, doc_id: str) -> int:
        return self.router.shard_for(doc_id)

    def shard(self, index: int) -> Collection:
        return self._shards[index]

    def shard_of(self, doc_id: str) -> Collection:
        return self._shards[self.shard_index(doc_id)]

    # -- document lifecycle ------------------------------------------------

    def insert(self, doc_id: str, document: Document | str) -> Document:
        return self.shard_of(doc_id).insert(doc_id, document)

    def get(self, doc_id: str) -> Document:
        return self.shard_of(doc_id).get(doc_id)

    def delete(self, doc_id: str) -> Document:
        return self.shard_of(doc_id).delete(doc_id)

    def replace(self, doc_id: str, document: Document | str) -> Document:
        return self.shard_of(doc_id).replace(doc_id, document)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self.shard_of(doc_id)

    def doc_ids(self) -> list[str]:
        ids: list[str] = []
        for shard in self._shards:
            ids.extend(shard.doc_ids())
        return sorted(ids)

    def documents(self) -> Iterator[tuple[str, Document]]:
        for doc_id in self.doc_ids():
            yield doc_id, self.get(doc_id)

    # -- query -------------------------------------------------------------

    def query(self, xpath: XPath | str) -> list[tuple[str, Element | str]]:
        """Evaluate *xpath* over every shard; merged, monolithic-equal.

        Compiled once here, not once per shard — the scatter ships the
        compiled object, so N shards cost one parse.
        """
        compiled = xpath if isinstance(xpath, XPath) else \
            compile_xpath(xpath)
        if self._executor is not None and self.shard_count > 1:
            chunks = list(self._executor.map(
                lambda shard: shard.query(compiled), self._shards))
        else:
            chunks = [shard.query(compiled) for shard in self._shards]
        flattened = [pair for chunk in chunks for pair in chunk]
        # Stable sort by doc id: per-document evaluation order (the
        # shard's own ordering) survives, so the merge equals the
        # unsharded Collection.query result exactly.
        flattened.sort(key=lambda pair: pair[0])
        return flattened

    def validate_all(self) -> list[tuple[str, Violation]]:
        failures: list[tuple[str, Violation]] = []
        for shard in self._shards:
            failures.extend(shard.validate_all())
        return sorted(failures, key=lambda pair: pair[0])

    def spread(self) -> dict[int, int]:
        """Documents-per-shard histogram (balance diagnostics)."""
        return {index: len(shard)
                for index, shard in enumerate(self._shards)
                if len(shard)}


class ShardedXmlDatabase:
    """Named sharded collections plus a metadata catalog.

    Mirrors :class:`~repro.xmldb.database.XmlDatabase`'s surface so the
    gateway and benchmarks can swap the two without touching call
    sites; metadata stays un-sharded (it is catalog state, tiny and
    mutated rarely).
    """

    def __init__(self, name: str = "xmldb", shard_count: int = 4,
                 executor: ThreadPoolExecutor | None = None) -> None:
        self.name = name
        self.shard_count = shard_count
        self._collections: dict[str, ShardedCollection] = {}
        self._metadata: dict[str, dict[str, object]] = {}
        self._executor = executor

    def create_collection(self, name: str,
                          schema: Schema | None = None) -> ShardedCollection:
        if name in self._collections:
            raise ConfigurationError(f"collection {name!r} already exists")
        collection = ShardedCollection(name, self.shard_count, schema,
                                       self._executor)
        self._collections[name] = collection
        self._metadata[name] = {}
        return collection

    def collection(self, name: str) -> ShardedCollection:
        try:
            return self._collections[name]
        except KeyError:
            raise QueryError(f"no collection {name!r}") from None

    def drop_collection(self, name: str) -> None:
        self.collection(name)
        del self._collections[name]
        del self._metadata[name]

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def set_metadata(self, collection: str, key: str, value: object) -> None:
        self.collection(collection)
        self._metadata[collection][key] = value

    def get_metadata(self, collection: str, key: str,
                     default: object = None) -> object:
        self.collection(collection)
        return self._metadata[collection].get(key, default)

    def query(self, collection: str,
              xpath: XPath | str) -> list[tuple[str, Element | str]]:
        return self.collection(collection).query(xpath)

    def total_documents(self) -> int:
        return sum(len(c) for c in self._collections.values())
