"""Hash-sharded relational store: N databases behind one facade.

Tables are routed by name over the consistent-hash ring, so each shard
is a complete :class:`~repro.relational.database.Database` — catalog,
metadata, and its *own* System R authorization manager.  That last
point is the scaling win beyond raw partitioning: each shard's grant
graph has its own generation counter, so a GRANT/REVOKE on shard A's
tables leaves every warm privilege/restriction cache entry on shard B
valid (the shard-aware invalidation regression test pins this).

Cross-shard work goes through :meth:`scatter`, which reuses the thread
-pool pattern of the parallel dissemination packager: results come back
in shard order regardless of completion order, so scatter-gather output
is deterministic.  Locking for multi-shard transactions uses a
:class:`~repro.relational.locks.StripedLockManager` with one stripe per
shard — disjoint shards never contend on a global lock structure.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping, Sequence, TypeVar

from repro.core.errors import QueryError
from repro.relational.authorization import (
    AuthorizationManager,
    Grant,
    Privilege,
)
from repro.relational.database import Database, RowPredicate
from repro.relational.locks import StripedLockManager
from repro.relational.query import ResultSet, join as query_join
from repro.relational.table import Table, TableSchema
from repro.scale.router import ConsistentHashRouter

T = TypeVar("T")


class ShardedDatabase:
    """A catalog of tables hash-partitioned across N databases."""

    def __init__(self, shard_count: int = 4, name: str = "db",
                 executor: ThreadPoolExecutor | None = None) -> None:
        self.name = name
        self.shard_count = shard_count
        self.router = ConsistentHashRouter(shard_count)
        self._shards = tuple(Database(f"{name}-s{index}")
                             for index in range(shard_count))
        # One lock stripe per shard: transactions on different shards
        # take different stripes and never serialize on each other.
        self.locks = StripedLockManager(stripes=shard_count)
        # Not owned: callers share one pool across stores (the gateway
        # passes its worker pool).  None means scatter runs serially.
        self._executor = executor

    # -- routing ----------------------------------------------------------

    def shard_index(self, table: str) -> int:
        return self.router.shard_for(table)

    def shard(self, index: int) -> Database:
        return self._shards[index]

    def shard_of(self, table: str) -> Database:
        return self._shards[self.shard_index(table)]

    def authorization_for(self, table: str) -> AuthorizationManager:
        """The (per-shard) grant graph governing *table*."""
        return self.shard_of(table).authorization

    # -- catalog ----------------------------------------------------------

    def create_table(self, table_schema: TableSchema,
                     owner: str) -> Table:
        return self.shard_of(table_schema.name).create_table(
            table_schema, owner)

    def table(self, name: str) -> Table:
        return self.shard_of(name).table(name)

    def table_names(self) -> list[str]:
        names: list[str] = []
        for shard in self._shards:
            names.extend(shard.table_names())
        return sorted(names)

    def set_metadata(self, table: str, key: str, value: object) -> None:
        self.shard_of(table).set_metadata(table, key, value)

    def get_metadata(self, table: str, key: str,
                     default: object = None) -> object:
        return self.shard_of(table).get_metadata(table, key, default)

    # -- authorization administration ------------------------------------

    def grant(self, grantor: str, grantee: str, table: str,
              privilege: Privilege, with_grant_option: bool = False,
              row_filter: RowPredicate | None = None,
              column_mask: Sequence[str] = ()) -> Grant:
        return self.authorization_for(table).grant(
            grantor, grantee, table, privilege, with_grant_option,
            row_filter, column_mask)

    def revoke(self, revoker: str, grantee: str, table: str,
               privilege: Privilege) -> list[Grant]:
        return self.authorization_for(table).revoke(
            revoker, grantee, table, privilege)

    # -- secure data access ----------------------------------------------

    def insert(self, user: str, table_name: str, **values: object) -> None:
        self.shard_of(table_name).insert(user, table_name, **values)

    def select(self, user: str, table_name: str,
               columns: Sequence[str] | None = None,
               where: RowPredicate | None = None,
               order_by: str | None = None,
               limit: int | None = None) -> ResultSet:
        return self.shard_of(table_name).select(
            user, table_name, columns, where, order_by, limit)

    def update(self, user: str, table_name: str,
               where: RowPredicate, changes: Mapping[str, object]) -> int:
        return self.shard_of(table_name).update(user, table_name, where,
                                                changes)

    def delete(self, user: str, table_name: str,
               where: RowPredicate) -> int:
        return self.shard_of(table_name).delete(user, table_name, where)

    def join(self, user: str, left_name: str, right_name: str,
             on: tuple[str, str],
             columns: Sequence[str] | None = None,
             where: RowPredicate | None = None) -> ResultSet:
        """Join across shards: each side's privileges and restrictions
        are enforced by its own shard's grant graph."""
        left_auth = self.authorization_for(left_name)
        right_auth = self.authorization_for(right_name)
        left_auth.enforce(user, left_name, Privilege.SELECT)
        right_auth.enforce(user, right_name, Privilege.SELECT)
        left_filter, _ = left_auth.restriction(user, left_name,
                                               Privilege.SELECT)
        right_filter, _ = right_auth.restriction(user, right_name,
                                                 Privilege.SELECT)
        return query_join(self.table(left_name), self.table(right_name),
                          on, columns, where,
                          left_filter=left_filter,
                          right_filter=right_filter)

    # -- scatter-gather ---------------------------------------------------

    def scatter(self, job: Callable[[Database], T]) -> list[T]:
        """Run *job* against every shard; results in shard order.

        With an executor, shards run concurrently but the gather is
        still ordered by shard index — completion order never leaks
        into results.
        """
        if self._executor is not None and self.shard_count > 1:
            return list(self._executor.map(job, self._shards))
        return [job(shard) for shard in self._shards]

    def select_many(self, user: str, table_names: Sequence[str],
                    columns: Sequence[str] | None = None,
                    where: RowPredicate | None = None
                    ) -> list[tuple[str, ResultSet]]:
        """SELECT over several tables, grouped by shard and gathered in
        table-name order (deterministic regardless of executor timing)."""
        for name in table_names:
            # Enforce before any data moves: a denied table fails the
            # whole request up front, never a partial gather.
            self.authorization_for(name).enforce(user, name,
                                                 Privilege.SELECT)
        by_shard: dict[int, list[str]] = {}
        for name in table_names:
            by_shard.setdefault(self.shard_index(name), []).append(name)

        def run(index: int) -> list[tuple[str, ResultSet]]:
            shard = self._shards[index]
            return [(name, shard.select(user, name, columns, where))
                    for name in by_shard[index]]

        shard_indices = sorted(by_shard)
        if self._executor is not None and len(shard_indices) > 1:
            chunks = list(self._executor.map(run, shard_indices))
        else:
            chunks = [run(index) for index in shard_indices]
        gathered = [pair for chunk in chunks for pair in chunk]
        return sorted(gathered, key=lambda pair: pair[0])

    def total_rows(self) -> int:
        return sum(len(shard.table(name))
                   for shard in self._shards
                   for name in shard.table_names())

    def generation_stamps(self) -> tuple[int, ...]:
        """Per-shard authorization generations — the shard-aware cache
        stamp: a write to one shard changes exactly one entry."""
        return tuple(shard.authorization.generation
                     for shard in self._shards)

    def require_table(self, name: str) -> Table:
        table = self.table(name)
        if table is None:  # pragma: no cover - Database.table raises
            raise QueryError(f"no table {name!r}")
        return table
