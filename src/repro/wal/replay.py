"""Recovery: scan shard logs in parallel, replay one merged history.

The expensive part of recovery — mapping segments, verifying every
frame checksum, decoding bodies — is embarrassingly parallel across
shards, so :func:`recover` fans shard scans out over worker processes
(same discipline as ``repro.multicore``: a module-level worker function
re-opening the store root by path, results shipped back as picklable
tuples).  The *application* of recovered records stays strictly
sequential in LSN order: shards share one LSN space precisely so that
cross-shard operations (a registry delete purging assertions on other
shards) replay in the order writers produced them.

Per-shard invariants enforced while scanning:

* segment indices are contiguous — checkpoint truncation removes a
  prefix, so a gap in the middle means a *missing segment* and raises
  :class:`~repro.core.errors.WalCorrupt`;
* only the final segment may be torn; a torn tail there is truncated
  at the last valid frame (fail closed — those bytes were never
  acknowledged), while torn earlier segments are corruption;
* LSNs increase strictly across the whole shard chain.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from dataclasses import dataclass, field

from repro.core.errors import WalCorrupt
from repro.wal.format import HEADER_SIZE, parse_segment_name, scan_segment
from repro.wal.vfs import OsVfs


@dataclass
class ShardScan:
    """One shard's recovered records plus the scan's side findings."""

    shard: int
    records: list[tuple[int, bytes]]          # (lsn, payload), ordered
    truncate: tuple[str, int] | None = None   # torn tail to cut
    segments: int = 0
    bytes_scanned: int = 0


def scan_shard(vfs, shard: int) -> ShardScan:
    """Scan one shard's full segment chain (no side effects)."""
    found = sorted(
        (parsed[1], name) for name in vfs.listdir()
        if (parsed := parse_segment_name(name)) is not None
        and parsed[0] == shard)
    scan = ShardScan(shard, [])
    last_lsn = -1
    for position, (index, name) in enumerate(found):
        if position > 0 and index != found[position - 1][0] + 1:
            raise WalCorrupt(
                f"shard {shard} segment chain jumps from index "
                f"{found[position - 1][0]} to {index}: missing segment",
                shard=shard, segment=name)
        if vfs.size(name) < HEADER_SIZE:
            # A crash can tear a freshly-rotated segment mid-header
            # (header and first batch fsync together): lawful only at
            # the very end of the chain, where nothing in it was ever
            # acknowledged.
            if position != len(found) - 1:
                raise WalCorrupt(
                    f"non-final segment {name} shorter than its header",
                    shard=shard, segment=name, offset=0)
            scan.truncate = (name, 0)
            scan.segments += 1
            scan.bytes_scanned += vfs.size(name)
            continue
        with vfs.open_map(name) as mapped:
            result = scan_segment(mapped.view, name, expect_shard=shard)
        if result.torn:
            if position != len(found) - 1:
                raise WalCorrupt(
                    f"non-final segment {name} has a torn tail — "
                    f"damage to possibly-acknowledged data",
                    shard=shard, segment=name, offset=result.valid_end)
            scan.truncate = (name, result.valid_end)
        for frame in result.frames:
            if frame.lsn <= last_lsn:
                raise WalCorrupt(
                    f"shard {shard} LSN {frame.lsn} in {name} not "
                    f"above predecessor {last_lsn}",
                    shard=shard, segment=name)
            last_lsn = frame.lsn
            scan.records.append((frame.lsn, frame.payload))
        scan.segments += 1
        scan.bytes_scanned += result.total
    return scan


def _scan_shard_by_path(root: str, shard: int) -> ShardScan:
    """Worker-process entry point: reopen the store by path and scan."""
    return scan_shard(OsVfs(root), shard)


@dataclass
class RecoveryResult:
    """Everything :func:`recover` learned, ready to apply in order."""

    records: list[tuple[int, bytes]]   # merged, strictly LSN-ascending
    last_lsn: int = 0
    truncated: list[tuple[str, int]] = field(default_factory=list)
    segments: int = 0
    bytes_scanned: int = 0
    parallel: bool = False


def _merge(scans: list[ShardScan], from_lsn: int) -> RecoveryResult:
    merged: list[tuple[int, bytes]] = []
    for scan in scans:
        merged.extend(r for r in scan.records if r[0] > from_lsn)
    merged.sort(key=lambda record: record[0])
    for i in range(1, len(merged)):
        if merged[i][0] == merged[i - 1][0]:
            raise WalCorrupt(
                f"LSN {merged[i][0]} appears on two shards — the log's "
                f"global sequence is damaged")
    result = RecoveryResult(merged)
    result.last_lsn = merged[-1][0] if merged else from_lsn
    for scan in scans:
        if scan.truncate is not None:
            result.truncated.append(scan.truncate)
        result.segments += scan.segments
        result.bytes_scanned += scan.bytes_scanned
    return result


def recover(vfs, shards: int, *, from_lsn: int = 0,
            workers: int | None = None,
            apply_truncation: bool = True) -> RecoveryResult:
    """Scan every shard (in parallel where the vfs allows it), merge by
    LSN, and optionally apply fail-closed torn-tail truncation.

    *workers* > 1 fans shard scans out over processes; it requires a
    real :class:`OsVfs` (workers reopen the directory by path) and the
    ``fork`` start method.  Anything else scans sequentially — same
    code, same result, one process.
    """
    can_fork = "fork" in multiprocessing.get_all_start_methods()
    use_processes = (workers is not None and workers > 1
                     and isinstance(vfs, OsVfs) and can_fork
                     and shards > 1)
    if use_processes:
        context = multiprocessing.get_context("fork")
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, shards),
                mp_context=context) as pool:
            scans = list(pool.map(_scan_shard_by_path,
                                  [str(vfs.root)] * shards,
                                  range(shards)))
    else:
        scans = [scan_shard(vfs, shard) for shard in range(shards)]
    result = _merge(scans, from_lsn)
    result.parallel = use_processes
    if apply_truncation:
        for name, offset in result.truncated:
            if offset < HEADER_SIZE:
                # A tail torn mid-header holds nothing; truncating it
                # to zero would leave an empty file that sits mid-chain
                # once the recovered store appends higher-index
                # segments, failing every later recovery's
                # shorter-than-header check.  Delete it instead.
                vfs.delete(name)
            else:
                vfs.truncate(name, offset)
    return result
