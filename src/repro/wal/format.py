"""On-disk format of the write-ahead log.

Segment file (``seg-SSS-IIIIIIII.wal``, shard ``SSS``, sequence
``IIIIIIII``)::

    header (24 bytes):
        !4s  magic  b"RWAL"
        !H   format version (1)
        !B   checksum algorithm id (repro.wal.checksum.ALGORITHMS)
        !B   reserved (0)
        !I   shard index
        !Q   base LSN (last LSN allocated before this segment opened;
             diagnostic — recovery trusts the frames, not the header)
        !I   checksum over the 20 bytes above
    frame (repeated)::
        !I   body length (9 + payload length)
        !I   checksum over body
        body:
            !Q  LSN (globally allocated; strictly increasing per shard)
            !B  record type (1 = RECORD)
            payload bytes

Torn tail vs corruption — the call recovery has to get right:

* A **torn tail** is the legitimate artifact of a crash between write
  and fsync: a partial or checksum-invalid frame at the very end of the
  *last* segment with **no valid frame after it**.  The log is
  truncated at the last valid frame (fail closed: those bytes were
  never acknowledged).
* Everything else — an invalid frame *followed by* a recoverable valid
  frame (found by bounded forward resync), damage in a non-final
  segment, an LSN running backwards — is **corruption** of data that
  may have been acknowledged, and raises
  :class:`~repro.core.errors.WalCorrupt` instead of silently dropping
  records.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.errors import WalCorrupt
from repro.wal.checksum import algorithm_id, checksum_fn

MAGIC = b"RWAL"
FORMAT_VERSION = 1

_HEADER = struct.Struct("!4sHBBIQ")
_HEADER_CRC = struct.Struct("!I")
HEADER_SIZE = _HEADER.size + _HEADER_CRC.size  # 24

_FRAME_HEAD = struct.Struct("!II")
_BODY_HEAD = struct.Struct("!QB")
FRAME_OVERHEAD = _FRAME_HEAD.size + _BODY_HEAD.size  # 17

RECORD = 1
_RECORD_TYPES = frozenset({RECORD})

#: A single logical record larger than this is refused at append time,
#: and a length field claiming more is treated as damage at scan time.
MAX_RECORD_BYTES = 64 * 1024 * 1024
#: How far past a bad frame the resync probe searches for a valid
#: frame before concluding the damage is a torn tail.
RESYNC_WINDOW = 64 * 1024


def segment_name(shard: int, index: int) -> str:
    return f"seg-{shard:03d}-{index:08d}.wal"


def parse_segment_name(name: str) -> tuple[int, int] | None:
    """(shard, index) for a segment file name, else None."""
    if not (name.startswith("seg-") and name.endswith(".wal")):
        return None
    parts = name[4:-4].split("-")
    if len(parts) != 2 or not all(p.isdigit() for p in parts):
        return None
    return int(parts[0]), int(parts[1])


def encode_segment_header(shard: int, base_lsn: int,
                          algorithm: str) -> bytes:
    alg_id = algorithm_id(algorithm)
    head = _HEADER.pack(MAGIC, FORMAT_VERSION, alg_id, 0, shard,
                        base_lsn)
    return head + _HEADER_CRC.pack(checksum_fn(alg_id)(head))


@dataclass(frozen=True)
class SegmentHeader:
    shard: int
    base_lsn: int
    algorithm_id: int


def decode_segment_header(data: bytes | memoryview,
                          name: str = "?") -> SegmentHeader:
    if len(data) < HEADER_SIZE:
        raise WalCorrupt("segment shorter than its header",
                         segment=name, offset=0)
    magic, version, alg_id, _, shard, base_lsn = _HEADER.unpack_from(
        data, 0)
    if magic != MAGIC:
        raise WalCorrupt(f"bad segment magic {bytes(magic)!r}",
                         segment=name, offset=0)
    if version != FORMAT_VERSION:
        raise WalCorrupt(f"unsupported segment format version {version}",
                         segment=name, offset=0)
    fn = checksum_fn(alg_id)  # raises WalCorrupt on unknown id
    (stored,) = _HEADER_CRC.unpack_from(data, _HEADER.size)
    if fn(bytes(data[:_HEADER.size])) != stored:
        raise WalCorrupt("segment header failed its checksum",
                         segment=name, offset=0, shard=shard)
    return SegmentHeader(shard, base_lsn, alg_id)


def encode_frame(lsn: int, payload: bytes, algorithm_id_: int,
                 rectype: int = RECORD) -> bytes:
    if len(payload) > MAX_RECORD_BYTES:
        raise WalCorrupt(
            f"record of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte frame bound")
    body = _BODY_HEAD.pack(lsn, rectype) + payload
    crc = checksum_fn(algorithm_id_)(body)
    return _FRAME_HEAD.pack(len(body), crc) + body


@dataclass(frozen=True)
class Frame:
    lsn: int
    rectype: int
    payload: bytes


@dataclass(frozen=True)
class ScanResult:
    """One segment's valid frames plus how its tail ended."""

    frames: tuple[Frame, ...]
    valid_end: int       # offset just past the last valid frame
    torn: bool           # bytes past valid_end that look like a crash
    total: int           # bytes scanned (header included)


def _frame_at(view: memoryview, offset: int, end: int, fn) -> Frame | None:
    """Decode and verify the frame at *offset*; None if implausible or
    checksum-invalid (the caller decides torn-vs-corrupt)."""
    if offset + _FRAME_HEAD.size > end:
        return None
    length, stored = _FRAME_HEAD.unpack_from(view, offset)
    if (length < _BODY_HEAD.size
            or length > MAX_RECORD_BYTES + _BODY_HEAD.size
            or offset + _FRAME_HEAD.size + length > end):
        return None
    body = view[offset + _FRAME_HEAD.size:
                offset + _FRAME_HEAD.size + length]
    lsn, rectype = _BODY_HEAD.unpack_from(body, 0)
    if rectype not in _RECORD_TYPES:
        return None
    if fn(body) != stored:
        return None
    return Frame(lsn, rectype, bytes(body[_BODY_HEAD.size:]))


def _resyncs(view: memoryview, start: int, end: int, fn,
             after_lsn: int) -> bool:
    """Is there any valid frame with a later LSN within the resync
    window past *start*?  True means the damage sits in front of live
    data — corruption, not a torn tail."""
    limit = min(end, start + RESYNC_WINDOW)
    for offset in range(start + 1, limit):
        frame = _frame_at(view, offset, end, fn)
        if frame is not None and frame.lsn > after_lsn:
            return True
    return False


def scan_segment(data: bytes | memoryview, name: str = "?",
                 expect_shard: int | None = None) -> ScanResult:
    """Verify and decode every frame of one segment.

    Raises :class:`WalCorrupt` for damage that cannot be a torn tail;
    reports a torn tail through :attr:`ScanResult.torn` and leaves the
    truncation decision to the caller (only the *last* segment of a
    shard may lawfully be torn).
    """
    view = memoryview(data)
    header = decode_segment_header(view, name)
    if expect_shard is not None and header.shard != expect_shard:
        raise WalCorrupt(
            f"segment belongs to shard {header.shard}, expected "
            f"{expect_shard}", segment=name, shard=header.shard)
    fn = checksum_fn(header.algorithm_id)
    end = len(view)
    frames: list[Frame] = []
    offset = HEADER_SIZE
    last_lsn = -1
    while offset < end:
        frame = _frame_at(view, offset, end, fn)
        if frame is None:
            if _resyncs(view, offset, end, fn, last_lsn):
                raise WalCorrupt(
                    "invalid frame followed by recoverable frames — "
                    "damage to possibly-acknowledged data",
                    segment=name, offset=offset, shard=header.shard)
            return ScanResult(tuple(frames), offset, True, end)
        if frame.lsn <= last_lsn:
            raise WalCorrupt(
                f"LSN {frame.lsn} not above predecessor {last_lsn}",
                segment=name, offset=offset, shard=header.shard)
        frames.append(frame)
        last_lsn = frame.lsn
        offset += _FRAME_HEAD.size + _BODY_HEAD.size + len(frame.payload)
    return ScanResult(tuple(frames), offset, False, end)
