"""Incremental checkpoints: bounded recovery for an unbounded log.

A checkpoint is one file holding a serialized store snapshot, the LSN
it covers, and the store's state digest at that LSN.  Recovery loads
the newest valid checkpoint and replays only the log suffix past its
LSN; the log prefix it covers is truncated, so recovery work is
bounded by the checkpoint interval rather than by history length.

Checkpoints are *incremental* in the digest-keyed sense: a store's
snapshot digest (Merkle root, compiled-policy digest, relational state
hash) names its content, so writing a checkpoint whose digest equals
the newest one on disk is skipped entirely — an idle store checkpoints
for free.  Writes are atomic — serialize to a temp name, sync, rename
over (the vfs fsyncs the directory entry) — so a crash mid-checkpoint
leaves the previous checkpoint untouched, never a half file under the
real name.

File layout (``ckpt-LLLLLLLLLLLLLLLL.rckp``)::

    !4s  magic b"RCKP"
    !H   version (1)
    !B   checksum algorithm id
    !B   reserved
    !Q   checkpoint LSN
    !I   digest length | digest bytes (utf-8)
    !I   payload length | payload bytes (pickled snapshot)
    !I   checksum over everything above
"""

from __future__ import annotations

import struct

from repro.core.errors import WalCorrupt
from repro.wal.checksum import DEFAULT_ALGORITHM, algorithm_id, checksum_fn

MAGIC = b"RCKP"
FORMAT_VERSION = 1

_HEAD = struct.Struct("!4sHBBQ")
_LEN = struct.Struct("!I")


def checkpoint_name(lsn: int) -> str:
    return f"ckpt-{lsn:016d}.rckp"


def parse_checkpoint_name(name: str) -> int | None:
    if not (name.startswith("ckpt-") and name.endswith(".rckp")):
        return None
    digits = name[5:-5]
    return int(digits) if digits.isdigit() else None


def encode_checkpoint(lsn: int, digest: str, payload: bytes,
                      algorithm: str = DEFAULT_ALGORITHM) -> bytes:
    alg_id = algorithm_id(algorithm)
    digest_bytes = digest.encode("utf-8")
    body = (_HEAD.pack(MAGIC, FORMAT_VERSION, alg_id, 0, lsn)
            + _LEN.pack(len(digest_bytes)) + digest_bytes
            + _LEN.pack(len(payload)) + payload)
    return body + _LEN.pack(checksum_fn(alg_id)(body))


def decode_checkpoint(data: bytes, name: str = "?") -> tuple[int, str, bytes]:
    """(lsn, digest, payload); raises WalCorrupt on any damage."""
    if len(data) < _HEAD.size + 3 * _LEN.size:
        raise WalCorrupt("checkpoint file truncated", segment=name)
    magic, version, alg_id, _, lsn = _HEAD.unpack_from(data, 0)
    if magic != MAGIC:
        raise WalCorrupt(f"bad checkpoint magic {bytes(magic)!r}",
                         segment=name)
    if version != FORMAT_VERSION:
        raise WalCorrupt(f"unsupported checkpoint version {version}",
                         segment=name)
    fn = checksum_fn(alg_id)
    body, stored_raw = data[:-_LEN.size], data[-_LEN.size:]
    (stored,) = _LEN.unpack(stored_raw)
    if fn(body) != stored:
        raise WalCorrupt("checkpoint failed its checksum", segment=name)
    offset = _HEAD.size
    (digest_len,) = _LEN.unpack_from(body, offset)
    offset += _LEN.size
    digest = body[offset:offset + digest_len].decode("utf-8")
    offset += digest_len
    (payload_len,) = _LEN.unpack_from(body, offset)
    offset += _LEN.size
    payload = body[offset:offset + payload_len]
    if len(payload) != payload_len:
        raise WalCorrupt("checkpoint payload truncated", segment=name)
    return lsn, digest, bytes(payload)


class CheckpointStore:
    """Atomic, digest-keyed checkpoint files in one vfs directory."""

    def __init__(self, vfs, algorithm: str = DEFAULT_ALGORITHM) -> None:
        self.vfs = vfs
        self.algorithm = algorithm
        self.written = 0
        self.skipped = 0

    def _names(self) -> list[tuple[int, str]]:
        found = [(lsn, name) for name in self.vfs.listdir()
                 if (lsn := parse_checkpoint_name(name)) is not None]
        return sorted(found)

    def latest_digest(self) -> str | None:
        names = self._names()
        if not names:
            return None
        try:
            _, digest, _ = decode_checkpoint(
                self.vfs.read_bytes(names[-1][1]), names[-1][1])
        except WalCorrupt:
            return None
        return digest

    def write(self, lsn: int, digest: str, payload: bytes) -> bool:
        """Persist a checkpoint; returns False when skipped because the
        newest checkpoint already carries this digest (nothing changed
        since — the incremental fast path)."""
        if self.latest_digest() == digest:
            self.skipped += 1
            return False
        name = checkpoint_name(lsn)
        temp = name + ".tmp"
        if self.vfs.exists(temp):
            self.vfs.delete(temp)
        handle = self.vfs.create(temp)
        handle.write(encode_checkpoint(lsn, digest, payload,
                                       self.algorithm))
        handle.sync()
        handle.close()
        self.vfs.rename(temp, name)
        self.written += 1
        return True

    def latest(self) -> tuple[int, str, bytes] | None:
        """The newest checkpoint, fully verified.

        A corrupt *newest* checkpoint raises :class:`WalCorrupt` — it
        may cover truncated log, so silently falling back to an older
        one (or none) could replay into a hole.  Fail closed and let
        the operator decide.
        """
        names = self._names()
        if not names:
            return None
        lsn, name = names[-1]
        decoded = decode_checkpoint(self.vfs.read_bytes(name), name)
        if decoded[0] != lsn:
            raise WalCorrupt(
                f"checkpoint {name} claims LSN {decoded[0]}, file name "
                f"says {lsn}", segment=name)
        return decoded

    def prune(self, keep: int = 1) -> int:
        """Delete all but the newest *keep* checkpoints."""
        names = self._names()
        removed = 0
        for _, name in names[:-keep] if keep else names:
            self.vfs.delete(name)
            removed += 1
        return removed
