"""Filesystem abstraction under the write-ahead log.

Two implementations share one small surface so every layer above
(segments, group commit, checkpoints, recovery) is tested against both:

* :class:`OsVfs` — real files.  ``sync()`` is ``flush`` + ``os.fsync``;
  metadata operations (create/rename/delete) fsync the parent
  directory, so an atomically-renamed checkpoint cannot evaporate with
  the directory entry.  Recovery reads map segments with :mod:`mmap`.
* :class:`MemVfs` — the *power-loss model* the chaos battery drives.
  Writes land in a pending buffer; ``sync()`` moves pending bytes into
  the durable image; :meth:`MemVfs.crash` discards everything pending —
  optionally keeping a byte-exact prefix of one file's pending tail,
  which is precisely a torn write.  A real SIGKILL cannot simulate
  power loss (the page cache survives process death), so the in-memory
  model is what makes the 60-seed kill-and-recover battery honest about
  "nothing unsynced survives".

Paths are plain ``/``-joined strings relative to the vfs root; the WAL
only ever uses one flat directory per store.
"""

from __future__ import annotations

import io
import mmap
import os
import pathlib

from repro.core.errors import WalError


class MappedBytes:
    """A read mapping of one file: ``.view`` plus ``close()``."""

    def __init__(self, view: memoryview, mapping: mmap.mmap | None = None,
                 handle: io.IOBase | None = None) -> None:
        self.view = view
        self._mapping = mapping
        self._handle = handle

    def close(self) -> None:
        self.view.release()
        if self._mapping is not None:
            self._mapping.close()
        if self._handle is not None:
            self._handle.close()

    def __enter__(self) -> "MappedBytes":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- real files ---------------------------------------------------------


class OsWalFile:
    """Append handle over a real file; ``sync`` is the durability
    barrier (buffered flush, then ``os.fsync``)."""

    def __init__(self, path: pathlib.Path) -> None:
        self._handle = open(path, "xb")  # lint: allow=LINT-UNFSYNCED
        self._size = 0

    def write(self, data: bytes | memoryview) -> None:
        self._handle.write(data)
        self._size += len(data)

    def sync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def tell(self) -> int:
        return self._size

    def close(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()


class OsVfs:
    """Real files rooted at *root*, with directory-entry fsyncs."""

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._sync_dir()

    def _sync_dir(self) -> None:
        fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def create(self, name: str) -> OsWalFile:
        handle = OsWalFile(self.root / name)
        self._sync_dir()
        return handle

    def open_map(self, name: str) -> MappedBytes:
        path = self.root / name
        handle = open(path, "rb")
        if os.path.getsize(path) == 0:
            handle.close()
            return MappedBytes(memoryview(b""))
        mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        return MappedBytes(memoryview(mapping), mapping, handle)

    def read_bytes(self, name: str) -> bytes:
        return (self.root / name).read_bytes()

    def exists(self, name: str) -> bool:
        return (self.root / name).exists()

    def size(self, name: str) -> int:
        return os.path.getsize(self.root / name)

    def listdir(self) -> list[str]:
        return sorted(p.name for p in self.root.iterdir() if p.is_file())

    def delete(self, name: str) -> None:
        (self.root / name).unlink()
        self._sync_dir()

    def rename(self, source: str, target: str) -> None:
        os.replace(self.root / source, self.root / target)
        self._sync_dir()

    def truncate(self, name: str, size: int) -> None:
        with open(self.root / name, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())
        self._sync_dir()


# -- the power-loss model ------------------------------------------------


class _MemFile:
    __slots__ = ("durable", "pending")

    def __init__(self) -> None:
        self.durable = bytearray()
        self.pending = bytearray()

    def image(self) -> bytes:
        return bytes(self.durable) + bytes(self.pending)


class MemWalFile:
    def __init__(self, backing: _MemFile) -> None:
        self._backing = backing
        self._closed = False

    def write(self, data: bytes | memoryview) -> None:
        if self._closed:
            raise WalError("write to a closed wal file")
        self._backing.pending += data

    def sync(self) -> None:
        self._backing.durable += self._backing.pending
        self._backing.pending = bytearray()

    def tell(self) -> int:
        return len(self._backing.durable) + len(self._backing.pending)

    def close(self) -> None:
        self.sync()
        self._closed = True


class MemVfs:
    """In-memory files with an explicit durable/pending boundary.

    Reads (``open_map``/``read_bytes``) see the *full* image —
    durable + pending — matching a live process reading its own
    page-cached writes.  Only :meth:`crash` collapses the view to the
    durable prefix, which is what survives power loss.
    """

    def __init__(self) -> None:
        self._files: dict[str, _MemFile] = {}

    def create(self, name: str) -> MemWalFile:
        if name in self._files:
            raise WalError(f"file {name!r} already exists")
        backing = _MemFile()
        self._files[name] = backing
        return MemWalFile(backing)

    def _file(self, name: str) -> _MemFile:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(name) from None

    def open_map(self, name: str) -> MappedBytes:
        return MappedBytes(memoryview(self._file(name).image()))

    def read_bytes(self, name: str) -> bytes:
        return self._file(name).image()

    def exists(self, name: str) -> bool:
        return name in self._files

    def size(self, name: str) -> int:
        return len(self._file(name).image())

    def listdir(self) -> list[str]:
        return sorted(self._files)

    def delete(self, name: str) -> None:
        self._file(name)
        del self._files[name]

    def rename(self, source: str, target: str) -> None:
        self._files[target] = self._file(source)
        del self._files[source]

    def truncate(self, name: str, size: int) -> None:
        backing = self._file(name)
        image = backing.image()[:size]
        backing.durable = bytearray(image)
        backing.pending = bytearray()

    # -- the crash/overlay controls (chaos battery only) -----------------

    def crash(self, keep_partial: dict[str, int] | None = None) -> None:
        """Power loss: every pending byte vanishes.

        *keep_partial* maps file name → how many of its pending bytes
        made it to the platter before the lights went out — the torn
        -tail overlay.  A value larger than the pending buffer keeps
        everything (the write happened to complete).
        """
        keep_partial = keep_partial or {}
        for name, backing in self._files.items():
            kept = min(keep_partial.get(name, 0), len(backing.pending))
            if kept:
                backing.durable += backing.pending[:kept]
            backing.pending = bytearray()

    def corrupt_byte(self, name: str, offset: int, mask: int = 0xFF) -> None:
        """Flip bits in the *durable* image — silent media corruption,
        the overlay recovery must refuse typed rather than replay."""
        backing = self._file(name)
        if not backing.durable:
            raise WalError(f"{name!r} has no durable bytes to corrupt")
        offset %= len(backing.durable)
        backing.durable[offset] ^= (mask or 0xFF) & 0xFF

    def durable_size(self, name: str) -> int:
        return len(self._file(name).durable)
