"""The WAL chaos harness: seeded power loss, one replay oracle.

Shared by the kill-and-recover battery (``tests/faults/test_wal_chaos.py``)
and ``benchmarks/bench_wal.py``: run a fixed grouped workload against a
:class:`~repro.wal.durable.DurableXmlStore` over the :class:`MemVfs`
power-loss model, cut the power at a seeded point, recover, and demand
one of exactly two outcomes:

* **byte-identical** — the recovered store's state digest equals the
  digest of replaying the *durable record set* against a fresh inner
  store, and every acknowledged op is in that set (durability: an ack
  means the record survives; an unacked record *may* survive — the WAL
  promises durability, not multi-op atomicity);
* **typed** — recovery refuses with :class:`~repro.core.errors.WalCorrupt`
  because the damage cannot be explained as a torn tail.  Reserved for
  the corrupt-frame overlay; silent truncation of acknowledged data is
  never acceptable.

Each seed overlays one of three adversarial scenarios (``seed % 3``):

0. **torn tail** — extra ops are applied and appended but the power
   fails between ``write()`` and ``fsync()``, keeping a seed-chosen
   byte prefix of the pending tail (possibly slicing a frame, possibly
   a freshly-rotated segment's header);
1. **corrupt frame** — a ``wal:{shard}`` CORRUPT fault rots one byte of
   an *interior* synced batch.  Later batches always follow, so the
   bounded forward resync proves the damage sits in front of live data
   and recovery must fail typed — a corrupt *final* batch would be
   indistinguishable from a torn tail, which is exactly why the overlay
   never schedules one;
2. **device fault** — a CRASH/DROP fault fails a batch mid-run: every
   ticket in it gets a typed error, the pipeline seals, and recovery
   of the acknowledged prefix must still be byte-identical.

Random DELAY noise (charged to the shared fault clock) rides on top of
every scenario.  Everything is deterministic: same seed, same plan,
same trace, same digests.
"""

from __future__ import annotations

import pickle
import random
from dataclasses import dataclass

from repro.core.errors import WalCorrupt, WalError
from repro.faults.clock import FaultClock
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.snap.xmlstore import SnapshotXmlDatabase
from repro.wal.durable import DurableXmlStore
from repro.wal.format import encode_frame, segment_name
from repro.wal.replay import recover as scan_logs

SHARDS = 2
#: Small segments so checkpoint truncation and mid-run rotation both
#: actually happen inside a 9-group workload.
SEGMENT_BYTES = 512
GROUPS = 9
#: Scenario names by ``seed % 3``.
SCENARIOS = ("torn-tail", "corrupt-frame", "device-fault")


def chaos_groups() -> list[list[tuple[str, tuple]]]:
    """The deterministic workload: 9 groups, every one touching the
    ``alpha`` collection so its WAL shard flushes exactly once per
    settled group (which is what lets overlays name batch indices)."""
    groups: list[list[tuple[str, tuple]]] = [[
        ("create_collection", ("alpha",)),
        ("create_collection", ("beta",)),
        ("create_collection", ("gamma",)),
    ]]
    for index in range(1, GROUPS):
        doc = f"d{index}"
        other = "beta" if index % 2 else "gamma"
        ops: list[tuple[str, tuple]] = [
            ("insert", ("alpha", doc,
                        f'<item n="{index}"><v>alpha-{index}</v></item>')),
            ("insert", (other, doc,
                        f'<item n="{index}"><v>{other}-{index}</v></item>')),
        ]
        if index >= 3:
            prev = f"d{index - 2}"
            if index % 3 == 0:
                ops.append(("delete", ("alpha", prev)))
            else:
                ops.append(("replace", ("alpha", prev,
                                        f'<item n="{index}">'
                                        f'<v>rev-{index}</v></item>')))
        else:
            ops.append(("replace", ("alpha", doc,
                                    f'<item n="{index}">'
                                    f'<v>alpha-{index}b</v></item>')))
        groups.append(ops)
    return groups


def scenario_plan(seed: int, home_site: str,
                  sites: list[str]) -> tuple[FaultPlan, str]:
    """Seeded DELAY noise plus the scenario overlay for *seed*."""
    plan = FaultPlan()
    rng = random.Random(seed * 7919 + 13)
    for site in sites:
        for op_index in range(GROUPS + 2):
            if rng.random() < 0.15:
                plan.add(site, op_index,
                         FaultEvent(FaultKind.DELAY,
                                    magnitude=1 + rng.randrange(3)))
    scenario = SCENARIOS[seed % 3]
    if scenario == "corrupt-frame":
        # Interior batch only: groups 3-5 of 9, so at least three later
        # batches land on the home shard and resync sees live data past
        # the damage (a corrupt FINAL batch would read as a torn tail).
        plan.add(home_site, 3 + (seed // 3) % 3, FaultKind.CORRUPT)
    elif scenario == "device-fault":
        kind = FaultKind.CRASH if (seed // 12) % 2 else FaultKind.DROP
        plan.add(home_site, 4 + (seed // 3) % 4, FaultEvent(kind))
    return plan, scenario


@dataclass(frozen=True)
class ChaosResult:
    """One seed's outcome, comparable across runs (determinism check)."""

    seed: int
    scenario: str
    outcome: str                 # "identical" | "typed"
    acked: int                   # ops acknowledged before the crash
    durable: int                 # records in the recovered set
    checkpoint_lsn: int
    truncated: int               # torn tails cut during recovery
    digest: str | None
    digest_matches: bool
    acked_durable: bool          # every acked LSN is in the durable set
    revived: bool                # recovered store accepts new writes
    error: str | None
    trace: tuple

    @property
    def expected_outcome(self) -> str:
        return ("typed" if self.scenario == "corrupt-frame"
                else "identical")

    @property
    def ok(self) -> bool:
        if self.outcome != self.expected_outcome:
            return False
        if self.outcome == "typed":
            return True
        return self.digest_matches and self.acked_durable and self.revived


def _reference_digest(lsn_ops: dict[int, tuple[str, tuple]],
                      lsns: list[int]) -> str:
    """Replay exactly *lsns* (LSN order) against a fresh inner store."""
    reference = SnapshotXmlDatabase()
    for lsn in sorted(lsns):
        op, args = lsn_ops[lsn]
        getattr(reference, op)(*args)
    return DurableXmlStore._digest_of(reference.freeze())


def run_chaos(seed: int) -> ChaosResult:
    """One chaos run: grouped workload, seeded power loss, recovery."""
    from repro.wal.vfs import MemVfs

    vfs = MemVfs()
    store = DurableXmlStore(
        SnapshotXmlDatabase(), vfs, shards=SHARDS, durability="fsync",
        auto_flush=False, segment_bytes=SEGMENT_BYTES, max_batch=64)
    home_shard = store._shard_for("alpha")
    home_site = f"wal:{home_shard}"
    sites = [f"wal:{shard}" for shard in range(SHARDS)]
    plan, scenario = scenario_plan(seed, home_site, sites)
    clock = FaultClock()
    injector = FaultInjector(plan, clock, seed=seed)
    for pipeline in store.pipelines:
        pipeline.injector = injector

    rng = random.Random(seed * 104729 + 7)
    lsn_ops: dict[int, tuple[str, tuple]] = {}
    acked: set[int] = set()
    trace: list[tuple] = []
    for group_index, ops in enumerate(chaos_groups()):
        group_lsns: list[int] = []
        try:
            with store.group():
                for op, args in ops:
                    getattr(store, op)(*args)
                    lsn = store.wal.allocator.last
                    lsn_ops[lsn] = (op, args)
                    group_lsns.append(lsn)
        except WalError as exc:
            trace.append((group_index, f"failed:{type(exc).__name__}"))
            continue
        acked.update(group_lsns)
        trace.append((group_index, "acked"))
        if group_index == 2 and seed % 2 == 0:
            store.checkpoint()
            trace.append((group_index, "checkpoint"))

    keep_partial: dict[str, int] = {}
    if scenario == "torn-tail":
        # Apply + append WITHOUT sync: the crash lands between write()
        # and fsync(), keeping a seed-chosen prefix of the pending tail.
        log = store.wal.logs[home_shard]
        for extra in range(1 + seed % 2):
            op = ("insert", ("alpha", f"x{extra}",
                             f'<item><v>extra-{seed}-{extra}</v></item>'))
            payload = store._encode(op[0], op[1], {})
            store._apply(op[0], op[1], {})
            lsn = store.wal.allocator.allocate()
            log.append_encoded(
                encode_frame(lsn, payload, log._alg_id), lsn, 1)
            lsn_ops[lsn] = op
        tail = segment_name(home_shard, log._index)
        pending = vfs.size(tail) - vfs.durable_size(tail)
        keep_partial[tail] = rng.randrange(pending + 1)
        trace.append(("torn", keep_partial[tail], pending))

    vfs.crash(keep_partial=keep_partial)

    try:
        scan = scan_logs(vfs, SHARDS, apply_truncation=False)
        recovered, report = DurableXmlStore.recover(
            vfs, shards=SHARDS, auto_flush=False,
            segment_bytes=SEGMENT_BYTES)
    except WalCorrupt as exc:
        return ChaosResult(
            seed=seed, scenario=scenario, outcome="typed",
            acked=len(acked), durable=0, checkpoint_lsn=0, truncated=0,
            digest=None, digest_matches=False, acked_durable=False,
            revived=False, error=str(exc), trace=tuple(trace))

    durable_lsns = (
        [lsn for lsn in lsn_ops if lsn <= report.checkpoint_lsn]
        + [lsn for lsn, _ in scan.records
           if lsn > report.checkpoint_lsn])
    digest = recovered.state_digest()
    digest_matches = digest == _reference_digest(lsn_ops, durable_lsns)
    acked_durable = acked.issubset(durable_lsns)
    recovered.insert("alpha", "post-recovery",
                     "<item><v>revived</v></item>")
    revived = recovered.durability_lag == 0
    recovered.close()
    return ChaosResult(
        seed=seed, scenario=scenario, outcome="identical",
        acked=len(acked), durable=len(durable_lsns),
        checkpoint_lsn=report.checkpoint_lsn,
        truncated=len(report.truncated), digest=digest,
        digest_matches=digest_matches, acked_durable=acked_durable,
        revived=revived, error=None, trace=tuple(trace))


def _unpickle_count(records: list[tuple[int, bytes]]) -> int:
    """Sanity helper for the bench: decoded records must be real ops."""
    return sum(1 for _, payload in records
               if isinstance(pickle.loads(payload), tuple))
