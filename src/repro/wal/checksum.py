"""Frame checksums for the write-ahead log.

The WAL frames every record with a 32-bit CRC so recovery can tell a
torn tail from committed data.  Two algorithms are supported, and every
segment header records which one framed its contents, so a log written
on one host replays on another:

* ``crc32`` — CRC-32/ISO-HDLC via :func:`zlib.crc32`.  C-speed in
  every CPython build, and therefore the default: checksum cost on the
  hot append path should be noise next to the write itself.
* ``crc32c`` — CRC-32C (Castagnoli), the polynomial storage systems
  standardized on for its better burst-error detection.  Used when the
  optional hardware-accelerated ``crc32c`` wheel is importable; the
  pure-Python table fallback here exists so segments *written* with
  crc32c always remain readable, at table-lookup speed, even where the
  wheel is absent.

Both are exposed behind one ``(name, fn)`` registry keyed by the
single-byte algorithm id stored in the segment header.
"""

from __future__ import annotations

import zlib
from typing import Callable

from repro.core.errors import WalCorrupt

_CASTAGNOLI = 0x82F63B78

# 8 slicing tables x 256 entries, built once at import: table-driven
# CRC32C processes 8 input bytes per loop iteration instead of one.
_T = [[0] * 256 for _ in range(8)]
for _i in range(256):
    _crc = _i
    for _ in range(8):
        _crc = (_crc >> 1) ^ (_CASTAGNOLI if _crc & 1 else 0)
    _T[0][_i] = _crc
for _i in range(256):
    _crc = _T[0][_i]
    for _k in range(1, 8):
        _crc = _T[0][_crc & 0xFF] ^ (_crc >> 8)
        _T[_k][_i] = _crc

try:  # pragma: no cover - exercised only where the wheel is installed
    from crc32c import crc32c as _native_crc32c
except ImportError:
    _native_crc32c = None


def crc32c(data: bytes | memoryview, crc: int = 0) -> int:
    """CRC-32C of *data* (slicing-by-8 pure Python, or native wheel)."""
    if _native_crc32c is not None:  # pragma: no cover - wheel-only path
        return _native_crc32c(bytes(data), crc)
    crc = ~crc & 0xFFFFFFFF
    view = memoryview(data)
    t0, t1, t2, t3, t4, t5, t6, t7 = _T
    blocks, tail = divmod(len(view), 8)
    for i in range(0, blocks * 8, 8):
        b0, b1, b2, b3, b4, b5, b6, b7 = view[i:i + 8]
        crc ^= b0 | (b1 << 8) | (b2 << 16) | (b3 << 24)
        crc = (t7[crc & 0xFF] ^ t6[(crc >> 8) & 0xFF]
               ^ t5[(crc >> 16) & 0xFF] ^ t4[(crc >> 24) & 0xFF]
               ^ t3[b4] ^ t2[b5] ^ t1[b6] ^ t0[b7])
    for i in range(blocks * 8, blocks * 8 + tail):
        crc = t0[(crc ^ view[i]) & 0xFF] ^ (crc >> 8)
    return ~crc & 0xFFFFFFFF


def crc32(data: bytes | memoryview, crc: int = 0) -> int:
    """CRC-32/ISO-HDLC via zlib (C speed; the default frame checksum)."""
    return zlib.crc32(data, crc) & 0xFFFFFFFF


#: algorithm id byte (stored in segment headers) -> (name, function).
ALGORITHMS: dict[int, tuple[str, Callable[..., int]]] = {
    0x5A: ("crc32", crc32),
    0x43: ("crc32c", crc32c),
}
_BY_NAME = {name: (alg_id, fn)
            for alg_id, (name, fn) in ALGORITHMS.items()}

#: What new segments are framed with: the native wheel when present
#: (true CRC-32C at C speed), zlib's CRC-32 otherwise.
DEFAULT_ALGORITHM = ("crc32c" if _native_crc32c is not None else "crc32")


def checksum_fn(alg_id: int) -> Callable[..., int]:
    """The checksum function for a segment-header algorithm id."""
    try:
        return ALGORITHMS[alg_id][1]
    except KeyError:
        raise WalCorrupt(
            f"unknown checksum algorithm id 0x{alg_id:02x} in segment "
            f"header") from None


def algorithm_id(name: str) -> int:
    try:
        return _BY_NAME[name][0]
    except KeyError:
        raise WalCorrupt(f"unknown checksum algorithm {name!r}") from None
