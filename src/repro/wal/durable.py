"""Durable wrappers: WAL + checkpoints under the existing stores.

Each wrapper keeps the inner store's read surface intact (attribute
delegation) and intercepts its mutators: an op is **applied first**
under one store-wide mutex — so a rejected op (authorization failure,
missing document) raises before anything is logged — then its pickled
``(op, args, kwargs)`` record is submitted to the owning shard's
commit pipeline *inside the same critical section*, which makes apply
order, LSN order, and log order one and the same.  The durability wait
happens **outside** the mutex, which is what lets concurrent writers
pile into one fsync batch (group commit) instead of serializing on the
device.

Two acknowledgement modes:

* ``durability="fsync"`` — every op blocks until the fsync covering
  its record returns; an acknowledged op is durable, full stop.
* ``durability="enqueue"`` — ops return at enqueue; durability
  trails by at most ``max_lag`` records, enforced with a typed
  :class:`~repro.core.errors.DurabilityLagExceeded` at submit (bounded
  staleness, never silent unbounded loss), and :meth:`wal_sync` is the
  barrier callers (the gateways' write path) use to settle.

Logged arguments must be picklable — module-level predicates, entity
dataclasses, strings.  A lambda row-filter is rejected with a typed
:class:`~repro.core.errors.WalError` *before* the op applies, so the
store never diverges from its log.

Recovery (``<class>.recover(vfs, ...)``) loads the newest checkpoint,
replays the merged log suffix in LSN order (segment scanning fans out
over worker processes on a real directory), and returns the rebuilt
store plus a :class:`RecoveryReport`.  Replaying an op that fails is
:class:`~repro.core.errors.WalCorrupt`: only *successful* ops are ever
logged, so a replay failure means the log and checkpoint disagree.
"""

from __future__ import annotations

import pickle
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.errors import ReproError, WalCorrupt, WalError
from repro.core.policy import PolicyBase
from repro.crypto.hashing import combine, sha256_hex, sha256_int
from repro.scale.registry import ShardedUddiRegistry
from repro.scale.relational import ShardedDatabase
from repro.snap.xmlstore import SnapshotXmlDatabase
from repro.wal.checkpoint import CheckpointStore
from repro.wal.log import ShardedWal
from repro.wal.pipeline import CommitPipeline
from repro.wal.replay import recover as replay_recover
from repro.xmldb.parser import parse_element
from repro.xmldb.serializer import serialize, serialize_element

DURABILITY_MODES = ("fsync", "enqueue")


@dataclass
class RecoveryReport:
    """What a recovery run did — the bench and chaos oracles read it."""

    checkpoint_lsn: int = 0
    checkpoint_digest: str | None = None
    records_replayed: int = 0
    last_lsn: int = 0
    segments_scanned: int = 0
    bytes_scanned: int = 0
    truncated: list[tuple[str, int]] = field(default_factory=list)
    parallel: bool = False


class DurableStore:
    """Common WAL/checkpoint machinery; subclasses own op dispatch."""

    #: Subclasses without a picklable full-state snapshot (the
    #: relational store's lock striping) run WAL-only.
    SUPPORTS_CHECKPOINT = True

    def __init__(self, inner, vfs, *, shards: int = 4,
                 durability: str = "fsync",
                 max_batch: int = 256, max_lag: int = 4096,
                 segment_bytes: int = 4 * 1024 * 1024,
                 auto_flush: bool = True,
                 injector=None, start_lsn: int = 0) -> None:
        if durability not in DURABILITY_MODES:
            raise WalError(
                f"unknown durability mode {durability!r}; expected one "
                f"of {DURABILITY_MODES}")
        self.inner = inner
        self.vfs = vfs
        self.durability = durability
        self.wal = ShardedWal(vfs, shards, segment_bytes=segment_bytes,
                              start_lsn=start_lsn)
        self.pipelines = tuple(
            CommitPipeline(log, max_batch=max_batch, max_lag=max_lag,
                           auto_flush=auto_flush, injector=injector,
                           vfs=vfs)
            for log in self.wal.logs)
        self.checkpoints = CheckpointStore(vfs)
        self._auto_flush = auto_flush
        self._mutex = threading.Lock()
        self._pending: list = []
        self._group_depth = 0

    # -- delegation --------------------------------------------------------

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    # -- the durable op path ----------------------------------------------

    def _shard_for(self, key: str) -> int:
        return sha256_int(f"walshard:{key}") % self.wal.shard_count

    def _encode(self, op: str, args: tuple, kwargs: dict) -> bytes:
        try:
            return pickle.dumps((op, args, kwargs), protocol=5)
        except Exception as exc:
            raise WalError(
                f"op {op!r} has unpicklable arguments and cannot be "
                f"made durable: {exc}") from exc

    def _apply(self, op: str, args: tuple, kwargs: dict):
        return getattr(self.inner, op)(*args, **kwargs)

    def _durable_op(self, shard: int, op: str, *args, **kwargs):
        payload = self._encode(op, args, kwargs)  # refuse *before* apply
        with self._mutex:
            result = self._apply(op, args, kwargs)
            ticket = self.pipelines[shard].submit(payload)
            deferred = self._group_depth > 0
            if deferred or self.durability == "enqueue":
                self._pending.append(ticket)
        if not deferred and self.durability == "fsync":
            if not self._auto_flush:
                self.pipelines[shard].flush()
            ticket.wait()
        return result

    @contextmanager
    def group(self):
        """Defer durability waits across a block of ops, settling them
        against one (or few) fsync batches at exit — the multi-op
        analogue of group commit for a single writer."""
        with self._mutex:
            self._group_depth += 1
        try:
            yield self
        finally:
            with self._mutex:
                self._group_depth -= 1
                settle = self._group_depth == 0
            if settle and self.durability == "fsync":
                self.wal_sync()

    def wal_sync(self) -> int:
        """Barrier: flush every pipeline and wait out every pending
        ticket; returns how many tickets were settled.  Typed errors
        from sealed pipelines propagate — never swallowed."""
        with self._mutex:
            pending, self._pending = self._pending, []
        if not self._auto_flush:
            for pipeline in self.pipelines:
                while pipeline.flush():
                    pass
        first_error: WalError | None = None
        for ticket in pending:
            try:
                ticket.wait()
            except WalError as exc:
                first_error = first_error or exc
        if first_error is not None:
            raise first_error
        return len(pending)

    @property
    def durability_lag(self) -> int:
        return sum(pipeline.lag for pipeline in self.pipelines)

    def close(self) -> None:
        for pipeline in self.pipelines:
            pipeline.close()
        self.wal.close()

    def wal_stats(self) -> dict[str, object]:
        return {
            "log": self.wal.stats_snapshot(),
            "pipelines": [p.stats_snapshot() for p in self.pipelines],
            "checkpoints": {"written": self.checkpoints.written,
                            "skipped": self.checkpoints.skipped},
            "durability": self.durability,
            "lag": self.durability_lag,
        }

    # -- checkpointing -----------------------------------------------------

    def _checkpoint_payload(self) -> bytes:
        raise NotImplementedError

    def state_digest(self) -> str:
        raise NotImplementedError

    def checkpoint(self) -> bool:
        """Write an incremental checkpoint and truncate the covered log
        prefix; returns False when skipped (digest unchanged)."""
        if not self.SUPPORTS_CHECKPOINT:
            raise WalError(
                f"{type(self).__name__} has no picklable full-state "
                f"snapshot; it runs WAL-only")
        with self._mutex:
            # Under the op mutex the allocator's last LSN is exactly
            # the last *applied* op, so the serialized state covers
            # every record at or below it.
            lsn = self.wal.allocator.last
            payload, digest, release = self._capture()
        try:
            written = self.checkpoints.write(lsn, digest, payload)
        finally:
            release()
        if written:
            self.wal.truncate_until(lsn)
        return written

    def _capture(self):
        """(payload, digest, release) — release undoes any epoch pin.
        Called under the op mutex; default has nothing to pin."""
        return self._checkpoint_payload(), self.state_digest(), _noop

    # -- recovery ----------------------------------------------------------

    @classmethod
    def _fresh_inner(cls, **inner_kwargs):
        raise NotImplementedError

    @classmethod
    def _restore_inner(cls, payload: bytes, **inner_kwargs):
        raise NotImplementedError

    @classmethod
    def recover(cls, vfs, *, shards: int = 4, workers: int | None = None,
                inner_kwargs: dict | None = None,
                **store_kwargs) -> tuple["DurableStore", RecoveryReport]:
        """Rebuild the store from its directory: newest checkpoint plus
        the merged log suffix, applied strictly in LSN order."""
        inner_kwargs = inner_kwargs or {}
        report = RecoveryReport()
        checkpoint = (CheckpointStore(vfs).latest()
                      if cls.SUPPORTS_CHECKPOINT else None)
        if checkpoint is not None:
            lsn, digest, payload = checkpoint
            inner = cls._restore_inner(payload, **inner_kwargs)
            report.checkpoint_lsn = lsn
            report.checkpoint_digest = digest
        else:
            inner = cls._fresh_inner(**inner_kwargs)
        scan = replay_recover(vfs, shards,
                              from_lsn=report.checkpoint_lsn,
                              workers=workers)
        report.records_replayed = len(scan.records)
        report.last_lsn = max(scan.last_lsn, report.checkpoint_lsn)
        report.segments_scanned = scan.segments
        report.bytes_scanned = scan.bytes_scanned
        report.truncated = scan.truncated
        report.parallel = scan.parallel
        store = cls(inner, vfs, shards=shards,
                    start_lsn=report.last_lsn, **store_kwargs)
        for lsn, payload in scan.records:
            op, args, kwargs = pickle.loads(payload)
            try:
                store._apply(op, args, kwargs)
            except ReproError as exc:
                raise WalCorrupt(
                    f"replaying LSN {lsn} op {op!r} failed ({exc}); "
                    f"only successful ops are logged, so the log and "
                    f"checkpoint disagree") from exc
        return store, report


def _noop() -> None:
    return None


# -- XML snapshot store ----------------------------------------------------


class DurableXmlStore(DurableStore):
    """WAL + epoch-snapshot checkpoints under SnapshotXmlDatabase.

    Documents travel through the log and checkpoints as canonical XML
    strings (the store's own serializer), so records are picklable and
    replay re-interns through the live :class:`InternPool`.  While a
    checkpoint serializes, the captured epoch is pinned via
    :meth:`EpochManager.retain_until` so reclamation can never race the
    serialization.
    """

    _MUTATORS = frozenset({
        "create_collection", "drop_collection", "insert", "delete",
        "replace", "set_text", "set_attribute", "remove_attribute",
        "append_child", "remove_child"})

    def _op_shard(self, collection: str) -> int:
        return self._shard_for(collection)

    def create_collection(self, name: str) -> None:
        return self._durable_op(self._op_shard(name),
                                "create_collection", name)

    def drop_collection(self, name: str) -> None:
        return self._durable_op(self._op_shard(name),
                                "drop_collection", name)

    def insert(self, collection: str, doc_id: str, document):
        if not isinstance(document, str):
            document = serialize(document)
        return self._durable_op(self._op_shard(collection), "insert",
                                collection, doc_id, document)

    def delete(self, collection: str, doc_id: str):
        return self._durable_op(self._op_shard(collection), "delete",
                                collection, doc_id)

    def replace(self, collection: str, doc_id: str, document):
        if not isinstance(document, str):
            document = serialize(document)
        return self._durable_op(self._op_shard(collection), "replace",
                                collection, doc_id, document)

    def set_text(self, collection: str, doc_id: str, path: str,
                 text: str) -> None:
        return self._durable_op(self._op_shard(collection), "set_text",
                                collection, doc_id, path, text)

    def set_attribute(self, collection: str, doc_id: str, path: str,
                      name: str, value: str) -> None:
        return self._durable_op(self._op_shard(collection),
                                "set_attribute", collection, doc_id,
                                path, name, value)

    def remove_attribute(self, collection: str, doc_id: str, path: str,
                         name: str) -> None:
        return self._durable_op(self._op_shard(collection),
                                "remove_attribute", collection, doc_id,
                                path, name)

    def append_child(self, collection: str, doc_id: str,
                     parent_path: str, child) -> None:
        if not isinstance(child, str):
            child = serialize_element(child)
        return self._durable_op(self._op_shard(collection),
                                "append_child", collection, doc_id,
                                parent_path, child)

    def remove_child(self, collection: str, doc_id: str,
                     path: str) -> None:
        return self._durable_op(self._op_shard(collection),
                                "remove_child", collection, doc_id, path)

    def writer(self):
        """Atomic multi-op epoch (inner) + one durability settle."""
        @contextmanager
        def _writer():
            with self.group():
                with self.inner.writer():
                    yield self
        return _writer()

    def _apply(self, op: str, args: tuple, kwargs: dict):
        if op == "append_child" and isinstance(args[3], str):
            args = (*args[:3], parse_element(args[3]))
        return getattr(self.inner, op)(*args, **kwargs)

    def state_digest(self) -> str:
        return self._digest_of(self.inner.freeze())

    def _capture(self):
        snapshot = self.inner.freeze()
        digest = self._digest_of(snapshot)
        release = self.inner.epochs.retain_until(
            self.inner.current(), digest)
        state = {
            collection: {doc_id: snapshot.serialize(collection, doc_id)
                         for doc_id in snapshot.doc_ids(collection)}
            for collection in snapshot.collection_names()}
        return pickle.dumps(state, protocol=5), digest, release

    @staticmethod
    def _digest_of(snapshot) -> str:
        parts = []
        for collection in sorted(snapshot.collection_names()):
            parts.append(sha256_hex(f"collection:{collection}"))
            for doc_id in sorted(snapshot.doc_ids(collection)):
                parts.append(sha256_hex(
                    f"{collection}/{doc_id}:"
                    + snapshot.merkle_root(collection, doc_id)))
        return combine(*parts) if parts else sha256_hex("empty-xmlstore")

    @classmethod
    def _fresh_inner(cls, **inner_kwargs):
        return SnapshotXmlDatabase(**inner_kwargs)

    @classmethod
    def _restore_inner(cls, payload: bytes, **inner_kwargs):
        inner = SnapshotXmlDatabase(**inner_kwargs)
        state = pickle.loads(payload)
        with inner.writer():
            for collection in sorted(state):
                inner.create_collection(collection)
                for doc_id in sorted(state[collection]):
                    inner.insert(collection, doc_id,
                                 state[collection][doc_id])
        return inner


# -- UDDI registry ---------------------------------------------------------


class DurableUddiRegistry(DurableStore):
    """WAL + whole-registry pickle checkpoints under the sharded UDDI
    registry.  WAL shards follow the registry's own consistent-hash
    routing, so a shard's log holds exactly its registry shard's home
    writes (cross-shard purges replay in LSN order)."""

    def save_business(self, entity, publisher: str,
                      idempotency_key: str | None = None):
        return self._durable_op(
            self.inner.shard_index(entity.business_key)
            % self.wal.shard_count,
            "save_business", entity, publisher, idempotency_key)

    def delete_business(self, business_key: str, publisher: str) -> None:
        return self._durable_op(
            self.inner.shard_index(business_key) % self.wal.shard_count,
            "delete_business", business_key, publisher)

    def save_tmodel(self, tmodel, publisher: str,
                    idempotency_key: str | None = None):
        return self._durable_op(
            self.inner.shard_index(tmodel.tmodel_key)
            % self.wal.shard_count,
            "save_tmodel", tmodel, publisher, idempotency_key)

    def add_assertion(self, assertion, publisher: str,
                      idempotency_key: str | None = None) -> None:
        return self._durable_op(
            self.inner.shard_index(assertion.from_key)
            % self.wal.shard_count,
            "add_assertion", assertion, publisher, idempotency_key)

    def state_digest(self) -> str:
        return self.inner.state_digest()

    def _checkpoint_payload(self) -> bytes:
        return pickle.dumps(self.inner, protocol=5)

    @classmethod
    def _fresh_inner(cls, **inner_kwargs):
        return ShardedUddiRegistry(**inner_kwargs)

    @classmethod
    def _restore_inner(cls, payload: bytes, **inner_kwargs):
        return pickle.loads(payload)


# -- relational store ------------------------------------------------------


class DurableRelationalStore(DurableStore):
    """WAL-only durability under ShardedDatabase (its striped lock
    manager is not picklable, so there is no full-state checkpoint;
    recovery replays the log from LSN 0).  Predicates and row filters
    logged through here must be module-level functions."""

    SUPPORTS_CHECKPOINT = False

    def _table_shard(self, table: str) -> int:
        return self.inner.shard_index(table) % self.wal.shard_count

    def create_table(self, table_schema, owner: str):
        return self._durable_op(self._table_shard(table_schema.name),
                                "create_table", table_schema, owner)

    def grant(self, grantor: str, grantee: str, table: str, privilege,
              with_grant_option: bool = False, row_filter=None,
              column_mask=()):
        return self._durable_op(
            self._table_shard(table), "grant", grantor, grantee, table,
            privilege, with_grant_option, row_filter, tuple(column_mask))

    def revoke(self, revoker: str, grantee: str, table: str, privilege):
        return self._durable_op(self._table_shard(table), "revoke",
                                revoker, grantee, table, privilege)

    def insert(self, user: str, table_name: str, **values):
        # Values travel as one positional dict: re-splatting them into
        # _durable_op's signature would make a column named "op" or
        # "shard" a TypeError instead of data.
        return self._durable_op(self._table_shard(table_name), "insert",
                                user, table_name, dict(values))

    def update(self, user: str, table_name: str, where, changes):
        return self._durable_op(self._table_shard(table_name), "update",
                                user, table_name, where, dict(changes))

    def delete(self, user: str, table_name: str, where):
        return self._durable_op(self._table_shard(table_name), "delete",
                                user, table_name, where)

    def set_metadata(self, table: str, key: str, value) -> None:
        return self._durable_op(self._table_shard(table),
                                "set_metadata", table, key, value)

    def _apply(self, op: str, args: tuple, kwargs: dict):
        if op == "insert":
            user, table_name, values = args
            return self.inner.insert(user, table_name, **values)
        return super()._apply(op, args, kwargs)

    def state_digest(self) -> str:
        parts = []
        for name in self.inner.table_names():
            table = self.inner.table(name)
            rows = sorted(repr(sorted(row.items()))
                          for row in table.rows_as_dicts())
            parts.append(sha256_hex(
                f"table:{name}:" + "|".join(rows)))
            auth = self.inner.authorization_for(name)
            grants = sorted(
                f"{g.grantor}>{g.grantee}:{g.table}:{g.privilege.value}"
                f":{g.with_grant_option}"
                for g in auth.all_grants() if g.table == name)
            parts.append(sha256_hex(f"grants:{name}:" + "|".join(grants)))
        return combine(*parts) if parts else sha256_hex("empty-reldb")

    @classmethod
    def _fresh_inner(cls, **inner_kwargs):
        return ShardedDatabase(**inner_kwargs)


# -- policy store ----------------------------------------------------------


class DurablePolicyStore(DurableStore):
    """WAL + pickled-policy checkpoints under a :class:`PolicyBase`.

    Removals are logged by ``policy_id`` rather than by value: two
    unpicklings of one policy need not compare equal (subject
    expressions may compare by identity), but ids are stable across
    the pickle round trip.
    """

    def add(self, policy):
        return self._durable_op(
            self._shard_for(f"policy:{policy.policy_id}"), "add", policy)

    def remove(self, policy) -> None:
        self._durable_op(
            self._shard_for(f"policy:{policy.policy_id}"), "remove_id",
            policy.policy_id)

    def _apply(self, op: str, args: tuple, kwargs: dict):
        if op == "remove_id":
            (policy_id,) = args
            for policy in list(self.inner):
                if policy.policy_id == policy_id:
                    return self.inner.remove(policy)
            raise WalError(f"no policy with id {policy_id} to remove")
        return getattr(self.inner, op)(*args, **kwargs)

    def state_digest(self) -> str:
        parts = sorted(repr(policy) for policy in self.inner)
        return (combine(*(sha256_hex(p) for p in parts)) if parts
                else sha256_hex("empty-policybase"))

    def _checkpoint_payload(self) -> bytes:
        return pickle.dumps(list(self.inner), protocol=5)

    @classmethod
    def _fresh_inner(cls, **inner_kwargs):
        return PolicyBase(**inner_kwargs)

    @classmethod
    def _restore_inner(cls, payload: bytes, **inner_kwargs):
        return PolicyBase(pickle.loads(payload))
