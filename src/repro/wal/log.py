"""Segmented append-only logs with globally ordered LSNs.

One :class:`WriteAheadLog` owns one shard's segment chain.  LSNs come
from a single :class:`LsnAllocator` shared by every shard of a store,
so records on *different* shards still carry a total order: recovery
scans shard logs independently (that part parallelizes across worker
processes) and then merges by LSN, replaying the exact serialization
the writers produced.  Within one shard the append lock makes file
order equal LSN order, which is what lets the segment scanner treat a
non-increasing LSN as corruption.

Segments rotate at a byte threshold; a sealed segment is synced before
the next one opens, so only the *last* segment of a shard can ever
carry a torn tail.  :meth:`WriteAheadLog.truncate_until` deletes the
prefix of sealed segments a checkpoint has made redundant — bounded
recovery work is the whole point of checkpointing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.errors import WalCorrupt, WalError
from repro.wal.checksum import DEFAULT_ALGORITHM, algorithm_id
from repro.wal.format import (
    HEADER_SIZE,
    RECORD,
    encode_frame,
    encode_segment_header,
    parse_segment_name,
    scan_segment,
    segment_name,
)


class LsnAllocator:
    """A monotone global sequence; LSN 0 means "nothing"."""

    def __init__(self, start: int = 0) -> None:
        self._mutex = threading.Lock()
        self._last = start

    def allocate(self) -> int:
        with self._mutex:
            self._last += 1
            return self._last

    @property
    def last(self) -> int:
        with self._mutex:
            return self._last


@dataclass
class LogStats:
    appended_records: int = 0
    appended_bytes: int = 0
    segments_opened: int = 0
    segments_truncated: int = 0
    syncs: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _Sealed:
    index: int
    name: str
    last_lsn: int


class WriteAheadLog:
    """One shard's segment chain (appends are caller-serialized or go
    through the shard's :class:`~repro.wal.pipeline.CommitPipeline`,
    which owns the batching lock)."""

    def __init__(self, vfs, shard: int, allocator: LsnAllocator, *,
                 segment_bytes: int = 4 * 1024 * 1024,
                 algorithm: str = DEFAULT_ALGORITHM) -> None:
        self.vfs = vfs
        self.shard = shard
        self.allocator = allocator
        self.segment_bytes = segment_bytes
        self.algorithm = algorithm
        self._alg_id = algorithm_id(algorithm)
        self._mutex = threading.Lock()
        self._sealed: list[_Sealed] = []
        self._last_appended = 0
        self._last_synced = 0
        self.stats = LogStats()
        # Never append to a pre-existing segment: recovery may have
        # truncated a torn tail, and an old file's unsynced page-cache
        # state is unknowable.  Start a fresh segment after the highest
        # existing index — and register every pre-existing segment as
        # sealed, so a later checkpoint's truncate_until() reclaims the
        # true prefix of the chain.  Skipping them would leave the old
        # files behind forever and, worse, delete only newly-sealed
        # higher-index segments around them, punching an index gap the
        # next recovery reads as a missing segment.
        existing = sorted(
            (parsed[1], name) for name in vfs.listdir()
            if (parsed := parse_segment_name(name)) is not None
            and parsed[0] == shard)
        self._index = (existing[-1][0] + 1) if existing else 0
        last_lsn = 0
        for index, name in existing:
            if vfs.size(name) >= HEADER_SIZE:
                try:
                    with vfs.open_map(name) as mapped:
                        result = scan_segment(mapped.view, name,
                                              expect_shard=shard)
                except WalCorrupt:
                    # Un-recovered damage: stop registering here so no
                    # segment at or past it is ever deleted — recovery
                    # is the layer that rules on what the damage means.
                    break
                if result.frames:
                    last_lsn = result.frames[-1].lsn
            # A header-only (or empty) segment carries its
            # predecessor's LSN: it holds no records, so it may go
            # whenever the segment before it goes.
            self._sealed.append(_Sealed(index, name, last_lsn))
        self._segment = None
        self._segment_size = 0

    # -- appending ---------------------------------------------------------

    def _open_segment(self) -> None:
        header = encode_segment_header(self.shard, self.allocator.last,
                                       self.algorithm)
        self._segment = self.vfs.create(segment_name(self.shard,
                                                     self._index))
        self._segment.write(header)
        self._segment_size = len(header)
        self.stats.segments_opened += 1

    def _seal_segment(self) -> None:
        self._segment.sync()
        self._segment.close()
        self._sealed.append(_Sealed(self._index,
                                    segment_name(self.shard, self._index),
                                    self._last_appended))
        self._index += 1
        self._segment = None

    def append(self, payload: bytes, lsn: int | None = None,
               rectype: int = RECORD) -> int:
        """Append one framed record (no sync); returns its LSN.

        Callers may pass a pre-allocated *lsn* (the commit pipeline
        allocates under its own mutex to keep queue order equal to LSN
        order); it must be above every LSN this shard has seen.
        """
        with self._mutex:
            if lsn is None:
                lsn = self.allocator.allocate()
            elif lsn <= self._last_appended:
                raise WalError(
                    f"shard {self.shard} append of LSN {lsn} at or "
                    f"below last appended {self._last_appended}")
            frame = encode_frame(lsn, payload, self._alg_id, rectype)
            self._append_bytes(frame)
            self._last_appended = lsn
            self.stats.appended_records += 1
            return lsn

    def append_encoded(self, batch: bytes, last_lsn: int,
                       records: int) -> None:
        """Append a pre-framed batch in one buffered write (the group
        -commit fast path; frames were encoded by the pipeline)."""
        with self._mutex:
            if last_lsn <= self._last_appended:
                raise WalError(
                    f"shard {self.shard} batch ending at LSN {last_lsn} "
                    f"at or below last appended {self._last_appended}")
            self._append_bytes(batch)
            self._last_appended = last_lsn
            self.stats.appended_records += records

    def _append_bytes(self, data: bytes) -> None:
        if self._segment is None:
            self._open_segment()
        elif (self._segment_size + len(data) > self.segment_bytes
                and self._segment_size > 0):
            self._seal_segment()
            self._open_segment()
        self._segment.write(data)
        self._segment_size += len(data)
        self.stats.appended_bytes += len(data)

    # -- durability --------------------------------------------------------

    def sync(self) -> int:
        """Flush and fsync the open segment; returns the LSN now
        guaranteed durable."""
        with self._mutex:
            if self._segment is not None:
                self._segment.sync()
                self.stats.syncs += 1
            self._last_synced = self._last_appended
            return self._last_synced

    @property
    def last_appended(self) -> int:
        return self._last_appended

    @property
    def last_synced(self) -> int:
        return self._last_synced

    # -- checkpoint-driven truncation --------------------------------------

    def truncate_until(self, lsn: int) -> int:
        """Delete the prefix of sealed segments wholly covered by a
        checkpoint at *lsn*; returns how many segments were removed.

        Only a strict prefix ever goes: recovery requires contiguous
        segment indices per shard, and a hole in the middle must stay
        distinguishable from this lawful trimming.
        """
        removed = 0
        with self._mutex:
            while self._sealed and self._sealed[0].last_lsn <= lsn:
                sealed = self._sealed.pop(0)
                self.vfs.delete(sealed.name)
                removed += 1
            self.stats.segments_truncated += removed
        return removed

    def close(self) -> None:
        with self._mutex:
            if self._segment is not None:
                self._segment.sync()
                self._segment.close()
                self._segment = None
                self._last_synced = self._last_appended


class ShardedWal:
    """N shard logs over one vfs directory, one LSN space."""

    def __init__(self, vfs, shards: int = 4, *,
                 segment_bytes: int = 4 * 1024 * 1024,
                 algorithm: str = DEFAULT_ALGORITHM,
                 start_lsn: int = 0) -> None:
        if shards < 1:
            raise WalError("a sharded wal needs at least one shard")
        self.vfs = vfs
        self.shard_count = shards
        self.allocator = LsnAllocator(start_lsn)
        self.logs = tuple(
            WriteAheadLog(vfs, shard, self.allocator,
                          segment_bytes=segment_bytes,
                          algorithm=algorithm)
            for shard in range(shards))

    def log(self, shard: int) -> WriteAheadLog:
        return self.logs[shard]

    def sync_all(self) -> int:
        """Sync every shard; returns the globally durable LSN floor."""
        return max(log.sync() for log in self.logs)

    @property
    def last_appended(self) -> int:
        return max((log.last_appended for log in self.logs), default=0)

    def truncate_until(self, lsn: int) -> int:
        return sum(log.truncate_until(lsn) for log in self.logs)

    def close(self) -> None:
        for log in self.logs:
            log.close()

    def stats_snapshot(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for log in self.logs:
            for key, value in log.stats.snapshot().items():
                totals[key] = totals.get(key, 0) + value
        return totals
