"""Durable write path: group-commit WAL, checkpoints, parallel replay.

Layering, bottom up:

* :mod:`repro.wal.checksum` — frame checksums (CRC-32 / CRC-32C),
  algorithm-agile behind an id byte in each segment header.
* :mod:`repro.wal.vfs` — the file substrate: real files with directory
  fsyncs (:class:`OsVfs`) and the in-memory power-loss model the chaos
  battery crashes (:class:`MemVfs`).
* :mod:`repro.wal.format` — segment/frame layout and the scanner that
  separates torn tails from corruption.
* :mod:`repro.wal.log` — per-shard segment chains over one global LSN
  space, rotation, checkpoint-driven truncation.
* :mod:`repro.wal.pipeline` — group commit: one buffered write + one
  fsync per batch, adaptive linger, ``wal:{shard}`` fault sites.
* :mod:`repro.wal.checkpoint` — atomic, digest-keyed checkpoint files.
* :mod:`repro.wal.replay` — parallel shard scans merged into one
  LSN-ordered history.
* :mod:`repro.wal.durable` — the wrappers stores and gateways use.
"""

from repro.wal.checkpoint import CheckpointStore
from repro.wal.durable import (
    DurablePolicyStore,
    DurableRelationalStore,
    DurableStore,
    DurableUddiRegistry,
    DurableXmlStore,
    RecoveryReport,
)
from repro.wal.log import LsnAllocator, ShardedWal, WriteAheadLog
from repro.wal.pipeline import CommitPipeline, CommitTicket
from repro.wal.replay import RecoveryResult, recover, scan_shard
from repro.wal.vfs import MemVfs, OsVfs

__all__ = [
    "CheckpointStore",
    "CommitPipeline",
    "CommitTicket",
    "DurablePolicyStore",
    "DurableRelationalStore",
    "DurableStore",
    "DurableUddiRegistry",
    "DurableXmlStore",
    "LsnAllocator",
    "MemVfs",
    "OsVfs",
    "RecoveryReport",
    "RecoveryResult",
    "ShardedWal",
    "WriteAheadLog",
    "recover",
    "scan_shard",
]
