"""Group commit: many writers, one buffered write + one fsync per batch.

Naive durability syncs once per record; at ~6k fsyncs/s that caps the
whole store at ~6k writes/s regardless of CPU.  The pipeline instead
has writers *enqueue* framed records and either return immediately
(``ack-on-enqueue``) or block on a ticket (``ack-on-fsync``) while a
single flusher drains the queue: every drain is one ``write()`` of the
concatenated frames and one ``sync()``, so the fsync cost is shared by
every record in the batch.  The flusher lingers briefly when a batch is
small — adaptive, a fraction of the *measured* sync cost, mirroring the
gateway's partial-batch linger — trading that bounded latency for
batch depth.

LSNs are allocated at submit time, under the queue mutex, so queue
order, LSN order, and file order all agree per shard.

Fault site ``wal:{shard}`` (one step per batch sync):

* CRASH / DROP — the device refused the batch.  Every ticket in it
  fails with a typed :class:`~repro.core.errors.WalError`; the records
  are *not* acknowledged and the pipeline seals itself, because a log
  whose tail failed mid-write must not accept later appends (ack-then
  -loss is the one unforgivable durability sin).
* CORRUPT — the batch "succeeds" but its bytes rot on the platter
  (deterministic single-byte damage), to be discovered by recovery.
* DELAY — charged to the shared fault clock, modelling a stalled
  device.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.core.errors import DurabilityLagExceeded, WalError
from repro.faults.plan import FaultKind
from repro.wal.format import encode_frame
from repro.wal.log import WriteAheadLog

#: Upper bound on the adaptive linger; the EMA usually keeps it far
#: lower (a fraction of one measured sync).
MAX_LINGER_SECONDS = 0.002
#: Linger as a fraction of the measured sync cost: waiting ~half an
#: fsync for more company is at worst a 1.5x latency hit for an up-to
#: -batch-size throughput win.
LINGER_FRACTION = 0.5


@dataclass
class PipelineStats:
    submitted: int = 0
    batches: int = 0
    records_flushed: int = 0
    bytes_flushed: int = 0
    syncs: int = 0
    max_batch: int = 0
    faults_injected: int = 0

    def snapshot(self) -> dict[str, float]:
        stats = dict(self.__dict__)
        stats["mean_batch"] = (self.records_flushed / self.batches
                               if self.batches else 0.0)
        return stats


class CommitTicket:
    """One writer's claim on a batch: wait() blocks until the fsync
    that covers this record has happened (or failed, typed)."""

    __slots__ = ("lsn", "_event", "_error")

    def __init__(self, lsn: int) -> None:
        self.lsn = lsn
        self._event = threading.Event()
        self._error: WalError | None = None

    def _resolve(self, error: WalError | None = None) -> None:
        self._error = error
        self._event.set()

    @property
    def synced(self) -> bool:
        return self._event.is_set() and self._error is None

    def wait(self, timeout: float | None = None) -> int:
        if not self._event.wait(timeout):
            raise WalError(f"timed out waiting for LSN {self.lsn} "
                           f"to become durable")
        if self._error is not None:
            raise self._error
        return self.lsn


class CommitPipeline:
    """One shard's group-commit queue + flusher.

    ``auto_flush=True`` (the default) runs a daemon flusher thread;
    ``auto_flush=False`` leaves draining to explicit :meth:`flush`
    calls, which is what deterministic tests and the chaos battery use
    — same code path, no wall-clock dependence.
    """

    def __init__(self, log: WriteAheadLog, *,
                 max_batch: int = 256,
                 max_lag: int = 4096,
                 auto_flush: bool = True,
                 injector=None,
                 vfs=None) -> None:
        self.log = log
        self.max_batch = max_batch
        self.max_lag = max_lag
        self.injector = injector
        self.vfs = vfs
        self.stats = PipelineStats()
        self._site = f"wal:{log.shard}"
        self._mutex = threading.Lock()
        # Serializes take-batch + write + sync: concurrent flush()
        # callers would otherwise take disjoint batches and race to
        # append them, and a later-LSN batch landing first makes the
        # earlier append a WalError — applied-but-unlogged records.
        self._flush_mutex = threading.Lock()
        self._wakeup = threading.Condition(self._mutex)
        self._queue: list[tuple[CommitTicket, bytes]] = []
        self._sealed: WalError | None = None
        self._closed = False
        self._sync_cost_ema = 0.0
        self._flusher = None
        if auto_flush:
            self._flusher = threading.Thread(
                target=self._flush_loop,
                name=f"wal-flusher-{log.shard}", daemon=True)
            self._flusher.start()

    # -- writer side -------------------------------------------------------

    def submit(self, payload: bytes) -> CommitTicket:
        """Frame and enqueue one record; returns its ticket.

        ``ack-on-fsync`` callers ``ticket.wait()``; ``ack-on-enqueue``
        callers return immediately but are thrown
        :class:`DurabilityLagExceeded` here, at submit, once more than
        ``max_lag`` records are waiting on the device — unbounded
        not-yet-durable acknowledgement is how a "fast" log quietly
        stops being a log.
        """
        with self._mutex:
            if self._sealed is not None:
                raise WalError(
                    f"commit pipeline for shard {self.log.shard} is "
                    f"sealed after a write fault: {self._sealed}")
            if self._closed:
                raise WalError("commit pipeline is closed")
            if len(self._queue) >= self.max_lag:
                raise DurabilityLagExceeded(len(self._queue),
                                            self.max_lag)
            lsn = self.log.allocator.allocate()
            ticket = CommitTicket(lsn)
            self._queue.append(
                (ticket, encode_frame(lsn, payload, self.log._alg_id)))
            self.stats.submitted += 1
            self._wakeup.notify()
            return ticket

    @property
    def lag(self) -> int:
        with self._mutex:
            return len(self._queue)

    # -- flusher side ------------------------------------------------------

    def _take_batch(self) -> list[tuple[CommitTicket, bytes]]:
        with self._mutex:
            batch = self._queue[:self.max_batch]
            del self._queue[:len(batch)]
            return batch

    def flush(self) -> int:
        """Drain one batch through write+sync; returns records flushed.

        Called by the flusher thread, or directly in ``auto_flush=
        False`` mode.  Safe to call concurrently with submits *and*
        with other flush() calls — batches are taken and written under
        one flush mutex, so batch order stays LSN order.
        """
        with self._flush_mutex:
            batch = self._take_batch()
            if not batch:
                return 0
            try:
                return self._flush_batch(batch)
            except WalError as exc:
                self._fail_batch(batch, exc)
                raise
            except Exception as exc:
                error = WalError(f"wal flush failed on shard "
                                 f"{self.log.shard}: {exc}")
                self._fail_batch(batch, error)
                raise error from exc

    def _fail_batch(self, batch: list[tuple[CommitTicket, bytes]],
                    error: WalError) -> None:
        """Seal the pipeline and fail every ticket of a taken batch —
        a taken-but-unresolved ticket strands its waiter forever."""
        with self._mutex:
            self._sealed = self._sealed or error
        for ticket, _ in batch:
            ticket._resolve(error)

    def _flush_batch(self, batch: list[tuple[CommitTicket, bytes]]) -> int:
        error: WalError | None = None
        corrupt_after = False
        if self.injector is not None:
            for event in self.injector.step(self._site):
                self.stats.faults_injected += 1
                if event.kind in (FaultKind.CRASH, FaultKind.DROP):
                    error = WalError(
                        f"wal device fault ({event.kind.value}) on "
                        f"shard {self.log.shard}: batch of "
                        f"{len(batch)} records not durable")
                elif event.kind is FaultKind.CORRUPT:
                    corrupt_after = True
                # DELAY is charged by injector.step via the fault clock
        if error is not None:
            self._fail_batch(batch, error)
            return 0
        data = b"".join(frame for _, frame in batch)
        started = time.perf_counter()
        self.log.append_encoded(data, batch[-1][0].lsn, len(batch))
        self.log.sync()
        elapsed = time.perf_counter() - started
        self._sync_cost_ema = (elapsed if self._sync_cost_ema == 0.0
                               else 0.8 * self._sync_cost_ema
                               + 0.2 * elapsed)
        if corrupt_after and self.vfs is not None:
            self._corrupt_tail(len(data))
        for ticket, _ in batch:
            ticket._resolve()
        self.stats.batches += 1
        self.stats.records_flushed += len(batch)
        self.stats.bytes_flushed += len(data)
        self.stats.syncs += 1
        self.stats.max_batch = max(self.stats.max_batch, len(batch))
        return len(batch)

    def _corrupt_tail(self, batch_bytes: int) -> None:
        """CORRUPT overlay: rot one byte of the just-synced batch in
        the durable image (MemVfs only — the power-loss model)."""
        from repro.wal.format import segment_name
        name = segment_name(self.log.shard, self.log._index)
        if not self.vfs.exists(name):  # batch sealed into previous file
            names = [n for n in self.vfs.listdir()
                     if n.startswith(f"seg-{self.log.shard:03d}-")]
            if not names:
                return
            name = names[-1]
        size = self.vfs.durable_size(name)
        damaged = self.injector.corrupt_bytes(b"\x00" * batch_bytes,
                                              self._site)
        offset = next(i for i, b in enumerate(damaged) if b != 0)
        # Clamp into this file in case the batch spanned a rotation.
        self.vfs.corrupt_byte(
            name, max(0, min(size - 1, size - batch_bytes + offset)))

    def _linger(self) -> float:
        return min(MAX_LINGER_SECONDS,
                   self._sync_cost_ema * LINGER_FRACTION) or 0.0001

    def _flush_loop(self) -> None:
        while True:
            with self._mutex:
                while not self._queue and not self._closed:
                    self._wakeup.wait()
                if self._closed and not self._queue:
                    return
                depth = len(self._queue)
            if 0 < depth < self.max_batch:
                # Partial batch: linger a fraction of one sync cost to
                # let concurrent writers pile in, then take whatever
                # arrived.
                time.sleep(self._linger())
            try:
                self.flush()
            except WalError as exc:
                with self._mutex:
                    self._sealed = self._sealed or exc
                    drained = self._queue[:]
                    self._queue.clear()
                for ticket, _ in drained:
                    ticket._resolve(self._sealed)

    def close(self) -> None:
        with self._mutex:
            self._closed = True
            self._wakeup.notify_all()
        if self._flusher is not None:
            self._flusher.join(timeout=5.0)
        while self.flush():
            pass

    def stats_snapshot(self) -> dict[str, float]:
        snap = self.stats.snapshot()
        snap["lag"] = self.lag
        snap["sealed"] = self._sealed is not None
        return snap
