"""The five W3C WSA privacy requirements (§4.2) as checkable predicates.

"The working draft specifies five privacy requirements for enabling
privacy protection for the consumer of a web service across multiple
domains and services":

R1. the WSA must enable privacy policy statements to be expressed about
    web services;
R2. advertised web service privacy policies must be expressed in P3P;
R3. the WSA must enable a consumer to access a web service's advertised
    privacy policy statement;
R4. the WSA must enable delegation and propagation of privacy policy;
R5. web services must not be precluded from supporting interactions
    where one or more parties of the interaction are anonymous.

:class:`WsaPrivacyAudit` evaluates a deployment description against all
five and produces the compliance report benchmark E10 prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.p3p.matching import propagation_violations
from repro.p3p.policy import DataCategory, P3PPolicy


@dataclass(frozen=True)
class ServiceRegistration:
    """How one service presents itself to the audit."""

    name: str
    policy: P3PPolicy | None            # None = no advertised policy (R1/R2)
    policy_retrievable: bool = True     # can consumers fetch it? (R3)
    supports_anonymous: bool = True     # anonymous interactions (R5)
    delegates_to: tuple[str, ...] = ()
    delegated_categories: tuple[DataCategory, ...] = ()


@dataclass(frozen=True)
class RequirementResult:
    requirement: str
    passed: bool
    details: tuple[str, ...] = ()


@dataclass(frozen=True)
class AuditReport:
    results: tuple[RequirementResult, ...]

    @property
    def compliant(self) -> bool:
        return all(r.passed for r in self.results)

    def failed(self) -> list[RequirementResult]:
        return [r for r in self.results if not r.passed]


class WsaPrivacyAudit:
    """Audits a set of service registrations against R1–R5."""

    def __init__(self, services: Sequence[ServiceRegistration]) -> None:
        self.services = list(services)
        self._by_name: Mapping[str, ServiceRegistration] = {
            s.name: s for s in services}

    def check_r1_policies_expressible(self) -> RequirementResult:
        missing = tuple(s.name for s in self.services if s.policy is None)
        return RequirementResult(
            "R1: privacy policy statements expressed", not missing,
            tuple(f"{name} advertises no policy" for name in missing))

    def check_r2_policies_in_p3p(self) -> RequirementResult:
        # In this model a policy object *is* P3P; the check is that every
        # advertised policy passes the task-force baseline.
        bad: list[str] = []
        for service in self.services:
            if service.policy is None:
                continue
            for violation in service.policy.baseline_violations():
                bad.append(f"{service.name}: {violation}")
        return RequirementResult(
            "R2: P3P policies meet the task-force baseline", not bad,
            tuple(bad))

    def check_r3_policies_accessible(self) -> RequirementResult:
        hidden = tuple(
            s.name for s in self.services
            if s.policy is not None and not s.policy_retrievable)
        return RequirementResult(
            "R3: consumers can access advertised policies", not hidden,
            tuple(f"{name} hides its policy" for name in hidden))

    def check_r4_delegation_propagates(self) -> RequirementResult:
        problems: list[str] = []
        for service in self.services:
            if not service.delegates_to or service.policy is None:
                continue
            for target_name in service.delegates_to:
                target = self._by_name.get(target_name)
                if target is None or target.policy is None:
                    problems.append(
                        f"{service.name} delegates to {target_name} "
                        f"which has no policy")
                    continue
                chain = [service.policy, target.policy]
                for violation in propagation_violations(
                        chain, service.delegated_categories):
                    problems.append(
                        f"{service.name}->{target_name}: {violation}")
        return RequirementResult(
            "R4: delegation propagates privacy policy", not problems,
            tuple(problems))

    def check_r5_anonymity_supported(self) -> RequirementResult:
        blocking = tuple(s.name for s in self.services
                         if not s.supports_anonymous)
        return RequirementResult(
            "R5: anonymous interactions not precluded", not blocking,
            tuple(f"{name} requires identification" for name in blocking))

    def run(self) -> AuditReport:
        return AuditReport((
            self.check_r1_policies_expressible(),
            self.check_r2_policies_in_p3p(),
            self.check_r3_policies_accessible(),
            self.check_r4_delegation_propagates(),
            self.check_r5_anonymity_supported(),
        ))
