"""P3P privacy policies (§4.2: "advertised web service privacy policies
must be expressed in P3P").

A :class:`P3PPolicy` is a set of :class:`Statement` s, each declaring —
for a group of data categories — the purposes of collection, the
recipients, and the retention policy, plus whether consent is required.
The vocabularies are the core P3P 1.0 ones (trimmed to the values the
paper's scenarios exercise).

The W3C task-force baseline of §4.2 is captured by
:meth:`P3PPolicy.baseline_violations`: "collected personal information
must not be used or disclosed for purposes other than performing the
operations for which it was collected, except with the consent of the
subject or as required by law.  Additionally, such information must be
retained only as long as necessary."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable


class Purpose(enum.Enum):
    CURRENT = "current"              # the service's own operation
    ADMIN = "admin"                  # site administration
    DEVELOP = "develop"              # research & development
    TAILORING = "tailoring"          # one-session customization
    PSEUDO_ANALYSIS = "pseudo-analysis"
    INDIVIDUAL_ANALYSIS = "individual-analysis"
    CONTACT = "contact"              # marketing contact
    TELEMARKETING = "telemarketing"


class Recipient(enum.Enum):
    OURS = "ours"                    # the service itself
    DELIVERY = "delivery"            # delivery services
    SAME = "same"                    # agents under the same practices
    OTHER_RECIPIENT = "other-recipient"
    UNRELATED = "unrelated"
    PUBLIC = "public"


class Retention(enum.Enum):
    NO_RETENTION = "no-retention"
    STATED_PURPOSE = "stated-purpose"
    LEGAL_REQUIREMENT = "legal-requirement"
    BUSINESS_PRACTICES = "business-practices"
    INDEFINITELY = "indefinitely"


class DataCategory(enum.Enum):
    PHYSICAL = "physical"            # name, address
    ONLINE = "online"                # email, identifiers
    DEMOGRAPHIC = "demographic"
    FINANCIAL = "financial"
    HEALTH = "health"
    LOCATION = "location"
    PURCHASE = "purchase"
    NAVIGATION = "navigation"


#: Purposes the baseline treats as the operation data was collected for.
OPERATIONAL_PURPOSES = frozenset({Purpose.CURRENT, Purpose.ADMIN,
                                  Purpose.TAILORING})
#: Recipients beyond the collecting service and its delivery agents.
THIRD_PARTY_RECIPIENTS = frozenset({Recipient.OTHER_RECIPIENT,
                                    Recipient.UNRELATED, Recipient.PUBLIC})


@dataclass(frozen=True)
class Statement:
    """One P3P statement covering some data categories."""

    categories: frozenset[DataCategory]
    purposes: frozenset[Purpose]
    recipients: frozenset[Recipient]
    retention: Retention
    consent_obtained: bool = False
    legally_required: bool = False

    def covers(self, category: DataCategory) -> bool:
        return category in self.categories


def statement(categories: Iterable[DataCategory],
              purposes: Iterable[Purpose],
              recipients: Iterable[Recipient] = (Recipient.OURS,),
              retention: Retention = Retention.STATED_PURPOSE,
              consent_obtained: bool = False,
              legally_required: bool = False) -> Statement:
    return Statement(frozenset(categories), frozenset(purposes),
                     frozenset(recipients), retention,
                     consent_obtained, legally_required)


@dataclass(frozen=True)
class P3PPolicy:
    """A service's advertised privacy policy."""

    entity: str
    statements: tuple[Statement, ...]
    access_offered: bool = True      # P3P ACCESS element, simplified
    disputes_url: str = ""

    def statements_for(self, category: DataCategory) -> list[Statement]:
        return [s for s in self.statements if s.covers(category)]

    def collects(self, category: DataCategory) -> bool:
        return bool(self.statements_for(category))

    def baseline_violations(self) -> list[str]:
        """Violations of the §4.2 W3C task-force baseline."""
        problems: list[str] = []
        for index, stmt in enumerate(self.statements):
            beyond = stmt.purposes - OPERATIONAL_PURPOSES
            if beyond and not (stmt.consent_obtained
                               or stmt.legally_required):
                names = sorted(p.value for p in beyond)
                problems.append(
                    f"statement {index}: non-operational purposes "
                    f"{names} without consent")
            shared = stmt.recipients & THIRD_PARTY_RECIPIENTS
            if shared and not (stmt.consent_obtained
                               or stmt.legally_required):
                names = sorted(r.value for r in shared)
                problems.append(
                    f"statement {index}: third-party recipients {names} "
                    f"without consent")
            if stmt.retention is Retention.INDEFINITELY:
                problems.append(
                    f"statement {index}: indefinite retention")
        return problems

    def conforms_to_baseline(self) -> bool:
        return not self.baseline_violations()
