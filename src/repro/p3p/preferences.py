"""User privacy preferences (APPEL-style rules).

A consumer expresses, per data category, the purposes and recipients they
tolerate and the worst retention they accept; the matcher
(:mod:`repro.p3p.matching`) evaluates a service's policy against them —
the §4.2 requirement that "the WSA must enable a consumer to access a web
service's advertised privacy policy statement" only matters if the
consumer can then *decide*, which is what these rules encode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.p3p.policy import (
    DataCategory,
    Purpose,
    Recipient,
    Retention,
)

#: Retention orderings from least to most invasive.
RETENTION_ORDER = {
    Retention.NO_RETENTION: 0,
    Retention.STATED_PURPOSE: 1,
    Retention.LEGAL_REQUIREMENT: 2,
    Retention.BUSINESS_PRACTICES: 3,
    Retention.INDEFINITELY: 4,
}


@dataclass(frozen=True)
class CategoryRule:
    """What the user tolerates for one data category."""

    category: DataCategory
    allowed_purposes: frozenset[Purpose]
    allowed_recipients: frozenset[Recipient]
    max_retention: Retention = Retention.STATED_PURPOSE
    require_access: bool = False

    def retention_acceptable(self, retention: Retention) -> bool:
        return (RETENTION_ORDER[retention]
                <= RETENTION_ORDER[self.max_retention])


@dataclass(frozen=True)
class PreferenceSet:
    """A user's complete preference profile.

    ``default_refuse`` controls categories with no explicit rule: True
    (refuse collection of anything unmentioned) is the strict profile;
    False accepts unmentioned categories with any practice.
    """

    name: str
    rules: tuple[CategoryRule, ...]
    default_refuse: bool = True

    def rule_for(self, category: DataCategory) -> CategoryRule | None:
        for rule in self.rules:
            if rule.category == category:
                return rule
        return None


def rule(category: DataCategory,
         purposes: Iterable[Purpose],
         recipients: Iterable[Recipient] = (Recipient.OURS,),
         max_retention: Retention = Retention.STATED_PURPOSE,
         require_access: bool = False) -> CategoryRule:
    return CategoryRule(category, frozenset(purposes),
                        frozenset(recipients), max_retention,
                        require_access)


def strictness_profile(level: int, name: str = "") -> PreferenceSet:
    """Preference profiles of increasing strictness for benchmark E10.

    Level 0 — accept anything; 1 — no third-party sharing of identity or
    money; 2 — operational purposes only for all sensitive categories;
    3 — minimal collection, no retention beyond purpose, access required.
    """
    from repro.p3p.policy import OPERATIONAL_PURPOSES

    if level <= 0:
        return PreferenceSet(name or "anything-goes", (),
                             default_refuse=False)
    safe_recipients = frozenset({Recipient.OURS, Recipient.DELIVERY,
                                 Recipient.SAME})
    sensitive = (DataCategory.PHYSICAL, DataCategory.ONLINE,
                 DataCategory.FINANCIAL, DataCategory.HEALTH)
    if level == 1:
        rules = tuple(
            CategoryRule(category, frozenset(Purpose),
                         safe_recipients, Retention.BUSINESS_PRACTICES)
            for category in sensitive)
        return PreferenceSet(name or "no-third-parties", rules,
                             default_refuse=False)
    if level == 2:
        rules = tuple(
            CategoryRule(category, frozenset(OPERATIONAL_PURPOSES),
                         safe_recipients, Retention.STATED_PURPOSE)
            for category in sensitive)
        return PreferenceSet(name or "operational-only", rules,
                             default_refuse=False)
    rules = tuple(
        CategoryRule(category, frozenset({Purpose.CURRENT}),
                     frozenset({Recipient.OURS}),
                     Retention.STATED_PURPOSE, require_access=True)
        for category in DataCategory)
    return PreferenceSet(name or "minimal", rules, default_refuse=True)
