"""Policy/preference matching and cross-service propagation.

The matcher answers "may I use this service?" for a consumer; the
propagation checker covers §4.2's fourth requirement: "the WSA must
enable delegation and propagation of privacy policy" — when service A
passes collected data to service B, B's policy must be at least as
protective for the delegated categories, or the chain is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.p3p.policy import DataCategory, P3PPolicy, Statement
from repro.p3p.preferences import PreferenceSet, RETENTION_ORDER


@dataclass(frozen=True)
class Mismatch:
    """One reason a policy fails a preference set."""

    category: DataCategory
    reason: str

    def __str__(self) -> str:
        return f"{self.category.value}: {self.reason}"


@dataclass(frozen=True)
class MatchResult:
    acceptable: bool
    mismatches: tuple[Mismatch, ...]

    def __bool__(self) -> bool:
        return self.acceptable


def match(policy: P3PPolicy, preferences: PreferenceSet) -> MatchResult:
    """Evaluate a service policy against user preferences."""
    mismatches: list[Mismatch] = []
    for category in DataCategory:
        statements = policy.statements_for(category)
        if not statements:
            continue  # the service does not collect this category
        preference = preferences.rule_for(category)
        if preference is None:
            if preferences.default_refuse:
                mismatches.append(Mismatch(
                    category, "collected but no preference rule allows it"))
            continue
        for stmt in statements:
            bad_purposes = stmt.purposes - preference.allowed_purposes
            if bad_purposes:
                names = sorted(p.value for p in bad_purposes)
                mismatches.append(Mismatch(
                    category, f"purposes {names} not allowed"))
            bad_recipients = (stmt.recipients
                              - preference.allowed_recipients)
            if bad_recipients:
                names = sorted(r.value for r in bad_recipients)
                mismatches.append(Mismatch(
                    category, f"recipients {names} not allowed"))
            if not preference.retention_acceptable(stmt.retention):
                mismatches.append(Mismatch(
                    category,
                    f"retention {stmt.retention.value} exceeds "
                    f"{preference.max_retention.value}"))
        if preference.require_access and not policy.access_offered:
            mismatches.append(Mismatch(category, "no access offered"))
    return MatchResult(not mismatches, tuple(mismatches))


# -- delegation / propagation (§4.2 requirement 4) --------------------------


def statement_at_most(delegate: Statement, origin: Statement) -> bool:
    """Is the delegate's practice no more invasive than the origin's?"""
    if not delegate.purposes <= origin.purposes:
        return False
    if not delegate.recipients <= origin.recipients:
        return False
    return (RETENTION_ORDER[delegate.retention]
            <= RETENTION_ORDER[origin.retention])


def propagation_violations(chain: Sequence[P3PPolicy],
                           categories: Sequence[DataCategory]
                           ) -> list[str]:
    """Check a delegation chain: service i passes the categories to
    service i+1; every downstream policy must be at most as invasive as
    its upstream for each delegated category."""
    problems: list[str] = []
    for index in range(len(chain) - 1):
        upstream, downstream = chain[index], chain[index + 1]
        for category in categories:
            upstream_statements = upstream.statements_for(category)
            downstream_statements = downstream.statements_for(category)
            if not upstream_statements:
                if downstream_statements:
                    problems.append(
                        f"hop {index}->{index + 1}: {category.value} "
                        f"appears downstream but was never collected "
                        f"upstream")
                continue
            for down_stmt in downstream_statements:
                if not any(statement_at_most(down_stmt, up_stmt)
                           for up_stmt in upstream_statements):
                    problems.append(
                        f"hop {index}->{index + 1}: {category.value} "
                        f"practice broadens downstream")
    return problems


def chain_acceptable(chain: Sequence[P3PPolicy],
                     categories: Sequence[DataCategory],
                     preferences: PreferenceSet) -> bool:
    """A consumer accepts a delegation chain when the entry policy
    matches their preferences and no hop broadens the practices."""
    if not chain:
        return True
    if not match(chain[0], preferences):
        return False
    return not propagation_violations(chain, categories)
