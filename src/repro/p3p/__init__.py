"""Privacy for web services (§4.2): P3P policies, APPEL-style user
preferences, matching + delegation propagation, and the five W3C WSA
privacy requirements as an auditable checklist.
"""

from repro.p3p.matching import (
    MatchResult,
    Mismatch,
    chain_acceptable,
    match,
    propagation_violations,
    statement_at_most,
)
from repro.p3p.policy import (
    OPERATIONAL_PURPOSES,
    THIRD_PARTY_RECIPIENTS,
    DataCategory,
    P3PPolicy,
    Purpose,
    Recipient,
    Retention,
    Statement,
    statement,
)
from repro.p3p.preferences import (
    RETENTION_ORDER,
    CategoryRule,
    PreferenceSet,
    rule,
    strictness_profile,
)
from repro.p3p.wsa_requirements import (
    AuditReport,
    RequirementResult,
    ServiceRegistration,
    WsaPrivacyAudit,
)

__all__ = [
    "AuditReport", "CategoryRule", "DataCategory", "MatchResult",
    "Mismatch", "OPERATIONAL_PURPOSES", "P3PPolicy", "PreferenceSet",
    "Purpose", "RETENTION_ORDER", "Recipient", "RequirementResult",
    "Retention", "ServiceRegistration", "Statement",
    "THIRD_PARTY_RECIPIENTS", "WsaPrivacyAudit", "chain_acceptable",
    "match", "propagation_violations", "rule", "statement",
    "statement_at_most", "strictness_profile",
]
