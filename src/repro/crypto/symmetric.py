"""Symmetric encryption with integrity protection.

Secure dissemination (Author-X [5], §4.1) encrypts different document
portions with different keys, one per *policy configuration*.  What the
semantics requires is (a) the right key decrypts, (b) a wrong key fails
loudly rather than yielding garbage, and (c) ciphertext reveals nothing
obvious.  We provide a SHA-256-counter stream cipher plus an
encrypt-then-MAC tag; wrong-key decryption raises
:class:`~repro.core.errors.IntegrityError`.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.core.errors import IntegrityError, KeyManagementError
from repro.crypto.hashing import keystream


@dataclass(frozen=True)
class SymmetricKey:
    """A named symmetric key.

    ``key_id`` travels with ciphertexts so receivers know which key to
    use — this mirrors how Author-X labels encrypted portions with the
    policy configuration they belong to.
    """

    key_id: str
    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) < 16:
            raise KeyManagementError(
                f"key {self.key_id!r}: need >=16 bytes of material")

    @classmethod
    def derive(cls, key_id: str, secret: str) -> "SymmetricKey":
        """Derive a key deterministically from a string secret."""
        material = hashlib.sha256(
            f"symmetric:{key_id}:{secret}".encode("utf-8")).digest()
        return cls(key_id, material)


@dataclass(frozen=True)
class Ciphertext:
    """Encrypted payload: key id + nonce + body + MAC tag."""

    key_id: str
    nonce: bytes
    body: bytes
    tag: str

    def __len__(self) -> int:
        return len(self.body)


def _mac(key: SymmetricKey, nonce: bytes, body: bytes) -> str:
    return hmac.new(key.material, nonce + body, hashlib.sha256).hexdigest()


def encrypt(key: SymmetricKey, plaintext: bytes | str,
            nonce: bytes | int = 0) -> Ciphertext:
    """Encrypt-then-MAC under *key*.

    *nonce* may be an int (converted to 8 bytes) — callers must use a
    fresh nonce per message under the same key; the key store in
    :mod:`repro.crypto.keys` automates that.
    """
    if isinstance(plaintext, str):
        plaintext = plaintext.encode("utf-8")
    if isinstance(nonce, int):
        nonce = nonce.to_bytes(8, "big")
    stream = keystream(key.material, len(plaintext), nonce)
    body = bytes(a ^ b for a, b in zip(plaintext, stream))
    return Ciphertext(key.key_id, nonce, body, _mac(key, nonce, body))


def decrypt(key: SymmetricKey, ciphertext: Ciphertext) -> bytes:
    """Verify the MAC then decrypt; raises IntegrityError on any mismatch."""
    if key.key_id != ciphertext.key_id:
        raise KeyManagementError(
            f"ciphertext was encrypted under key {ciphertext.key_id!r}, "
            f"got {key.key_id!r}")
    expected = _mac(key, ciphertext.nonce, ciphertext.body)
    if not hmac.compare_digest(expected, ciphertext.tag):
        raise IntegrityError(
            f"MAC check failed for ciphertext under key "
            f"{ciphertext.key_id!r}")
    stream = keystream(key.material, len(ciphertext.body), ciphertext.nonce)
    return bytes(a ^ b for a, b in zip(ciphertext.body, stream))


def decrypt_text(key: SymmetricKey, ciphertext: Ciphertext) -> str:
    return decrypt(key, ciphertext).decode("utf-8")
