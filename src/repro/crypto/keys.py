"""Key management: stores, nonce discipline and selective distribution.

The dissemination scheme of [5]/§4.1 hinges on key *distribution*: "the
service provider is responsible for distributing keys to the service
requestors in such a way that each service requestor receives all and only
the keys corresponding to the information it is entitled to access".
:class:`KeyDistributor` implements exactly that contract and the tests
assert the *all and only* part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.errors import KeyManagementError
from repro.crypto.symmetric import Ciphertext, SymmetricKey, decrypt, encrypt


class KeyStore:
    """Holds symmetric keys and enforces fresh nonces per key."""

    def __init__(self, secret: str = "keystore") -> None:
        self._secret = secret
        self._keys: dict[str, SymmetricKey] = {}
        self._nonce_counters: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key_id: str) -> bool:
        return key_id in self._keys

    def create(self, key_id: str) -> SymmetricKey:
        if key_id in self._keys:
            raise KeyManagementError(f"key {key_id!r} already exists")
        key = SymmetricKey.derive(key_id, self._secret)
        self._keys[key_id] = key
        self._nonce_counters[key_id] = 0
        return key

    def get_or_create(self, key_id: str) -> SymmetricKey:
        if key_id in self._keys:
            return self._keys[key_id]
        return self.create(key_id)

    def get(self, key_id: str) -> SymmetricKey:
        try:
            return self._keys[key_id]
        except KeyError:
            raise KeyManagementError(f"unknown key {key_id!r}") from None

    def import_key(self, key: SymmetricKey) -> None:
        """Install a key received from a distributor."""
        existing = self._keys.get(key.key_id)
        if existing is not None and existing.material != key.material:
            raise KeyManagementError(
                f"conflicting material for key {key.key_id!r}")
        self._keys[key.key_id] = key
        self._nonce_counters.setdefault(key.key_id, 0)

    def key_ids(self) -> list[str]:
        return sorted(self._keys)

    def reserve_nonce(self, key_id: str) -> int:
        """Claim the next fresh nonce for *key_id*.

        Lets callers split nonce allocation (stateful, must be serial)
        from the encryption itself (:func:`repro.crypto.symmetric.encrypt`
        is pure, so reserved-nonce encryptions may run on worker threads
        — see ``Disseminator.package(workers=...)``).
        """
        self.get(key_id)  # raises KeyManagementError on unknown keys
        nonce = self._nonce_counters[key_id]
        self._nonce_counters[key_id] = nonce + 1
        return nonce

    def encrypt(self, key_id: str, plaintext: bytes | str) -> Ciphertext:
        """Encrypt with an automatically fresh nonce."""
        key = self.get(key_id)
        nonce = self.reserve_nonce(key_id)
        return encrypt(key, plaintext, nonce)

    def decrypt(self, ciphertext: Ciphertext) -> bytes:
        return decrypt(self.get(ciphertext.key_id), ciphertext)


@dataclass(frozen=True)
class KeyGrant:
    """The result of distributing keys to one recipient."""

    recipient: str
    keys: tuple[SymmetricKey, ...]

    def key_ids(self) -> list[str]:
        return sorted(k.key_id for k in self.keys)


class KeyDistributor:
    """Distributes, per recipient, *all and only* the keys they may hold.

    The owner registers an entitlement function mapping a recipient name
    to the set of key ids it is entitled to; :meth:`grant` materializes
    the keys from the owner's store.  Distribution is recorded so audits
    can answer "who holds key k?".
    """

    def __init__(self, store: KeyStore,
                 entitlement: Callable[[str], Iterable[str]]) -> None:
        self._store = store
        self._entitlement = entitlement
        self._granted: dict[str, set[str]] = {}

    def grant(self, recipient: str) -> KeyGrant:
        entitled = sorted(set(self._entitlement(recipient)))
        keys = tuple(self._store.get(key_id) for key_id in entitled)
        self._granted.setdefault(recipient, set()).update(entitled)
        return KeyGrant(recipient, keys)

    def holders_of(self, key_id: str) -> list[str]:
        return sorted(r for r, ids in self._granted.items()
                      if key_id in ids)

    def granted_to(self, recipient: str) -> set[str]:
        return set(self._granted.get(recipient, set()))
