"""Textbook RSA: key generation, signing and encryption.

The paper's mechanisms ([3], [4], §4.1) need *real* asymmetric semantics —
anyone can verify a signature with the public key, only the private key
can produce it — but not production-grade strength.  We therefore
implement honest textbook RSA over primes found with Miller–Rabin, with a
deterministic key generator seeded per caller so tests and benchmarks are
reproducible.  Default modulus size is 512 bits: large enough that
accidental collisions are impossible, small enough that keygen is fast on
a laptop.

Signatures sign the SHA-256 digest of the message (hash-then-sign).
Encryption is raw RSA on integers smaller than the modulus; for bulk data
use :mod:`repro.crypto.symmetric` with an RSA-wrapped key (the classical
hybrid scheme, provided as :func:`hybrid_encrypt` / :func:`hybrid_decrypt`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import AuthenticationError, KeyManagementError
from repro.crypto.hashing import keystream, sha256_int

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
                 53, 59, 61, 67, 71, 73, 79, 83, 89, 97]


def _is_probable_prime(n: int, rng: random.Random, rounds: int = 24) -> bool:
    """Miller–Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class PublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def fingerprint(self) -> str:
        """Short stable identifier for key stores and audit records."""
        from repro.crypto.hashing import sha256_hex
        return sha256_hex(f"{self.n:x}:{self.e:x}")[:16]


@dataclass(frozen=True)
class PrivateKey:
    """RSA private key; carries the matching public part."""

    n: int
    d: int
    public: PublicKey


@dataclass(frozen=True)
class KeyPair:
    public: PublicKey
    private: PrivateKey


def generate_keypair(bits: int = 512, seed: int | None = None) -> KeyPair:
    """Generate an RSA key pair.

    Parameters
    ----------
    bits:
        Modulus size.  512 by default (educational strength; see module
        docstring).
    seed:
        Seed for the deterministic RNG; pass distinct seeds for distinct
        actors in tests.
    """
    if bits < 64:
        raise KeyManagementError(f"modulus too small: {bits} bits")
    rng = random.Random(seed)
    e = 65537
    while True:
        p = _random_prime(bits // 2, rng)
        q = _random_prime(bits - bits // 2, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        n = p * q
        d = pow(e, -1, phi)
        public = PublicKey(n, e)
        return KeyPair(public, PrivateKey(n, d, public))


# -- signatures ---------------------------------------------------------

def sign(private: PrivateKey, message: bytes | str) -> int:
    """Hash-then-sign: signature = H(m)^d mod n."""
    digest = sha256_int(message) % private.n
    return pow(digest, private.d, private.n)


def verify(public: PublicKey, message: bytes | str, signature: int) -> bool:
    """True if *signature* is a valid signature of *message*."""
    digest = sha256_int(message) % public.n
    return pow(signature, public.e, public.n) == digest


def verify_or_raise(public: PublicKey, message: bytes | str,
                    signature: int, context: str = "") -> None:
    """Raise :class:`AuthenticationError` when verification fails."""
    if not verify(public, message, signature):
        suffix = f" ({context})" if context else ""
        raise AuthenticationError(f"signature verification failed{suffix}")


# -- encryption ---------------------------------------------------------

def encrypt_int(public: PublicKey, plaintext: int) -> int:
    if not 0 <= plaintext < public.n:
        raise KeyManagementError(
            "plaintext integer out of range for this modulus")
    return pow(plaintext, public.e, public.n)


def decrypt_int(private: PrivateKey, ciphertext: int) -> int:
    if not 0 <= ciphertext < private.n:
        raise KeyManagementError(
            "ciphertext integer out of range for this modulus")
    return pow(ciphertext, private.d, private.n)


def hybrid_encrypt(public: PublicKey, plaintext: bytes,
                   seed: int = 0) -> tuple[int, bytes]:
    """Encrypt arbitrary-length data: random session key wrapped with RSA.

    Returns ``(wrapped_key, ciphertext)``.  *seed* makes the session key
    deterministic for reproducible tests; vary it per message.
    """
    rng = random.Random(f"hybrid:{seed}:{len(plaintext)}")
    session_key = rng.getrandbits(128).to_bytes(16, "big")
    wrapped = encrypt_int(public, int.from_bytes(session_key, "big"))
    stream = keystream(session_key, len(plaintext))
    ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
    return wrapped, ciphertext


def hybrid_decrypt(private: PrivateKey, wrapped_key: int,
                   ciphertext: bytes) -> bytes:
    session_int = decrypt_int(private, wrapped_key)
    # A wrong key yields an arbitrary residue; keep the low 128 bits so
    # decryption proceeds (to garbage) rather than crashing.
    session_key = (session_int & ((1 << 128) - 1)).to_bytes(16, "big")
    stream = keystream(session_key, len(ciphertext))
    return bytes(a ^ b for a, b in zip(ciphertext, stream))
