"""Cryptographic substrate: hashing, RSA, symmetric encryption, key stores.

Educational-strength but semantically honest: signatures really require
the private key, wrong symmetric keys really fail, Merkle commitments
really bind.  See each module's docstring for the fidelity notes.
"""

from repro.crypto.hashing import chain, combine, keystream, sha256_hex, sha256_int
from repro.crypto.keys import KeyDistributor, KeyGrant, KeyStore
from repro.crypto.rsa import (
    KeyPair,
    PrivateKey,
    PublicKey,
    decrypt_int,
    encrypt_int,
    generate_keypair,
    hybrid_decrypt,
    hybrid_encrypt,
    sign,
    verify,
    verify_or_raise,
)
from repro.crypto.symmetric import (
    Ciphertext,
    SymmetricKey,
    decrypt,
    decrypt_text,
    encrypt,
)

__all__ = [
    "Ciphertext", "KeyDistributor", "KeyGrant", "KeyPair", "KeyStore",
    "PrivateKey", "PublicKey", "SymmetricKey", "chain", "combine",
    "decrypt", "decrypt_int", "decrypt_text", "encrypt", "encrypt_int",
    "generate_keypair", "hybrid_decrypt", "hybrid_encrypt", "keystream",
    "sha256_hex", "sha256_int", "sign", "verify", "verify_or_raise",
]
