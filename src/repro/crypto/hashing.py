"""Hashing helpers used across the library.

All content addressed by the security machinery (Merkle nodes, audit
chains, signatures) flows through these functions so the digest algorithm
is fixed in exactly one place.  SHA-256 from :mod:`hashlib` is used — the
paper assumes standard cryptographic hashing (Stallings [10]) and SHA-256
is available offline and deterministic.
"""

from __future__ import annotations

import hashlib
from typing import Iterable


def sha256_hex(data: bytes | str) -> str:
    """Hex digest of *data* (str is UTF-8 encoded)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def sha256_int(data: bytes | str) -> int:
    """Digest as an integer, convenient for RSA signing."""
    return int(sha256_hex(data), 16)


def combine(*parts: bytes | str) -> str:
    """Digest of a length-prefixed concatenation of *parts*.

    Length prefixing prevents ambiguity attacks where ``("ab", "c")`` and
    ``("a", "bc")`` would otherwise hash identically.
    """
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, str):
            part = part.encode("utf-8")
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.hexdigest()


def chain(digests: Iterable[str]) -> str:
    """Fold a sequence of hex digests into one commitment."""
    running = sha256_hex(b"chain-genesis")
    for digest in digests:
        running = combine(running, digest)
    return running


def keystream(key: bytes, length: int, nonce: bytes = b"") -> bytes:
    """Deterministic SHA-256-counter keystream of *length* bytes.

    Used by :mod:`repro.crypto.symmetric`; exported here because tests
    for both modules exercise it.
    """
    blocks: list[bytes] = []
    produced = 0
    counter = 0
    while produced < length:
        hasher = hashlib.sha256()
        hasher.update(key)
        hasher.update(nonce)
        hasher.update(counter.to_bytes(8, "big"))
        digest = hasher.digest()
        blocks.append(digest)
        produced += len(digest)
        counter += 1
    return b"".join(blocks)[:length]
