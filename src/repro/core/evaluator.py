"""Policy evaluation with pluggable conflict resolution.

Section 3.2 asks "How can we solve semantic inconsistencies for the
policies?" — the classical answer is an explicit conflict-resolution
strategy plus a default decision for requests no policy covers.  The
evaluator supports the strategies found in the access control literature
the paper builds on:

* DENY_OVERRIDES — any applicable DENY wins (the safe default);
* GRANT_OVERRIDES — any applicable GRANT wins;
* MOST_SPECIFIC — the policy whose resource pattern is most specific wins,
  ties resolved by DENY_OVERRIDES;
* PRIORITY — highest ``Policy.priority`` wins, ties by DENY_OVERRIDES.

and two defaults for uncovered requests: CLOSED (deny, conventional DBMS)
and OPEN (grant, public web content).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.audit import AuditLog
from repro.core.errors import AccessDenied
from repro.core.objects import ResourcePath
from repro.core.policy import Action, Policy, PolicyBase, Sign
from repro.core.subjects import Subject
from repro.perf.cache import MISS, GenerationalCache


class ConflictResolution(enum.Enum):
    DENY_OVERRIDES = "deny_overrides"
    GRANT_OVERRIDES = "grant_overrides"
    MOST_SPECIFIC = "most_specific"
    PRIORITY = "priority"


class DefaultDecision(enum.Enum):
    CLOSED = "closed"  # no applicable policy -> deny
    OPEN = "open"      # no applicable policy -> grant


@dataclass(frozen=True)
class Decision:
    """The outcome of evaluating one request.

    ``granted`` is the verdict; ``determining`` is the policy that decided
    it (None when the default decision applied); ``applicable`` is every
    policy that matched, for explanation and audit.
    """

    granted: bool
    determining: Policy | None
    applicable: tuple[Policy, ...]
    reason: str

    def __bool__(self) -> bool:
        return self.granted


class PolicyEvaluator:
    """Evaluates requests against a :class:`PolicyBase`.

    Parameters
    ----------
    policy_base:
        The policies to enforce.
    resolution:
        Conflict-resolution strategy for requests matched by both GRANT
        and DENY policies.
    default:
        Verdict when no policy applies at all.
    audit:
        Optional audit log; every decision is recorded when provided.
    cache_decisions:
        When True (default), payload-free decisions are memoized in a
        generation-stamped cache keyed by (subject, action, path); any
        policy add/remove invalidates every entry via the policy base's
        generation counter.  Decisions with a content payload are never
        cached — content conditions may read arbitrary payload state.
    """

    def __init__(self, policy_base: PolicyBase,
                 resolution: ConflictResolution = ConflictResolution.DENY_OVERRIDES,
                 default: DefaultDecision = DefaultDecision.CLOSED,
                 audit: AuditLog | None = None,
                 cache_decisions: bool = True) -> None:
        self.policy_base = policy_base
        self.resolution = resolution
        self.default = default
        self.audit = audit
        # Subject objects hash by identity and SubjectDirectory replaces
        # (never mutates) them on role/credential change, so the subject
        # itself is a sound cache key; keeping it in the key also pins it,
        # ruling out id-recycling aliases.
        self._decision_cache: GenerationalCache | None = (
            GenerationalCache(maxsize=4096) if cache_decisions else None)

    @property
    def decision_cache(self) -> GenerationalCache | None:
        """The generation-stamped decision cache (None when disabled).

        Exposed so that batch evaluation (:mod:`repro.scale.batch`) can
        share warm entries with the one-at-a-time path: a decision
        cached by either path is a hit for the other.
        """
        return self._decision_cache

    @property
    def cache_stats(self) -> dict[str, int | float] | None:
        """Decision-cache counters, or None when caching is disabled."""
        if self._decision_cache is None:
            return None
        return self._decision_cache.stats.snapshot()

    def invalidate_cache(self) -> None:
        """Drop every cached decision (generation stamps make this
        unnecessary for policy changes; exposed for external state such
        as changed content conditions)."""
        if self._decision_cache is not None:
            self._decision_cache.clear()

    def decide(self, subject: Subject, action: Action,
               path: ResourcePath | str,
               payload: object = None) -> Decision:
        """Evaluate a request and return the full decision object."""
        path = ResourcePath(path)
        cache = self._decision_cache if payload is None else None
        key = stamp = None
        if cache is not None:
            key = (subject, action, str(path))
            stamp = self.policy_base.generation
            decision = cache.get(key, stamp)
            if decision is not MISS:
                self.record(subject, action, path, decision)
                return decision
        applicable = self.policy_base.applicable(subject, action, path,
                                                 payload)
        decision = self.resolve(applicable)
        if cache is not None:
            cache.put(key, stamp, decision)
        self.record(subject, action, path, decision)
        return decision

    def record(self, subject: Subject, action: Action,
               path: ResourcePath, decision: Decision) -> None:
        if self.audit is not None:
            self.audit.record(
                subject=subject.identity.name, action=action.value,
                resource=str(path), granted=decision.granted,
                detail=decision.reason)

    def check(self, subject: Subject, action: Action,
              path: ResourcePath | str, payload: object = None) -> bool:
        """Boolean convenience wrapper around :meth:`decide`."""
        return self.decide(subject, action, path, payload).granted

    def enforce(self, subject: Subject, action: Action,
                path: ResourcePath | str, payload: object = None) -> Decision:
        """Like :meth:`decide` but raises :class:`AccessDenied` on deny."""
        decision = self.decide(subject, action, path, payload)
        if not decision.granted:
            raise AccessDenied(subject.identity.name, action.value,
                               str(ResourcePath(path)),
                               reason=decision.reason)
        return decision

    # -- conflict resolution -------------------------------------------

    def resolve(self, applicable: list[Policy]) -> Decision:
        """Turn the applicable-policy set into a :class:`Decision`.

        Public so that the batch engine (:mod:`repro.scale.batch`) can
        compute applicable sets its own way and still share this exact
        conflict-resolution logic — the batch-equivalence contract
        depends on both paths resolving identically.
        """
        if not applicable:
            granted = self.default is DefaultDecision.OPEN
            return Decision(granted, None, (),
                            f"default {self.default.value} world")
        grants = [p for p in applicable if p.sign is Sign.GRANT]
        denies = [p for p in applicable if p.sign is Sign.DENY]
        strategy = self.resolution
        if strategy is ConflictResolution.DENY_OVERRIDES:
            return self._deny_overrides(grants, denies, applicable)
        if strategy is ConflictResolution.GRANT_OVERRIDES:
            if grants:
                return Decision(True, grants[0], tuple(applicable),
                                f"grant-overrides by {grants[0]!r}")
            return Decision(False, denies[0], tuple(applicable),
                            f"denied by {denies[0]!r}")
        if strategy is ConflictResolution.MOST_SPECIFIC:
            best = max(p.resource.specificity for p in applicable)
            top = [p for p in applicable if p.resource.specificity == best]
            return self._deny_overrides(
                [p for p in top if p.sign is Sign.GRANT],
                [p for p in top if p.sign is Sign.DENY],
                applicable, note="most-specific tier")
        # PRIORITY
        best = max(p.priority for p in applicable)
        top = [p for p in applicable if p.priority == best]
        return self._deny_overrides(
            [p for p in top if p.sign is Sign.GRANT],
            [p for p in top if p.sign is Sign.DENY],
            applicable, note=f"priority={best} tier")

    @staticmethod
    def _deny_overrides(grants: list[Policy], denies: list[Policy],
                        applicable: list[Policy],
                        note: str = "") -> Decision:
        prefix = f"{note}: " if note else ""
        if denies:
            return Decision(False, denies[0], tuple(applicable),
                            f"{prefix}deny-overrides by {denies[0]!r}")
        if grants:
            return Decision(True, grants[0], tuple(applicable),
                            f"{prefix}granted by {grants[0]!r}")
        return Decision(False, None, tuple(applicable),
                        f"{prefix}no grant among applicable policies")
