"""Protection objects: the *what* of an access request.

Web resources are naturally hierarchical — a site contains collections,
collections contain documents, documents contain elements.  The paper's
§3.2 demands "a wide spectrum of access granularity levels, ranging from
sets of documents, to single documents, to specific portions within a
document".  We model this with slash-separated :class:`ResourcePath` values
("hospital/records/r17/diagnosis") plus glob-style patterns, so a single
policy can protect a whole subtree of the resource space.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterable, Iterator

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class ResourcePath:
    """An absolute, slash-separated path in the protection-object hierarchy.

    Paths are normalized: no empty segments, no leading/trailing slash
    stored internally.  The root path is ``ResourcePath("")`` whose
    ``segments`` is the empty tuple.
    """

    segments: tuple[str, ...]

    def __init__(self, path: "ResourcePath | str | Iterable[str]" = ()) -> None:
        if isinstance(path, ResourcePath):
            segments = path.segments
        elif isinstance(path, str):
            segments = tuple(s for s in path.split("/") if s)
        else:
            segments = tuple(path)
            if any("/" in s or not s for s in segments):
                raise ConfigurationError(
                    f"invalid path segments: {segments!r}")
        object.__setattr__(self, "segments", segments)

    def __str__(self) -> str:
        return "/".join(self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def name(self) -> str:
        """The last segment, or '' for the root."""
        return self.segments[-1] if self.segments else ""

    @property
    def parent(self) -> "ResourcePath":
        """The enclosing path; the root is its own parent."""
        return ResourcePath(self.segments[:-1])

    def child(self, segment: str) -> "ResourcePath":
        if "/" in segment or not segment:
            raise ConfigurationError(f"invalid path segment {segment!r}")
        return ResourcePath(self.segments + (segment,))

    def join(self, other: "ResourcePath | str") -> "ResourcePath":
        other = ResourcePath(other)
        return ResourcePath(self.segments + other.segments)

    def is_ancestor_of(self, other: "ResourcePath",
                       strict: bool = False) -> bool:
        """True if *other* lives under this path (reflexive by default)."""
        if strict and len(other) <= len(self):
            return False
        return other.segments[:len(self)] == self.segments

    def ancestors(self, include_self: bool = True) -> Iterator["ResourcePath"]:
        """Yield the path, its parent, ... up to the root."""
        start = len(self) if include_self else len(self) - 1
        for length in range(start, -1, -1):
            yield ResourcePath(self.segments[:length])


@dataclass(frozen=True)
class ResourcePattern:
    """Glob pattern over resource paths, one glob per segment.

    ``*`` matches one whole segment, ``**`` (as a full segment) matches any
    number of segments including zero, and ordinary fnmatch globbing
    applies within a segment (``r*`` matches ``r17``).  Examples::

        ResourcePattern("hospital/records/*")           # every record
        ResourcePattern("hospital/**/diagnosis")        # any diagnosis
        ResourcePattern("hospital/records/r17")         # one exact object
    """

    segments: tuple[str, ...]

    def __init__(self, pattern: "ResourcePattern | str | Iterable[str]") -> None:
        if isinstance(pattern, ResourcePattern):
            segments = pattern.segments
        elif isinstance(pattern, str):
            segments = tuple(s for s in pattern.split("/") if s)
        else:
            segments = tuple(pattern)
        object.__setattr__(self, "segments", segments)

    def __str__(self) -> str:
        return "/".join(self.segments)

    def matches(self, path: ResourcePath | str) -> bool:
        path = ResourcePath(path)
        return self._match(self.segments, path.segments)

    @staticmethod
    def _match(pattern: tuple[str, ...], path: tuple[str, ...]) -> bool:
        if not pattern:
            return not path
        head, rest = pattern[0], pattern[1:]
        if head == "**":
            # '**' absorbs zero or more leading path segments.
            for skip in range(len(path) + 1):
                if ResourcePattern._match(rest, path[skip:]):
                    return True
            return False
        if not path:
            return False
        if not fnmatchcase(path[0], head):
            return False
        return ResourcePattern._match(rest, path[1:])

    @property
    def specificity(self) -> int:
        """Higher = more specific; used by most-specific-wins resolution.

        Literal segments count 3, single-segment globs 2, ``**`` 1, so
        ``a/b/c`` beats ``a/b/*`` beats ``a/**``.
        """
        score = 0
        for segment in self.segments:
            if segment == "**":
                score += 1
            elif any(ch in segment for ch in "*?["):
                score += 2
            else:
                score += 3
        return score


class ProtectionObject:
    """A named object in the protection hierarchy with optional payload.

    The policy framework only needs paths; concrete stores (XML database,
    UDDI registry, relational catalog) attach their native object as
    ``payload`` so audit records can point back at the real thing.
    """

    def __init__(self, path: ResourcePath | str,
                 payload: object = None) -> None:
        self.path = ResourcePath(path)
        self.payload = payload

    def __repr__(self) -> str:
        return f"ProtectionObject({str(self.path)!r})"


class ObjectHierarchy:
    """An explicit tree of protection objects.

    Most callers only need paths/patterns, but experiments about propagation
    (a policy on a node applies to its subtree) need enumeration: given a
    node, list its descendants.  The hierarchy is built incrementally with
    :meth:`add`; adding a path creates its ancestors implicitly.
    """

    def __init__(self) -> None:
        self._children: dict[ResourcePath, set[str]] = {ResourcePath(""): set()}
        self._objects: dict[ResourcePath, ProtectionObject] = {}

    def add(self, path: ResourcePath | str,
            payload: object = None) -> ProtectionObject:
        path = ResourcePath(path)
        for ancestor in list(path.ancestors())[::-1]:
            self._children.setdefault(ancestor, set())
            if len(ancestor) > 0:
                self._children[ancestor.parent].add(ancestor.name)
        obj = ProtectionObject(path, payload)
        self._objects[path] = obj
        return obj

    def __contains__(self, path: ResourcePath | str) -> bool:
        return ResourcePath(path) in self._children

    def get(self, path: ResourcePath | str) -> ProtectionObject | None:
        return self._objects.get(ResourcePath(path))

    def children(self, path: ResourcePath | str) -> list[ResourcePath]:
        path = ResourcePath(path)
        return sorted((path.child(name) for name in
                       self._children.get(path, ())),
                      key=lambda p: p.segments)

    def descendants(self, path: ResourcePath | str,
                    include_self: bool = True) -> Iterator[ResourcePath]:
        """Depth-first enumeration of the subtree rooted at *path*."""
        path = ResourcePath(path)
        if include_self:
            yield path
        for child in self.children(path):
            yield from self.descendants(child, include_self=True)

    def paths(self) -> Iterator[ResourcePath]:
        return iter(self._children)
