"""Unified security & privacy policy framework — the paper's core concepts.

The EDBT 2004 paper argues that web databases and services need subject
qualification beyond identities (roles, credentials), fine-grained
hierarchical protection objects, positive and negative content-dependent
policies with explicit conflict resolution, multilevel labels with
context-dependent (de)classification, and an audit trail.  This package is
that framework; every other subpackage builds on it.
"""

from repro.core.audit import AuditLog, AuditRecord
from repro.core.credentials import (
    Credential,
    CredentialExpression,
    CredentialType,
    anyone,
    attribute_at_least,
    attribute_equals,
    attribute_in,
    has_credential,
    has_role,
    is_identity,
    issued_by,
    nobody,
)
from repro.core.errors import (
    AccessDenied,
    AuthenticationError,
    CallTimeout,
    CircuitOpen,
    CompletenessError,
    ConfigurationError,
    CorruptMessage,
    IncompletePackageError,
    InferenceViolation,
    IntegrityError,
    KeyManagementError,
    MessageDropped,
    ParseError,
    PolicyConflict,
    PrivacyViolation,
    QueryError,
    RegistryError,
    ReplicaUnavailable,
    ReproError,
    RetryExhausted,
    SecurityError,
    ServiceFault,
    StaleRead,
    TamperedPackageError,
    TransactionError,
    TransportError,
)
from repro.core.evaluator import (
    ConflictResolution,
    Decision,
    DefaultDecision,
    PolicyEvaluator,
)
from repro.core.mls import (
    PUBLIC,
    ClassificationMap,
    Label,
    Level,
    can_read,
    can_write,
)
from repro.core.objects import (
    ObjectHierarchy,
    ProtectionObject,
    ResourcePath,
    ResourcePattern,
)
from repro.core.policy import (
    Action,
    Policy,
    PolicyBase,
    Propagation,
    Sign,
    deny,
    grant,
)
from repro.core.subjects import (
    Identity,
    Role,
    RoleHierarchy,
    Subject,
    SubjectDirectory,
)

__all__ = [
    "AccessDenied", "Action", "AuditLog", "AuditRecord",
    "AuthenticationError", "CallTimeout", "CircuitOpen",
    "ClassificationMap", "CompletenessError",
    "ConfigurationError", "ConflictResolution", "CorruptMessage",
    "Credential",
    "CredentialExpression", "CredentialType", "Decision", "DefaultDecision",
    "Identity", "IncompletePackageError", "InferenceViolation",
    "IntegrityError",
    "KeyManagementError", "Label", "Level", "MessageDropped",
    "ObjectHierarchy", "PUBLIC",
    "ParseError", "Policy", "PolicyBase", "PolicyConflict",
    "PolicyEvaluator", "PrivacyViolation", "Propagation",
    "ProtectionObject", "QueryError", "RegistryError",
    "ReplicaUnavailable", "ReproError", "RetryExhausted",
    "ResourcePath", "ResourcePattern", "Role", "RoleHierarchy",
    "SecurityError", "ServiceFault", "Sign", "StaleRead", "Subject",
    "SubjectDirectory", "TamperedPackageError", "TransactionError",
    "TransportError", "anyone",
    "attribute_at_least", "attribute_equals", "attribute_in", "can_read",
    "can_write", "deny", "grant", "has_credential", "has_role",
    "is_identity", "issued_by", "nobody",
]
