"""Unified security & privacy policy framework — the paper's core concepts.

The EDBT 2004 paper argues that web databases and services need subject
qualification beyond identities (roles, credentials), fine-grained
hierarchical protection objects, positive and negative content-dependent
policies with explicit conflict resolution, multilevel labels with
context-dependent (de)classification, and an audit trail.  This package is
that framework; every other subpackage builds on it.
"""

from repro.core.audit import AuditLog, AuditRecord
from repro.core.credentials import (
    Credential,
    CredentialExpression,
    CredentialType,
    anyone,
    attribute_at_least,
    attribute_equals,
    attribute_in,
    has_credential,
    has_role,
    is_identity,
    issued_by,
    nobody,
)
from repro.core.errors import (
    AccessDenied,
    AuthenticationError,
    CompletenessError,
    ConfigurationError,
    InferenceViolation,
    IntegrityError,
    KeyManagementError,
    ParseError,
    PolicyConflict,
    PrivacyViolation,
    QueryError,
    RegistryError,
    ReproError,
    SecurityError,
    ServiceFault,
    TransactionError,
)
from repro.core.evaluator import (
    ConflictResolution,
    Decision,
    DefaultDecision,
    PolicyEvaluator,
)
from repro.core.mls import (
    PUBLIC,
    ClassificationMap,
    Label,
    Level,
    can_read,
    can_write,
)
from repro.core.objects import (
    ObjectHierarchy,
    ProtectionObject,
    ResourcePath,
    ResourcePattern,
)
from repro.core.policy import (
    Action,
    Policy,
    PolicyBase,
    Propagation,
    Sign,
    deny,
    grant,
)
from repro.core.subjects import (
    Identity,
    Role,
    RoleHierarchy,
    Subject,
    SubjectDirectory,
)

__all__ = [
    "AccessDenied", "Action", "AuditLog", "AuditRecord",
    "AuthenticationError", "ClassificationMap", "CompletenessError",
    "ConfigurationError", "ConflictResolution", "Credential",
    "CredentialExpression", "CredentialType", "Decision", "DefaultDecision",
    "Identity", "InferenceViolation", "IntegrityError",
    "KeyManagementError", "Label", "Level", "ObjectHierarchy", "PUBLIC",
    "ParseError", "Policy", "PolicyBase", "PolicyConflict",
    "PolicyEvaluator", "PrivacyViolation", "Propagation",
    "ProtectionObject", "QueryError", "RegistryError", "ReproError",
    "ResourcePath", "ResourcePattern", "Role", "RoleHierarchy",
    "SecurityError", "ServiceFault", "Sign", "Subject",
    "SubjectDirectory", "TransactionError", "anyone",
    "attribute_at_least", "attribute_equals", "attribute_in", "can_read",
    "can_write", "deny", "grant", "has_credential", "has_role",
    "is_identity", "issued_by", "nobody",
]
