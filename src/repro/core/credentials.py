"""Credentials: attribute bundles that qualify subjects (Author-X style).

The paper (§3.1, §3.2) repeatedly points at *credentials* as the web-scale
replacement for identity lists: "a more flexible way of qualifying subjects
is needed, for instance based on the notion of role or credential".  In the
Author-X model [5] credentials are typed attribute sets specified in XML;
policies then select subjects with *credential expressions* over those
attributes.

This module provides:

* :class:`CredentialType` — a named schema: which attributes a credential of
  this type carries, and which are mandatory;
* :class:`Credential` — an instance: type + attribute values + issuer;
* :class:`CredentialExpression` — a small, composable predicate language
  (``attr("age") >= 18 AND has_type("physician")``) evaluated against a
  subject's credential set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, TYPE_CHECKING

from repro.core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.subjects import Subject


@dataclass(frozen=True)
class CredentialType:
    """Schema for a family of credentials.

    Parameters
    ----------
    name:
        Type name, e.g. ``"physician"``.
    attributes:
        All attribute names a credential of this type may carry.
    mandatory:
        Subset of ``attributes`` that every instance must provide.
    """

    name: str
    attributes: frozenset[str] = frozenset()
    mandatory: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        missing = self.mandatory - self.attributes
        if missing:
            raise ConfigurationError(
                f"credential type {self.name!r}: mandatory attributes "
                f"{sorted(missing)} not declared")

    def issue(self, issuer: str = "self",
              **attribute_values: object) -> "Credential":
        """Create a validated credential instance of this type."""
        unknown = set(attribute_values) - set(self.attributes)
        if unknown:
            raise ConfigurationError(
                f"credential type {self.name!r}: unknown attributes "
                f"{sorted(unknown)}")
        absent = self.mandatory - set(attribute_values)
        if absent:
            raise ConfigurationError(
                f"credential type {self.name!r}: missing mandatory "
                f"attributes {sorted(absent)}")
        return Credential(self.name, dict(attribute_values), issuer)


@dataclass(frozen=True)
class Credential:
    """An issued credential: a typed, immutable attribute bundle."""

    type_name: str
    attributes: Mapping[str, object]
    issuer: str = "self"

    def __post_init__(self) -> None:
        # Freeze the mapping so credentials are safely hashable by identity
        # of content.
        object.__setattr__(self, "attributes", dict(self.attributes))

    def __hash__(self) -> int:
        return hash((self.type_name, self.issuer,
                     tuple(sorted(self.attributes.items()))))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Credential):
            return NotImplemented
        return (self.type_name == other.type_name
                and self.issuer == other.issuer
                and dict(self.attributes) == dict(other.attributes))


class CredentialExpression:
    """A predicate over a subject's credentials.

    Expressions compose with ``&`` (and), ``|`` (or) and ``~`` (not), and
    are built from the factory functions below.  ``evaluate(subject)``
    returns a bool; expressions never raise on missing attributes — a
    comparison against an absent attribute is simply false.

    Expressions built from the factories below carry a *recipe* — the
    factory name plus its arguments — which makes them picklable even
    though the predicate itself is a closure: pickling ships the recipe
    and unpickling re-runs the factory.  The multicore serving tier
    relies on this to ship policy deltas across process boundaries.
    Hand-rolled expressions (a raw predicate with no recipe) still work
    everywhere in-process but refuse to pickle, with a typed error.
    """

    def __init__(self, predicate: Callable[["Subject"], bool],
                 description: str,
                 recipe: tuple | None = None) -> None:
        self._predicate = predicate
        self.description = description
        self.recipe = recipe

    def evaluate(self, subject: "Subject") -> bool:
        return bool(self._predicate(subject))

    def __call__(self, subject: "Subject") -> bool:
        return self.evaluate(subject)

    def __and__(self, other: "CredentialExpression") -> "CredentialExpression":
        recipe = None
        if self.recipe is not None and other.recipe is not None:
            recipe = ("and", self.recipe, other.recipe)
        return CredentialExpression(
            lambda s: self.evaluate(s) and other.evaluate(s),
            f"({self.description} AND {other.description})", recipe)

    def __or__(self, other: "CredentialExpression") -> "CredentialExpression":
        recipe = None
        if self.recipe is not None and other.recipe is not None:
            recipe = ("or", self.recipe, other.recipe)
        return CredentialExpression(
            lambda s: self.evaluate(s) or other.evaluate(s),
            f"({self.description} OR {other.description})", recipe)

    def __invert__(self) -> "CredentialExpression":
        recipe = None
        if self.recipe is not None:
            recipe = ("not", self.recipe)
        return CredentialExpression(
            lambda s: not self.evaluate(s),
            f"(NOT {self.description})", recipe)

    def __reduce__(self):
        if self.recipe is None:
            import pickle
            raise pickle.PicklingError(
                f"CredentialExpression({self.description}) has no recipe: "
                "only expressions built from the repro.core.credentials "
                "factories (anyone, has_role, attribute_at_least, ...) and "
                "their &/|/~ combinations can cross process boundaries")
        return (_from_recipe, (self.recipe,))

    def __repr__(self) -> str:
        return f"CredentialExpression({self.description})"


def _from_recipe(recipe: tuple) -> CredentialExpression:
    """Rebuild a factory-made expression from its recipe (unpickle path)."""
    head = recipe[0]
    if head == "and":
        return _from_recipe(recipe[1]) & _from_recipe(recipe[2])
    if head == "or":
        return _from_recipe(recipe[1]) | _from_recipe(recipe[2])
    if head == "not":
        return ~_from_recipe(recipe[1])
    factory = _RECIPE_FACTORIES.get(head)
    if factory is None:
        raise ConfigurationError(
            f"unknown credential-expression recipe {head!r}")
    return factory(*recipe[1:])


def anyone() -> CredentialExpression:
    """Matches every subject (the open-world 'public' qualifier)."""
    return CredentialExpression(lambda s: True, "anyone", ("anyone",))


def nobody() -> CredentialExpression:
    """Matches no subject; useful as an explicit lock."""
    return CredentialExpression(lambda s: False, "nobody", ("nobody",))


def is_identity(name: str) -> CredentialExpression:
    """Matches the single subject whose identity is *name*."""
    return CredentialExpression(
        lambda s: s.identity.name == name, f"identity={name}",
        ("is_identity", name))


def has_role(role_name: str) -> CredentialExpression:
    """Matches subjects holding a role named *role_name* (no hierarchy)."""
    return CredentialExpression(
        lambda s: any(r.name == role_name for r in s.roles),
        f"role={role_name}", ("has_role", role_name))


def has_credential(type_name: str) -> CredentialExpression:
    """Matches subjects holding any credential of the given type."""
    return CredentialExpression(
        lambda s: s.credential_of_type(type_name) is not None,
        f"credential={type_name}", ("has_credential", type_name))


def issued_by(type_name: str, issuer: str) -> CredentialExpression:
    """Matches subjects holding a *type_name* credential from *issuer*."""
    return CredentialExpression(
        lambda s: any(c.type_name == type_name and c.issuer == issuer
                      for c in s.credentials),
        f"credential={type_name} issuer={issuer}",
        ("issued_by", type_name, issuer))


def attribute_equals(type_name: str, attribute: str,
                     value: object) -> CredentialExpression:
    """Matches subjects whose credential attribute equals *value*."""
    return CredentialExpression(
        lambda s: s.attribute(type_name, attribute) == value,
        f"{type_name}.{attribute}=={value!r}",
        ("attribute_equals", type_name, attribute, value))


def attribute_at_least(type_name: str, attribute: str,
                       threshold: float) -> CredentialExpression:
    """Matches subjects whose numeric attribute is >= *threshold*."""

    def check(subject: "Subject") -> bool:
        value = subject.attribute(type_name, attribute)
        return isinstance(value, (int, float)) and value >= threshold

    return CredentialExpression(
        check, f"{type_name}.{attribute}>={threshold}",
        ("attribute_at_least", type_name, attribute, threshold))


def attribute_in(type_name: str, attribute: str,
                 values: Iterable[object]) -> CredentialExpression:
    """Matches subjects whose attribute is one of *values*."""
    allowed = frozenset(values)
    return CredentialExpression(
        lambda s: s.attribute(type_name, attribute) in allowed,
        f"{type_name}.{attribute} in {sorted(map(repr, allowed))}",
        ("attribute_in", type_name, attribute, tuple(sorted(
            allowed, key=repr))))


#: Recipe head → factory; combinators ("and"/"or"/"not") are handled
#: structurally in :func:`_from_recipe`.
_RECIPE_FACTORIES: dict[str, Callable[..., CredentialExpression]] = {
    "anyone": anyone,
    "nobody": nobody,
    "is_identity": is_identity,
    "has_role": has_role,
    "has_credential": has_credential,
    "issued_by": issued_by,
    "attribute_equals": attribute_equals,
    "attribute_at_least": attribute_at_least,
    "attribute_in": attribute_in,
}
