"""Access control policies.

A policy says: subjects matching a *credential expression* may (or may not)
perform an *action* on objects matching a *resource pattern*, optionally
only when a *condition* over the object's content holds (content-dependent
policies, §3.2).  Policies carry a *sign*:

* ``Sign.GRANT`` — positive authorization;
* ``Sign.DENY``  — negative authorization (prohibitions), needed on the web
  where open subject populations make "everyone except X" common.

and a *propagation* mode describing whether the policy covers just the
matched object or its whole subtree (Author-X's cascading option).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.core.credentials import CredentialExpression, anyone
from repro.core.errors import ConfigurationError
from repro.core.objects import ResourcePath, ResourcePattern
from repro.core.subjects import Subject
from repro.perf.cache import Generation


class Sign(enum.Enum):
    """Polarity of an authorization."""

    GRANT = "grant"
    DENY = "deny"


class Propagation(enum.Enum):
    """How far below the matched object a policy reaches."""

    LOCAL = "local"       # the matched object only
    CASCADE = "cascade"   # the matched object and all its descendants
    ONE_LEVEL = "one_level"  # the matched object and its direct children


class Action(enum.Enum):
    """The verbs the paper's scenarios need.

    ``READ`` covers querying and browsing; ``WRITE`` covers updates;
    ``NAVIGATE`` is Author-X's browsing-only privilege (see the element
    without its content); ``ADMIN`` covers policy administration.
    """

    READ = "read"
    WRITE = "write"
    NAVIGATE = "navigate"
    ADMIN = "admin"


#: Condition over the protected object's payload; None payload -> False
#: unless the condition tolerates it.
ContentCondition = Callable[[object], bool]

_policy_counter = itertools.count(1)


@dataclass(frozen=True)
class Policy:
    """One access control policy.

    Attributes
    ----------
    subject_expression:
        Which subjects the policy applies to.
    action:
        The verb being authorized or denied.
    resource:
        Pattern selecting the protected objects.
    sign:
        GRANT or DENY.
    propagation:
        Reach below the matched object.
    condition:
        Optional content predicate evaluated against the object payload —
        this is what makes a policy *content-dependent*.
    priority:
        Larger wins in PRIORITY conflict resolution; defaults to 0.
    policy_id:
        Unique, auto-assigned; stable ordering for deterministic output.
    """

    subject_expression: CredentialExpression
    action: Action
    resource: ResourcePattern
    sign: Sign = Sign.GRANT
    propagation: Propagation = Propagation.CASCADE
    condition: ContentCondition | None = None
    priority: int = 0
    policy_id: int = field(default_factory=lambda: next(_policy_counter))

    def __repr__(self) -> str:
        cond = " if <condition>" if self.condition else ""
        return (f"Policy#{self.policy_id}({self.sign.value} "
                f"{self.action.value} on {self.resource} to "
                f"{self.subject_expression.description}"
                f" [{self.propagation.value}]{cond})")

    def applies_to_subject(self, subject: Subject) -> bool:
        return self.subject_expression.evaluate(subject)

    def applies_to_resource(self, path: ResourcePath | str) -> bool:
        """Pattern match including propagation through ancestors."""
        path = ResourcePath(path)
        if self.resource.matches(path):
            return True
        if self.propagation is Propagation.LOCAL:
            return False
        if self.propagation is Propagation.ONE_LEVEL:
            return len(path) > 0 and self.resource.matches(path.parent)
        # CASCADE: the policy applies if it matches any ancestor.
        return any(self.resource.matches(ancestor)
                   for ancestor in path.ancestors(include_self=False))

    def applies_to_content(self, payload: object) -> bool:
        if self.condition is None:
            return True
        try:
            return bool(self.condition(payload))
        except Exception as _exc:  # noqa: deliberate broad swallow
            # A content condition that cannot evaluate its payload is
            # conservatively treated as not matching.
            return False

    def applies(self, subject: Subject, action: Action,
                path: ResourcePath | str, payload: object = None) -> bool:
        return (self.action is action
                and self.applies_to_subject(subject)
                and self.applies_to_resource(path)
                and self.applies_to_content(payload))


def grant(subject_expression: CredentialExpression | None = None,
          action: Action = Action.READ,
          resource: ResourcePattern | str = "**",
          propagation: Propagation = Propagation.CASCADE,
          condition: ContentCondition | None = None,
          priority: int = 0) -> Policy:
    """Convenience constructor for a positive policy."""
    return Policy(subject_expression or anyone(), action,
                  ResourcePattern(resource), Sign.GRANT, propagation,
                  condition, priority)


def deny(subject_expression: CredentialExpression | None = None,
         action: Action = Action.READ,
         resource: ResourcePattern | str = "**",
         propagation: Propagation = Propagation.CASCADE,
         condition: ContentCondition | None = None,
         priority: int = 0) -> Policy:
    """Convenience constructor for a negative policy."""
    return Policy(subject_expression or anyone(), action,
                  ResourcePattern(resource), Sign.DENY, propagation,
                  condition, priority)


class PolicyBase:
    """An ordered collection of policies with simple indexing.

    Policies are indexed by action and by the first literal segment of their
    resource pattern, which prunes most of the base on lookup — this is the
    "query processing algorithms may need to take into consideration the
    access control policies" hook of §3.1, and what benchmark E1 measures.
    """

    def __init__(self, policies: Iterable[Policy] = ()) -> None:
        self._policies: list[Policy] = []
        self._by_action: dict[Action, list[Policy]] = {a: [] for a in Action}
        # first-segment index: literal -> policies; '*' bucket for patterns
        # whose first segment is a glob.
        self._by_head: dict[Action, dict[str, list[Policy]]] = {
            a: {} for a in Action}
        # Bumped on every add/remove; decision caches stamp entries with
        # this so a policy change invalidates them in O(1).
        self._generation = Generation()
        for policy in policies:
            self.add(policy)

    @property
    def generation(self) -> int:
        """Mutation counter; changes whenever the policy set changes."""
        return self._generation.value

    def add_invalidation_hook(self, hook: Callable[[], None]) -> None:
        """Call *hook* after every policy add/remove."""
        self._generation.add_hook(hook)

    def __len__(self) -> int:
        return len(self._policies)

    def __iter__(self) -> Iterator[Policy]:
        return iter(self._policies)

    def add(self, policy: Policy) -> Policy:
        self._policies.append(policy)
        self._by_action[policy.action].append(policy)
        head = policy.resource.segments[0] if policy.resource.segments else "**"
        if any(ch in head for ch in "*?["):
            head = "*"
        self._by_head[policy.action].setdefault(head, []).append(policy)
        self._generation.bump()
        return policy

    def remove(self, policy: Policy) -> None:
        try:
            self._policies.remove(policy)
        except ValueError:
            raise ConfigurationError(f"{policy!r} not in policy base") from None
        self._by_action[policy.action].remove(policy)
        head = policy.resource.segments[0] if policy.resource.segments else "**"
        if any(ch in head for ch in "*?["):
            head = "*"
        self._by_head[policy.action][head].remove(policy)
        self._generation.bump()

    def candidates(self, action: Action,
                   path: ResourcePath | str) -> list[Policy]:
        """Policies that could apply to (action, path), via the head index."""
        path = ResourcePath(path)
        index = self._by_head[action]
        result: list[Policy] = list(index.get("*", ()))
        result.extend(index.get("**", ()))
        if path.segments:
            result.extend(index.get(path.segments[0], ()))
        # Deterministic order regardless of index iteration.
        result.sort(key=lambda p: p.policy_id)
        return result

    def applicable(self, subject: Subject, action: Action,
                   path: ResourcePath | str,
                   payload: object = None) -> list[Policy]:
        """All policies applying to the full request, in id order."""
        return [p for p in self.candidates(action, path)
                if p.applies(subject, action, path, payload)]
