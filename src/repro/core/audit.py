"""Tamper-evident audit log.

Every security decision in the library can be recorded here.  Records are
hash-chained (each record's digest covers the previous digest), so
truncation or in-place modification of history is detectable — the
"malicious corruption" the paper's introduction worries about, applied to
the security subsystem's own trail.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.errors import IntegrityError

#: Monotonic logical clock; injectable for deterministic tests.
Clock = Callable[[], int]


@dataclass(frozen=True)
class AuditRecord:
    """One immutable entry in the chain."""

    sequence: int
    timestamp: int
    subject: str
    action: str
    resource: str
    granted: bool
    detail: str
    previous_digest: str
    digest: str

    @staticmethod
    def compute_digest(sequence: int, timestamp: int, subject: str,
                       action: str, resource: str, granted: bool,
                       detail: str, previous_digest: str) -> str:
        body = json.dumps(
            [sequence, timestamp, subject, action, resource, granted,
             detail, previous_digest],
            separators=(",", ":"), ensure_ascii=True)
        return hashlib.sha256(body.encode("utf-8")).hexdigest()


GENESIS_DIGEST = "0" * 64


class AuditLog:
    """Append-only, hash-chained log of security decisions."""

    def __init__(self, clock: Clock | None = None) -> None:
        self._records: list[AuditRecord] = []
        self._counter = 0
        if clock is None:
            clock = self._logical_clock
        self._clock = clock

    def _logical_clock(self) -> int:
        return self._counter

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)

    def record(self, subject: str, action: str, resource: str,
               granted: bool, detail: str = "") -> AuditRecord:
        """Append one decision to the chain."""
        previous = self._records[-1].digest if self._records else GENESIS_DIGEST
        sequence = self._counter
        self._counter += 1
        timestamp = self._clock()
        digest = AuditRecord.compute_digest(
            sequence, timestamp, subject, action, resource, granted,
            detail, previous)
        entry = AuditRecord(sequence, timestamp, subject, action, resource,
                            granted, detail, previous, digest)
        self._records.append(entry)
        return entry

    def verify(self) -> bool:
        """Recompute the whole chain; raise IntegrityError on any break."""
        previous = GENESIS_DIGEST
        for index, entry in enumerate(self._records):
            if entry.sequence != index:
                raise IntegrityError(
                    f"audit record {index}: sequence gap "
                    f"(found {entry.sequence})")
            if entry.previous_digest != previous:
                raise IntegrityError(
                    f"audit record {index}: broken chain link")
            expected = AuditRecord.compute_digest(
                entry.sequence, entry.timestamp, entry.subject,
                entry.action, entry.resource, entry.granted, entry.detail,
                entry.previous_digest)
            if expected != entry.digest:
                raise IntegrityError(
                    f"audit record {index}: digest mismatch")
            previous = entry.digest
        return True

    def denials(self) -> list[AuditRecord]:
        return [r for r in self._records if not r.granted]

    def for_subject(self, subject: str) -> list[AuditRecord]:
        return [r for r in self._records if r.subject == subject]

    def tail_digest(self) -> str:
        """Digest committing to the entire history so far."""
        return self._records[-1].digest if self._records else GENESIS_DIGEST
