"""Exception hierarchy shared by every subsystem of the library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller can catch a single base class.  Security-relevant failures form their
own branch under :class:`SecurityError` so that audit hooks can distinguish
"the request was malformed" from "the request was denied or forged".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ConfigurationError(ReproError):
    """A component was assembled with inconsistent or missing parameters."""


class SecurityError(ReproError):
    """Base class for security-relevant failures."""


class AccessDenied(SecurityError):
    """An access request was evaluated and denied.

    Attributes
    ----------
    subject, action, resource:
        Echo of the request, useful for audit records and error messages.
    """

    def __init__(self, subject: object, action: object, resource: object,
                 reason: str = "") -> None:
        self.subject = subject
        self.action = action
        self.resource = resource
        self.reason = reason
        detail = f" ({reason})" if reason else ""
        super().__init__(
            f"access denied: subject={subject!r} action={action!r} "
            f"resource={resource!r}{detail}")


class AuthenticationError(SecurityError):
    """A claimed identity or signature could not be verified."""


class IntegrityError(SecurityError):
    """Data failed an integrity (tamper-evidence) check."""


class CompletenessError(SecurityError):
    """A third party returned fewer results than the owner authorized."""


class PrivacyViolation(SecurityError):
    """Releasing a value or pattern would violate a privacy constraint."""


class InferenceViolation(PrivacyViolation):
    """A query is individually safe but completes a forbidden inference."""


class PolicyConflict(SecurityError):
    """Two applicable policies disagree and no resolution rule applies."""


class KeyManagementError(SecurityError):
    """A cryptographic key was missing, duplicated or malformed."""


class ParseError(ReproError):
    """Input text could not be parsed (XML, XPath, policy syntax...)."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class QueryError(ReproError):
    """A structurally valid query referenced unknown tables/columns etc."""


class TransactionError(ReproError):
    """A transaction could not commit (conflict, constraint violation)."""


class RegistryError(ReproError):
    """A UDDI registry operation failed (unknown key, duplicate entry)."""


class ServiceFault(ReproError):
    """A web-service invocation returned a SOAP fault."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(f"[{code}] {message}")
