"""Exception hierarchy shared by every subsystem of the library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller can catch a single base class.  Security-relevant failures form their
own branch under :class:`SecurityError` so that audit hooks can distinguish
"the request was malformed" from "the request was denied or forged".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ConfigurationError(ReproError):
    """A component was assembled with inconsistent or missing parameters."""


class SecurityError(ReproError):
    """Base class for security-relevant failures."""


class AccessDenied(SecurityError):
    """An access request was evaluated and denied.

    Attributes
    ----------
    subject, action, resource:
        Echo of the request, useful for audit records and error messages.
    """

    def __init__(self, subject: object, action: object, resource: object,
                 reason: str = "") -> None:
        self.subject = subject
        self.action = action
        self.resource = resource
        self.reason = reason
        detail = f" ({reason})" if reason else ""
        super().__init__(
            f"access denied: subject={subject!r} action={action!r} "
            f"resource={resource!r}{detail}")


class AuthenticationError(SecurityError):
    """A claimed identity or signature could not be verified."""


class IntegrityError(SecurityError):
    """Data failed an integrity (tamper-evidence) check."""


class CompletenessError(SecurityError):
    """A third party returned fewer results than the owner authorized."""


class PrivacyViolation(SecurityError):
    """Releasing a value or pattern would violate a privacy constraint."""


class InferenceViolation(PrivacyViolation):
    """A query is individually safe but completes a forbidden inference."""


class PolicyConflict(SecurityError):
    """Two applicable policies disagree and no resolution rule applies."""


class KeyManagementError(SecurityError):
    """A cryptographic key was missing, duplicated or malformed."""


class ParseError(ReproError):
    """Input text could not be parsed (XML, XPath, policy syntax...)."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class QueryError(ReproError):
    """A structurally valid query referenced unknown tables/columns etc."""


class TransactionError(ReproError):
    """A transaction could not commit (conflict, constraint violation)."""


class RegistryError(ReproError):
    """A UDDI registry operation failed (unknown key, duplicate entry)."""


class ServiceFault(ReproError):
    """A web-service invocation returned a SOAP fault."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(f"[{code}] {message}")


# ---------------------------------------------------------------------------
# Partial-failure branch (repro.faults): every way the unreliable substrate
# can fail is a *typed* error, so resilient callers can distinguish
# retryable transport conditions from security verdicts and the chaos
# suite can assert the fail-closed invariant ("typed error or byte-
# identical result, never a silent partial answer").
# ---------------------------------------------------------------------------


class TransportError(ReproError):
    """Base class for retryable substrate failures (lost/late/garbled
    messages, crashed replicas).  Security errors deliberately do NOT
    derive from this class: a failed signature check must never be
    retried into acceptance."""


class MessageDropped(TransportError):
    """A message (or its acknowledgement) was lost in transit."""


class CorruptMessage(TransportError):
    """A message failed its transport frame checksum (bit rot, not an
    adversary — adversarial tampering is the security layer's domain)."""


class CallTimeout(TransportError):
    """An operation exceeded its deadline on the fault clock.  The
    caller must discard any late result (fail closed)."""


class ReplicaUnavailable(TransportError):
    """The target endpoint or registry replica is crashed/unreachable."""


class StaleRead(TransportError):
    """A read was served from a lagging replica and its staleness was
    detected (e.g. a read-your-writes watermark check failed)."""


class ReplicaDiverged(TransportError):
    """A replica refused a non-contiguous replication delta: accepting
    a delta whose version is not exactly ``watermark + 1`` would leave
    a hole in its history, so the replica falls behind instead and
    waits for anti-entropy repair.  Retryable from the primary's point
    of view — the gap is a transport condition, not corruption."""


class WorkerDiverged(TransportError):
    """A multicore shard worker refused a non-contiguous policy delta
    (version ≠ watermark + 1) and took itself out of service: serving
    from a policy set with a hole would be *stale authorization*, so
    the worker fails every subsequent evaluation typed instead.  The
    dispatcher's remedy is a reseed, mirroring how a
    :class:`ReplicaDiverged` replica waits for anti-entropy repair."""


class CircuitOpen(TransportError):
    """A circuit breaker is open; the call was not attempted."""


class AdmissionRejected(TransportError):
    """A request gateway's bounded admission queue is full; the request
    was refused *before* entering the system (load shedding).  Retryable
    by construction: nothing was evaluated, so backing off and
    resubmitting cannot double-apply anything."""


class Overloaded(TransportError):
    """A gateway shed this request under backpressure — the tenant's
    token bucket is empty or a queue-depth watermark tripped for its
    priority tier.  Unlike :class:`AdmissionRejected` (the hard bound),
    an ``Overloaded`` response is *graceful degradation*: it carries a
    ``retry_after`` hint (seconds) telling the client when capacity is
    expected back, so well-behaved clients back off instead of
    hammering a saturated loop.

    Attributes
    ----------
    retry_after:
        Suggested backoff in seconds before resubmitting.
    reason:
        Which mechanism shed the request (``"bucket"`` or
        ``"watermark"``), for telemetry.
    """

    def __init__(self, message: str, retry_after: float = 0.0,
                 reason: str = "watermark") -> None:
        self.retry_after = retry_after
        self.reason = reason
        super().__init__(
            f"{message} (retry after {retry_after:.4f}s)")


class RetryExhausted(TransportError):
    """A retried operation ran out of attempts.

    Attributes
    ----------
    attempts:
        How many attempts were made.
    last_error:
        The error raised by the final attempt.
    """

    def __init__(self, attempts: int, last_error: BaseException) -> None:
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"gave up after {attempts} attempts; last error: "
            f"{type(last_error).__name__}: {last_error}")


class TamperedPackageError(IntegrityError):
    """A disseminated package failed verification: a block's MAC or
    manifest digest did not match.  Subscribers raise this instead of
    ever surfacing corrupted plaintext."""


class IncompletePackageError(CompletenessError):
    """A disseminated package is missing blocks the manifest promises
    for keys the subscriber holds."""


class SeedMismatch(IntegrityError):
    """A multicore worker's recompiled policy digest disagreed with the
    dispatcher's seed image at handshake time.  The worker never enters
    service: evaluating against an unverified table would silently
    bypass the trust boundary, so seeding fails closed instead."""


# ---------------------------------------------------------------------------
# Snapshot branch (repro.snap): epoch-published copy-on-write snapshots.
# ---------------------------------------------------------------------------


class SnapshotError(ReproError):
    """Misuse of the snapshot layer: mutating a frozen snapshot,
    resolving a node path that does not exist in the frozen tree, or
    publishing through a closed epoch manager."""


class EpochRetired(SnapshotError):
    """A released snapshot (or an epoch already reclaimed) was used
    where a pinned one is required — e.g. releasing the same snapshot
    twice, which would corrupt the reclamation refcounts."""


# ---------------------------------------------------------------------------
# Durability branch (repro.wal): group-commit write-ahead logging,
# checkpointing, and crash recovery under the sharded stores.
# ---------------------------------------------------------------------------


class WalError(ReproError):
    """Base class for write-ahead-log failures (append refused, a
    recovery that cannot proceed, a checkpoint that cannot be read)."""


class WalCorrupt(WalError, IntegrityError):
    """The log or a checkpoint failed an integrity check that cannot be
    explained as a torn tail: a frame CRC mismatch *followed by* valid
    frames, a segment missing from the middle of the sequence, LSNs
    running backwards, or a checkpoint whose checksum does not cover
    its payload.  Recovery fails closed — silently skipping committed
    records would be silent data loss, the one outcome a durability
    layer exists to prevent.  (A torn *tail* — a partial frame at the
    very end of the last segment with nothing valid after it — is the
    expected artifact of a crash between write and fsync, and is
    truncated at the last valid frame instead of raising.)

    Attributes
    ----------
    shard, segment, offset:
        Where the damage was found (``segment``/``offset`` are ``None``
        for structural problems such as a missing segment).
    """

    def __init__(self, message: str, *, shard: int | None = None,
                 segment: str | None = None,
                 offset: int | None = None) -> None:
        self.shard = shard
        self.segment = segment
        self.offset = offset
        where = ""
        if segment is not None:
            where = f" [{segment}" + (
                f"@{offset}]" if offset is not None else "]")
        super().__init__(f"{message}{where}")


class DurabilityLagExceeded(TransportError):
    """An ``ack=enqueue`` writer ran too far ahead of the flusher: the
    gap between the last enqueued record and the last fsynced record
    crossed the configured bound.  Typed backpressure, not an error in
    the data path — the writer should drain (wait for a sync) and
    retry, exactly like a client receiving :class:`Overloaded` backs
    off the admission queue.

    Attributes
    ----------
    lag:
        Unsynced records outstanding when the append was refused.
    limit:
        The configured bound the lag crossed.
    """

    def __init__(self, lag: int, limit: int) -> None:
        self.lag = lag
        self.limit = limit
        super().__init__(
            f"durability lag of {lag} unsynced records exceeds the "
            f"configured bound of {limit}; wait for a sync and retry")
