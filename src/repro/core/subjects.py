"""Subjects: the *who* of an access request.

The paper's §3.1 observes that the population accessing web databases is
"greater and more dynamic than the one accessing conventional DBMSs", so
identity-based access control alone is not enough and subjects must be
qualifiable by *roles* and *credentials*.  This module provides the three
subject-qualification mechanisms side by side so that the rest of the
library — and benchmark E1 — can compare them:

* :class:`Identity` — a bare user id, the conventional-DBMS model;
* :class:`Role` / :class:`RoleHierarchy` — named functions with seniority
  (RBAC-style), a role implies every role it dominates;
* credentials — attribute bundles, defined in :mod:`repro.core.credentials`
  and attached to subjects here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.credentials import Credential
from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class Identity:
    """A bare user identity.

    Identities compare by ``name`` only; two ``Identity("alice")`` objects
    are the same subject.
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Role:
    """A named role, e.g. ``Role("doctor")``."""

    name: str

    def __str__(self) -> str:
        return self.name


class RoleHierarchy:
    """A partial order over roles: senior roles inherit junior permissions.

    ``add_seniority(senior, junior)`` records that *senior* dominates
    *junior*.  :meth:`dominated_by` returns the downward closure — every
    role a given role may act as, including itself.  Cycles are rejected,
    keeping the hierarchy a DAG.
    """

    def __init__(self) -> None:
        self._juniors: dict[Role, set[Role]] = {}

    def add_role(self, role: Role) -> None:
        """Register *role* with no seniority edges (idempotent)."""
        self._juniors.setdefault(role, set())

    def add_seniority(self, senior: Role, junior: Role) -> None:
        """Record that *senior* dominates *junior*."""
        if senior == junior:
            raise ConfigurationError(f"role {senior} cannot dominate itself")
        if senior in self.dominated_by(junior):
            raise ConfigurationError(
                f"adding {senior} > {junior} would create a cycle")
        self.add_role(senior)
        self.add_role(junior)
        self._juniors[senior].add(junior)

    def roles(self) -> Iterator[Role]:
        return iter(self._juniors)

    def dominated_by(self, role: Role) -> set[Role]:
        """Every role *role* may act as (reflexive, transitive closure)."""
        closure: set[Role] = set()
        stack = [role]
        while stack:
            current = stack.pop()
            if current in closure:
                continue
            closure.add(current)
            stack.extend(self._juniors.get(current, ()))
        return closure

    def dominates(self, senior: Role, junior: Role) -> bool:
        """True if *senior* may act as *junior* (reflexively)."""
        return junior in self.dominated_by(senior)


class Subject:
    """A fully qualified subject: identity + roles + credentials.

    This is the object handed to :class:`repro.core.evaluator.PolicyEvaluator`
    when checking a request.  ``effective_roles`` expands the directly
    assigned roles through an optional :class:`RoleHierarchy`.
    """

    def __init__(self, identity: Identity | str,
                 roles: Iterable[Role] = (),
                 credentials: Iterable[Credential] = ()) -> None:
        if isinstance(identity, str):
            identity = Identity(identity)
        self.identity = identity
        self.roles: frozenset[Role] = frozenset(roles)
        self.credentials: tuple[Credential, ...] = tuple(credentials)

    def __repr__(self) -> str:
        return (f"Subject({self.identity.name!r}, roles={sorted(r.name for r in self.roles)}, "
                f"credentials={[c.type_name for c in self.credentials]})")

    def effective_roles(self, hierarchy: RoleHierarchy | None = None
                        ) -> frozenset[Role]:
        """Directly assigned roles plus everything they dominate."""
        if hierarchy is None:
            return self.roles
        expanded: set[Role] = set()
        for role in self.roles:
            expanded |= hierarchy.dominated_by(role)
        return frozenset(expanded)

    def credential_of_type(self, type_name: str) -> Credential | None:
        """The first credential of the given type, or None."""
        for credential in self.credentials:
            if credential.type_name == type_name:
                return credential
        return None

    def attribute(self, type_name: str, attribute: str) -> object | None:
        """Look up ``attribute`` on the first credential of ``type_name``."""
        credential = self.credential_of_type(type_name)
        if credential is None:
            return None
        return credential.attributes.get(attribute)


class SubjectDirectory:
    """A registry of known subjects keyed by identity name.

    Plays the part of the web site's user store.  Role assignment and
    credential issuance go through the directory so tests and benchmarks
    have one mutation point.
    """

    def __init__(self, hierarchy: RoleHierarchy | None = None) -> None:
        self.hierarchy = hierarchy or RoleHierarchy()
        self._subjects: dict[str, Subject] = {}

    def __len__(self) -> int:
        return len(self._subjects)

    def __contains__(self, name: str) -> bool:
        return name in self._subjects

    def register(self, subject: Subject) -> Subject:
        name = subject.identity.name
        if name in self._subjects:
            raise ConfigurationError(f"subject {name!r} already registered")
        self._subjects[name] = subject
        return subject

    def create(self, name: str, roles: Iterable[Role] = (),
               credentials: Iterable[Credential] = ()) -> Subject:
        return self.register(Subject(name, roles, credentials))

    def get(self, name: str) -> Subject:
        try:
            return self._subjects[name]
        except KeyError:
            raise ConfigurationError(f"unknown subject {name!r}") from None

    def assign_role(self, name: str, role: Role) -> Subject:
        """Return a new Subject with *role* added (directory is updated)."""
        old = self.get(name)
        new = Subject(old.identity, old.roles | {role}, old.credentials)
        self._subjects[name] = new
        return new

    def issue_credential(self, name: str, credential: Credential) -> Subject:
        """Return a new Subject with *credential* attached."""
        old = self.get(name)
        new = Subject(old.identity, old.roles,
                      old.credentials + (credential,))
        self._subjects[name] = new
        return new

    def subjects(self) -> Iterator[Subject]:
        return iter(self._subjects.values())
