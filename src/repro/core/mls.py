"""Multilevel security (MLS) lattice and Bell–LaPadula checks.

Section 5 of the paper speaks the MLS vocabulary directly: "under certain
contexts, portions of the document may be Unclassified while under certain
other context the document may be Classified ... one could declassify an
RDF document, once the war is over".  This module provides the classical
four-level lattice with optional compartments (categories), dominance,
and the Bell–LaPadula simple-security / *-property checks used by
:mod:`repro.rdfdb.security` and :mod:`repro.semweb`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import ConfigurationError


class Level(enum.IntEnum):
    """Hierarchical sensitivity levels, totally ordered."""

    UNCLASSIFIED = 0
    CONFIDENTIAL = 1
    SECRET = 2
    TOP_SECRET = 3

    @classmethod
    def parse(cls, text: "Level | str") -> "Level":
        if isinstance(text, Level):
            return text
        try:
            return cls[text.strip().upper().replace(" ", "_")]
        except KeyError:
            raise ConfigurationError(f"unknown security level {text!r}") from None

    def __str__(self) -> str:
        return self.name.title().replace("_", " ")


@dataclass(frozen=True)
class Label:
    """A security label: hierarchical level plus a compartment set.

    ``Label(Level.SECRET, {"nuclear"})`` dominates
    ``Label(Level.CONFIDENTIAL, {"nuclear"})`` but is incomparable with
    ``Label(Level.SECRET, {"crypto"})``.
    """

    level: Level
    compartments: frozenset[str] = frozenset()

    def __init__(self, level: "Level | str",
                 compartments: Iterable[str] = ()) -> None:
        object.__setattr__(self, "level", Level.parse(level))
        object.__setattr__(self, "compartments", frozenset(compartments))

    def dominates(self, other: "Label") -> bool:
        """Lattice order: level >= and compartments superset."""
        return (self.level >= other.level
                and self.compartments >= other.compartments)

    def join(self, other: "Label") -> "Label":
        """Least upper bound, the label of combined information."""
        return Label(max(self.level, other.level),
                     self.compartments | other.compartments)

    def meet(self, other: "Label") -> "Label":
        """Greatest lower bound."""
        return Label(min(self.level, other.level),
                     self.compartments & other.compartments)

    def __str__(self) -> str:
        if self.compartments:
            return f"{self.level} [{','.join(sorted(self.compartments))}]"
        return str(self.level)


#: The public label, bottom of the lattice.
PUBLIC = Label(Level.UNCLASSIFIED)


def can_read(clearance: Label, object_label: Label) -> bool:
    """Bell–LaPadula simple-security property: no read up."""
    return clearance.dominates(object_label)


def can_write(clearance: Label, object_label: Label) -> bool:
    """Bell–LaPadula *-property: no write down."""
    return object_label.dominates(clearance)


class ClassificationMap:
    """Labels for a set of named items, with a default.

    This is the piece the RDF/ontology security layers reuse: stores map
    item keys (triple ids, ontology terms, layer names) to labels and ask
    dominance questions.  It also implements *context-dependent*
    classification: :meth:`declassify` and :meth:`reclassify` move items
    between levels when the world changes ("once the war is over").
    """

    def __init__(self, default: Label = PUBLIC) -> None:
        self.default = default
        self._labels: dict[object, Label] = {}

    def classify(self, item: object, label: Label | Level | str) -> None:
        if not isinstance(label, Label):
            label = Label(label)
        self._labels[item] = label

    def label_of(self, item: object) -> Label:
        return self._labels.get(item, self.default)

    def declassify(self, item: object, to: Label | Level | str = PUBLIC) -> Label:
        """Lower an item's label; raises if the move is an upgrade."""
        new = to if isinstance(to, Label) else Label(to)
        current = self.label_of(item)
        if not current.dominates(new):
            raise ConfigurationError(
                f"declassify must lower the label: {current} -> {new}")
        self._labels[item] = new
        return new

    def reclassify(self, item: object, to: Label | Level | str) -> Label:
        """Raise (or arbitrarily move) an item's label."""
        new = to if isinstance(to, Label) else Label(to)
        self._labels[item] = new
        return new

    def readable_by(self, clearance: Label,
                    items: Iterable[object]) -> list[object]:
        """Filter *items* to those the clearance may read."""
        return [item for item in items
                if can_read(clearance, self.label_of(item))]

    def items(self) -> dict[object, Label]:
        return dict(self._labels)
