"""repro.replica: replica groups with Merkle anti-entropy (A11).

The sharded stores of :mod:`repro.scale` grow into replica groups:
each shard has a primary applying writes and shipping versioned deltas
to read replicas, every replica publishes its state through
:mod:`repro.snap` epoch snapshots (reads stay lock-free), divergence
is found and repaired through incremental :mod:`repro.merkle` trees
(O(log n) per discrepancy, never a full resync), and read-your-writes
sessions generalize the UDDI watermark from :mod:`repro.faults`.

Grounded in the paper's Merkle-authenticated UDDI: replicas are
mutually distrusting copies that prove state equality by digest —
``converged()`` means byte-identical Merkle roots, not an assertion.
The chaos battery (``tests/faults/test_replica_chaos.py``) is the
correctness oracle: kill/partition/stale-delay replicas under writes
across ≥60 seeds and require convergence to the fault-free digest.
"""

from repro.replica.antientropy import (
    HASH_WIRE_BYTES,
    NODE_ID_WIRE_BYTES,
    RepairReport,
    antientropy_repair,
    diff_divergent_buckets,
    full_resync,
)
from repro.replica.chaos import (
    ChaosResult,
    chaos_ops,
    oracle_digest,
    run_chaos,
    scenario_plan,
)
from repro.replica.group import (
    Delta,
    Replica,
    ReplicaGroup,
    ReplicaSnapshot,
)
from repro.replica.router import ReplicaRouter, ReplicaSession
from repro.replica.store import BucketedMerkleStore, bucket_payload

__all__ = [
    "BucketedMerkleStore",
    "ChaosResult",
    "Delta",
    "HASH_WIRE_BYTES",
    "NODE_ID_WIRE_BYTES",
    "RepairReport",
    "Replica",
    "ReplicaGroup",
    "ReplicaRouter",
    "ReplicaSession",
    "ReplicaSnapshot",
    "antientropy_repair",
    "bucket_payload",
    "chaos_ops",
    "diff_divergent_buckets",
    "full_resync",
    "oracle_digest",
    "run_chaos",
    "scenario_plan",
]
