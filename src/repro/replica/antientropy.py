"""Merkle anti-entropy: find and repair divergence in O(log n) per
discrepancy instead of a full resync.

Two replicas with equal bucket counts hold Merkle trees of identical
shape (:meth:`~repro.merkle.tree.MerkleTree.children_of`), so the diff
walks both trees top-down in lockstep: equal node hashes prune the
whole subtree, unequal ones descend.  Only the divergent leaf buckets'
payloads cross the wire — bytes shipped is O(divergent subtrees), the
property the replica bench gates at ≥10x under full resync.

Wire accounting models a real exchange: each compared hash costs
:data:`HASH_WIRE_BYTES` (a raw SHA-256 digest), each descend request
names a node for :data:`NODE_ID_WIRE_BYTES`, and each shipped bucket
costs its canonical payload length.  The totals are what
``BENCH_replica.json`` reports against the full-resync baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError, IntegrityError
from repro.replica.store import BucketedMerkleStore

#: A compared hash crosses the wire as a raw 32-byte digest.
HASH_WIRE_BYTES = 32
#: A descend request names one (level, index) node.
NODE_ID_WIRE_BYTES = 8


@dataclass
class RepairReport:
    """What one repair (or resync) cost, in comparisons and bytes."""

    divergent_buckets: tuple[int, ...] = ()
    buckets_shipped: int = 0
    hashes_compared: int = 0
    hash_bytes: int = 0
    request_bytes: int = 0
    entry_bytes: int = 0
    full_resync: bool = False
    _counts: dict[str, int] = field(default_factory=dict, repr=False)

    @property
    def bytes_shipped(self) -> int:
        return self.hash_bytes + self.request_bytes + self.entry_bytes

    def snapshot(self) -> dict[str, int | bool]:
        return {
            "divergent_buckets": len(self.divergent_buckets),
            "buckets_shipped": self.buckets_shipped,
            "hashes_compared": self.hashes_compared,
            "hash_bytes": self.hash_bytes,
            "request_bytes": self.request_bytes,
            "entry_bytes": self.entry_bytes,
            "bytes_shipped": self.bytes_shipped,
            "full_resync": self.full_resync,
        }


def diff_divergent_buckets(source, target,
                           report: RepairReport | None = None
                           ) -> list[int]:
    """Bucket indices where *source* and *target* trees disagree.

    Top-down lockstep BFS: compare the roots, then descend only into
    children whose hashes differ.  With *d* divergent buckets over *n*
    the walk compares O(d·log n) hashes, never O(n).
    """
    if source.leaf_count != target.leaf_count:
        raise ConfigurationError(
            f"bucket layouts differ ({source.leaf_count} vs "
            f"{target.leaf_count} leaves); replicas must agree on the "
            f"partitioning before they can diff")
    report = report if report is not None else RepairReport()
    report.hashes_compared += 1
    report.hash_bytes += HASH_WIRE_BYTES
    if source.root == target.root:
        return []
    top = source.level_count - 1
    if top == 0:
        return [0]
    divergent: list[int] = []
    frontier: list[tuple[int, int]] = [(top, 0)]
    while frontier:
        descend: list[tuple[int, int]] = []
        for level, index in frontier:
            for child in source.children_of(level, index):
                report.hashes_compared += 1
                report.hash_bytes += HASH_WIRE_BYTES
                report.request_bytes += NODE_ID_WIRE_BYTES
                if (source.node_hash(level - 1, child)
                        == target.node_hash(level - 1, child)):
                    continue
                if level - 1 == 0:
                    divergent.append(child)
                else:
                    descend.append((level - 1, child))
        frontier = descend
    return sorted(divergent)


def antientropy_repair(source: BucketedMerkleStore,
                       target: BucketedMerkleStore) -> RepairReport:
    """Make *target*'s state byte-identical to *source*'s by shipping
    only the divergent buckets; verified by root comparison after."""
    report = RepairReport()
    divergent = diff_divergent_buckets(source.tree, target.tree, report)
    for index in divergent:
        payload = source.payload(index)
        report.entry_bytes += (len(payload.encode("utf-8"))
                               + NODE_ID_WIRE_BYTES)
        target.replace_bucket(index, source.bucket_entries(index))
    report.divergent_buckets = tuple(divergent)
    report.buckets_shipped = len(divergent)
    if target.root != source.root:
        raise IntegrityError(
            "anti-entropy repair did not converge the Merkle root — "
            "the shipped buckets do not explain the divergence")
    return report


def full_resync(source: BucketedMerkleStore,
                target: BucketedMerkleStore) -> RepairReport:
    """The baseline: ship every bucket regardless of divergence."""
    if source.bucket_count != target.bucket_count:
        raise ConfigurationError(
            f"bucket layouts differ ({source.bucket_count} vs "
            f"{target.bucket_count})")
    report = RepairReport(full_resync=True)
    for index in range(source.bucket_count):
        payload = source.payload(index)
        report.entry_bytes += (len(payload.encode("utf-8"))
                               + NODE_ID_WIRE_BYTES)
        target.replace_bucket(index, source.bucket_entries(index))
    report.buckets_shipped = source.bucket_count
    if target.root != source.root:
        raise IntegrityError("full resync did not converge the root")
    return report
