"""Replica groups: a primary-per-shard write path over epoch snapshots.

One :class:`ReplicaGroup` is a shard's set of copies: the primary
applies writes and ships versioned deltas to the read replicas; each
replica publishes every accepted state through its own
:class:`~repro.snap.epoch.EpochManager`, so reads are lock-free
single-pointer loads exactly like the rest of the snapshot layer.

The correctness discipline, proven by the chaos battery:

* **contiguous deltas** — a replica accepts a delta only when its
  version is exactly ``watermark + 1`` and otherwise raises a typed
  :class:`~repro.core.errors.ReplicaDiverged`, falling behind rather
  than opening a hole.  A replica's watermark therefore names a state
  the primary lineage actually published — the invariant failover and
  read-your-writes sessions both lean on;
* **acknowledged ⇒ survivable** — a write is acknowledged only after
  the primary applied it *and* at least one read replica accepted the
  delta (groups of one ack on the primary alone).  Otherwise the
  caller gets :class:`~repro.core.errors.MessageDropped` and retries;
  retried ops are idempotent puts/deletes, so double application under
  lost acks is harmless;
* **failover promotes the freshest** — the candidate with the highest
  watermark among reachable replicas contains every acknowledged
  write; a reachable candidate *below* the acknowledged high-water is
  refused outright (promoting it would drop a durable write while its
  holder sits behind a transient fault window); promotion bumps the
  winner's watermark to the group's high-water version so version
  numbers never rewind or get reused across lineages (watermarks stay
  monotone for sessions);
* **anti-entropy converges** — a background round diffs each replica
  against the primary by Merkle tree and ships only divergent buckets
  (:mod:`repro.replica.antientropy`); the group has converged when
  every replica's root equals the primary's, byte for byte.

Faults are injected at the sites ``replica:{shard}/{i}`` and surface
as typed transport errors (CRASH → ReplicaUnavailable, DROP/REORDER →
MessageDropped, CORRUPT → CorruptMessage, STALE_READ → StaleRead,
DELAY charges the fault clock inside the injector) — the same mapping
as both gateways, so one chaos plan speaks the whole stack's language.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import (
    ConfigurationError,
    CorruptMessage,
    MessageDropped,
    ReplicaDiverged,
    ReplicaUnavailable,
    SnapshotError,
    StaleRead,
    TransportError,
)
from repro.crypto.hashing import sha256_int
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind
from repro.replica.antientropy import RepairReport, antientropy_repair
from repro.replica.store import BucketedMerkleStore
from repro.snap.epoch import EpochManager


@dataclass(frozen=True)
class Delta:
    """One versioned write shipped primary → replica.

    ``ops`` are ``("put", key, value)`` / ``("del", key)`` tuples —
    idempotent by construction, so at-least-once delivery (DUPLICATE
    faults, client retries after lost acks) cannot corrupt state.
    """

    version: int
    ops: tuple[tuple, ...]


class ReplicaSnapshot:
    """One immutable published epoch of a replica's state.

    Shares bucket dicts with the store zero-copy (writes replace
    buckets, never mutate them), carries the watermark the state
    corresponds to, and the Merkle root as its digest.
    """

    __slots__ = ("_buckets", "watermark", "root", "epoch")

    def __init__(self, buckets: tuple[dict[str, str], ...],
                 watermark: int, root: str) -> None:
        self._buckets = buckets
        self.watermark = watermark
        self.root = root
        self.epoch = None  # set by EpochManager.publish

    def get(self, key: str) -> str | None:
        index = sha256_int(f"bucket:{key}") % len(self._buckets)
        return self._buckets[index].get(key)


class Replica:
    """One copy of a shard: store + watermark + published epochs."""

    def __init__(self, site: str, bucket_count: int = 64,
                 faults: FaultInjector | None = None) -> None:
        self.site = site
        self.store = BucketedMerkleStore(bucket_count)
        self.faults = faults
        #: Highest version this replica's state reflects.
        self.watermark = 0
        self.epochs = EpochManager()
        #: The epoch before the current one — what STALE_READ faults
        #: serve, so staleness is a *real* lagging snapshot, not a flag.
        self._previous: ReplicaSnapshot | None = None
        #: Deltas a REORDER fault deferred behind later traffic.
        self._deferred: list[Delta] = []
        self.reads_served = 0
        self.deltas_applied = 0
        self._publish()

    # -- epoch publication ------------------------------------------------

    def _publish(self) -> None:
        try:
            previous = self.epochs.current()
        except SnapshotError:
            previous = None
        snapshot = ReplicaSnapshot(self.store.buckets_view(),
                                   self.watermark, self.store.root)
        self.epochs.publish(snapshot)
        self._previous = previous

    # -- fault gating -----------------------------------------------------

    def _gate(self, *, deliverable: bool) -> dict[str, bool]:
        """Step the injector at this replica's site; typed errors out.

        *deliverable* marks operations that carry a payload a REORDER
        fault can defer (delta delivery); reads just fail dropped.
        """
        flags = {"stale": False, "defer": False, "duplicate": False}
        if self.faults is None:
            self._flush_deferred()
            return flags
        events = self.faults.step(self.site)
        for event in events:
            if event.kind is FaultKind.CRASH:
                raise ReplicaUnavailable(f"{self.site} is down")
            if event.kind is FaultKind.CORRUPT:
                raise CorruptMessage(
                    f"message to {self.site} failed its frame checksum")
            if event.kind is FaultKind.DROP:
                raise MessageDropped(
                    f"message to {self.site} lost in transit")
            if event.kind is FaultKind.REORDER:
                if deliverable:
                    flags["defer"] = True
                else:
                    raise MessageDropped(
                        f"request to {self.site} arrived out of order "
                        f"and was discarded")
            if event.kind is FaultKind.DUPLICATE:
                flags["duplicate"] = True
            if event.kind is FaultKind.STALE_READ:
                flags["stale"] = True
        self._flush_deferred()
        return flags

    def _flush_deferred(self) -> None:
        """Deliver reorder-deferred deltas now that later traffic has
        overtaken them (best effort: non-contiguous ones stay lost
        until anti-entropy repairs the gap)."""
        if not self._deferred:
            return
        pending, self._deferred = self._deferred, []
        for delta in sorted(pending, key=lambda d: d.version):
            self._try_apply(delta)

    def ping(self) -> None:
        """Liveness probe: raises the site's typed error if down."""
        if self.faults is None:
            return
        for event in self.faults.step(self.site):
            if event.kind is FaultKind.CRASH:
                raise ReplicaUnavailable(f"{self.site} is down")

    # -- the replica (follower) write path --------------------------------

    def receive(self, delta: Delta) -> None:
        """Accept one shipped delta, fault-gated and contiguity-checked."""
        flags = self._gate(deliverable=True)
        if flags["defer"]:
            self._deferred.append(delta)
            raise MessageDropped(
                f"delta v{delta.version} to {self.site} overtaken in "
                f"transit (deferred)")
        if not self._try_apply(delta):
            raise ReplicaDiverged(
                f"{self.site} at watermark {self.watermark} refused "
                f"non-contiguous delta v{delta.version}")
        if flags["duplicate"]:
            # At-least-once delivery: the second application is a
            # version no-op, which _try_apply recognizes.
            self._try_apply(delta)

    def _try_apply(self, delta: Delta) -> bool:
        """Apply iff contiguous; True when the state reflects *delta*."""
        if delta.version <= self.watermark:
            return True  # already applied (duplicate/late copy)
        if delta.version != self.watermark + 1:
            return False  # a hole — fall behind, wait for repair
        self.store.apply(delta.ops)
        self.watermark = delta.version
        self.deltas_applied += 1
        self._publish()
        return True

    # -- the primary (leader) write path -----------------------------------

    def admit_write(self) -> dict[str, bool]:
        """Fault gate for an originating write at the primary's site.

        CRASH/CORRUPT/REORDER refuse the write before application;
        DROP models a lost *acknowledgement*: the write will apply and
        ship, but the caller's ack is raised away afterwards.
        """
        flags = {"ack_lost": False}
        if self.faults is None:
            self._flush_deferred()
            return flags
        for event in self.faults.step(self.site):
            if event.kind is FaultKind.CRASH:
                raise ReplicaUnavailable(f"primary {self.site} is down")
            if event.kind is FaultKind.CORRUPT:
                raise CorruptMessage(
                    f"write to primary {self.site} failed its frame "
                    f"checksum")
            if event.kind is FaultKind.REORDER:
                raise MessageDropped(
                    f"write to primary {self.site} arrived out of "
                    f"order and was discarded")
            if event.kind is FaultKind.DROP:
                flags["ack_lost"] = True
        self._flush_deferred()
        return flags

    def gate_send(self) -> None:
        """One send operation at the primary's site per shipped delta.

        A CRASH window opening here is the "kill primary mid-publish"
        scenario: earlier replicas already hold the delta, later ones
        never see it, and the group must still converge.
        """
        if self.faults is None:
            return
        for event in self.faults.step(self.site):
            if event.kind is FaultKind.CRASH:
                raise ReplicaUnavailable(
                    f"primary {self.site} went down mid-publish")

    def apply_authoritative(self, delta: Delta) -> None:
        """Primary-side application: the leader's watermark may jump
        (post-failover version counters resume from the promotion
        point), so no contiguity check — the primary defines history."""
        if delta.version <= self.watermark:
            return  # idempotent re-application after a lost ack
        self.store.apply(delta.ops)
        self.watermark = delta.version
        self.deltas_applied += 1
        self._publish()

    def promote(self, high_water_version: int) -> None:
        """Become primary: adopt the group's high-water version so
        version numbers are never reused across lineages."""
        if high_water_version > self.watermark:
            self.watermark = high_water_version
            self._publish()

    # -- reads -------------------------------------------------------------

    def serve_read(self, key: str,
                   min_watermark: int = 0) -> tuple[str | None, int]:
        """Read *key* from the current epoch, fault-gated.

        A STALE_READ fault serves the *previous* epoch — genuinely lagging
        state, which the watermark check then catches: if the served
        snapshot's watermark is below *min_watermark* the caller gets a
        typed :class:`StaleRead` instead of silently old data.
        """
        flags = self._gate(deliverable=False)
        snapshot = self.epochs.current()
        if flags["stale"] and self._previous is not None:
            snapshot = self._previous
        if snapshot.watermark < min_watermark:
            raise StaleRead(
                f"{self.site} answered at watermark "
                f"{snapshot.watermark}; caller requires >= "
                f"{min_watermark}")
        self.reads_served += 1
        return snapshot.get(key), snapshot.watermark

    # -- repair ------------------------------------------------------------

    def repair_from(self, source: "Replica") -> RepairReport:
        """Anti-entropy pull: converge on *source*'s state, shipping
        only divergent buckets; adopts *source*'s watermark (the state
        now *is* that watermark's state, fresh by construction)."""
        self._gate(deliverable=True)  # repair traffic faults too
        report = antientropy_repair(source.store, self.store)
        self.watermark = source.watermark
        self._publish()
        return report


class ReplicaGroup:
    """A shard's replicas: one primary, N-1 read replicas, failover."""

    def __init__(self, shard: str = "0", replica_count: int = 3,
                 bucket_count: int = 64,
                 faults: FaultInjector | None = None,
                 trace: list | None = None) -> None:
        if replica_count < 1:
            raise ConfigurationError(
                f"replica_count must be >= 1, got {replica_count}")
        self.shard = str(shard)
        self.faults = faults
        self.replicas = [
            Replica(f"replica:{self.shard}/{i}", bucket_count, faults)
            for i in range(replica_count)]
        self.primary_index = 0
        #: High-water version ever issued (never rewinds, even across
        #: failovers — promotion bumps the new primary up to it).
        self.version = 0
        #: Highest *acknowledged* version: the durability floor no
        #: failover may promote below (a candidate whose watermark is
        #: under it would silently drop an acknowledged write).
        self.acked_version = 0
        self.failovers = 0
        self.unacked_writes = 0
        #: Deterministic event log: (event, ...) tuples, compared
        #: verbatim by the chaos battery's same-seed determinism check.
        self.trace: list[tuple] = trace if trace is not None else []
        self._read_cursor = 0

    def _record(self, *event) -> None:
        self.trace.append(event)

    @property
    def primary(self) -> Replica:
        return self.replicas[self.primary_index]

    def read_replicas(self) -> list[Replica]:
        return [replica for index, replica in enumerate(self.replicas)
                if index != self.primary_index]

    # -- writes ------------------------------------------------------------

    def write(self, ops) -> int:
        """Apply *ops* at the primary and ship the delta to every read
        replica; acknowledged (version returned) only when the primary
        applied it and ≥1 read replica holds the delta."""
        ops = tuple(tuple(op) for op in ops)
        primary = self.primary
        flags = primary.admit_write()  # may raise: primary-site faults
        version = self.version + 1
        delta = Delta(version, ops)
        primary.apply_authoritative(delta)
        self.version = version
        self._record("write", version, len(ops))
        shipped = 0
        primary_died: TransportError | None = None
        for index, replica in enumerate(self.replicas):
            if index == self.primary_index:
                continue
            if primary_died is None:
                try:
                    primary.gate_send()
                except TransportError as exc:
                    primary_died = exc
            if primary_died is not None:
                self._record("ship", version, index, "primary-down")
                continue
            try:
                replica.receive(delta)
                shipped += 1
                self._record("ship", version, index, "ok")
            except TransportError as exc:
                self._record("ship", version, index,
                             type(exc).__name__)
        if primary_died is not None:
            # The write applied locally but the primary died before
            # finishing publication — unacknowledged; the caller fails
            # over and retries (idempotent ops make that safe).
            self.unacked_writes += 1
            raise ReplicaUnavailable(
                f"primary {primary.site} crashed mid-publish of "
                f"v{version}")
        if shipped == 0 and len(self.replicas) > 1:
            self.unacked_writes += 1
            self._record("unacked", version)
            raise MessageDropped(
                f"delta v{version} reached no read replica of shard "
                f"{self.shard}; write unacknowledged")
        if flags["ack_lost"]:
            self.unacked_writes += 1
            raise MessageDropped(
                f"ack for v{version} from primary {primary.site} lost "
                f"in transit (the write did apply)")
        self.acked_version = version
        return version

    # -- reads -------------------------------------------------------------

    def read(self, key: str,
             min_watermark: int = 0) -> tuple[str | None, int, int]:
        """Serve *key* from any caught-up replica, primary as fallback.

        Fans out over the read replicas round-robin; a replica that is
        down, lagging below *min_watermark*, or faulted is skipped and
        the next one probed.  Returns ``(value, watermark, index)``.
        """
        readers = [index for index in range(len(self.replicas))
                   if index != self.primary_index]
        if readers:
            start = self._read_cursor % len(readers)
            order = readers[start:] + readers[:start]
        else:
            order = []
        order.append(self.primary_index)
        self._read_cursor += 1
        last_error: TransportError | None = None
        for index in order:
            try:
                value, watermark = self.replicas[index].serve_read(
                    key, min_watermark)
            except TransportError as exc:
                last_error = exc
                continue
            self._record("read", key, index, watermark)
            return value, watermark, index
        assert last_error is not None
        raise last_error

    # -- failover ----------------------------------------------------------

    def failover(self) -> int:
        """Promote the freshest reachable replica to primary.

        Freshest-by-watermark contains every acknowledged write (the
        contiguity rule makes watermarks name real published prefixes).
        A reachable candidate below the acked high-water is *refused*:
        the one replica holding the newest acknowledged delta may be
        behind a transient fault window, and promoting past it would
        silently drop a write the caller was told survived — so the
        failover fails typed and the caller retries until a covering
        replica answers.  Promotion bumps the winner to the group's
        high-water version and an immediate anti-entropy round pulls
        the reachable survivors — including the demoted ex-primary,
        which may hold unacknowledged writes that must be overwritten —
        onto the new history.
        """
        candidates = sorted(
            (index for index in range(len(self.replicas))
             if index != self.primary_index),
            key=lambda index: (-self.replicas[index].watermark, index))
        last_error: TransportError | None = None
        for index in candidates:
            if self.replicas[index].watermark < self.acked_version:
                # Sorted by freshness: nobody further down covers the
                # durability floor either.
                last_error = ReplicaUnavailable(
                    f"no reachable replica of shard {self.shard} "
                    f"covers acked version {self.acked_version}")
                break
            try:
                self.replicas[index].ping()
            except TransportError as exc:
                last_error = exc
                continue
            previous = self.primary_index
            self.primary_index = index
            self.replicas[index].promote(self.version)
            self.version = self.replicas[index].watermark
            self.failovers += 1
            self._record("failover", previous, index, self.version)
            self.anti_entropy_round()
            return index
        if last_error is None:
            raise ReplicaUnavailable(
                f"shard {self.shard} has no replica to promote")
        raise last_error

    # -- anti-entropy ------------------------------------------------------

    def anti_entropy_round(self) -> list[tuple[int, RepairReport]]:
        """One background repair pass: every replica whose digest
        differs from the primary's pulls the divergent buckets."""
        primary = self.primary
        reports: list[tuple[int, RepairReport]] = []
        for index, replica in enumerate(self.replicas):
            if index == self.primary_index:
                continue
            if (replica.store.root == primary.store.root
                    and replica.watermark == primary.watermark):
                continue
            try:
                report = replica.repair_from(primary)
            except TransportError as exc:
                self._record("repair", index, type(exc).__name__)
                continue
            reports.append((index, report))
            self._record("repair", index, report.buckets_shipped)
        return reports

    def converged(self) -> bool:
        """All replicas byte-identical to the primary (digest equality
        — the mutually-distrusting proof, not an assertion)."""
        primary = self.primary
        return all(replica.store.root == primary.store.root
                   and replica.watermark == primary.watermark
                   for replica in self.replicas)

    def state_digest(self) -> str:
        return self.primary.store.root

    def watermarks(self) -> list[int]:
        return [replica.watermark for replica in self.replicas]
