"""The replica chaos harness: seeded havoc, one convergence oracle.

Shared by the test battery (``tests/faults/test_replica_chaos.py``)
and ``benchmarks/bench_replica.py``: run a fixed workload against a
:class:`~repro.replica.group.ReplicaGroup` under a seeded
:class:`~repro.faults.plan.FaultPlan`, retrying writes through
failover, then let anti-entropy run and require the group to converge
to the **byte-identical fault-free digest** — same final state as if
no fault had ever fired.

Each seed overlays one of three adversarial scenarios on top of the
random plan (``seed % 3`` selects):

0. **kill the primary mid-publish** — a long CRASH window opens at the
   primary's site partway through the run, catching a delta after some
   replicas accepted it and before others did;
1. **partition one replica, delay another** — replica 1 goes dark for
   a long window while replica 2's traffic is repeatedly DELAYed;
2. **stale-read injection** — replicas answer reads from their
   previous epoch, exercising the watermark check on the read path.

Plans are bounded (every generated fault sits below a horizon), so a
retry loop that keeps making progress eventually runs fault-free —
the precondition for convergence.  Everything is deterministic: same
seed ⇒ same plan ⇒ same event trace, which the battery also asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.clock import FaultClock
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, merge_plans
from repro.core.errors import ReplicaUnavailable, TransportError
from repro.replica.group import ReplicaGroup
from repro.replica.store import BucketedMerkleStore

#: Write retries per op / read retries per probe / repair rounds: high
#: enough that a bounded plan always drains, small enough to catch a
#: livelock as a test failure instead of a hang.
_WRITE_ATTEMPTS = 30
_READ_ATTEMPTS = 10
_REPAIR_ROUNDS = 15


def chaos_ops(op_count: int = 30, key_space: int = 12) -> list[tuple]:
    """The deterministic workload: puts with periodic deletes."""
    ops: list[tuple] = []
    for index in range(op_count):
        key = f"k{index % key_space}"
        if index % 7 == 6:
            ops.append(("del", f"k{(index - 3) % key_space}"))
        else:
            ops.append(("put", key, f"value-{index}"))
    return ops


def oracle_digest(op_count: int = 30, bucket_count: int = 16,
                  key_space: int = 12) -> str:
    """The fault-free digest every chaos seed must converge to."""
    store = BucketedMerkleStore(bucket_count)
    store.apply(chaos_ops(op_count, key_space))
    return store.root


def scenario_plan(seed: int, replica_count: int = 3,
                  rate: float = 0.12, horizon: int = 60) -> FaultPlan:
    """Seeded random faults + one adversarial overlay (``seed % 3``)."""
    sites = [f"replica:0/{i}" for i in range(replica_count)]
    base = FaultPlan.random(seed, sites, rate, horizon=horizon)
    overlay = FaultPlan()
    scenario = seed % 3
    if scenario == 0:
        # Kill the primary mid-publish: a wide crash window partway in.
        overlay.add(sites[0], 8 + seed % 5,
                    FaultEvent(FaultKind.CRASH, magnitude=6))
    elif scenario == 1 and replica_count >= 3:
        # Partition replica 1, delay replica 2.
        overlay.add(sites[1], 4, FaultEvent(FaultKind.CRASH, magnitude=14))
        for op_index in (3, 6, 9, 12):
            overlay.add(sites[2], op_index,
                        FaultEvent(FaultKind.DELAY, magnitude=3))
    else:
        # Stale reads from every read replica.
        for site in sites[1:]:
            for op_index in (2, 5, 8, 11, 14):
                overlay.add(site, op_index, FaultKind.STALE_READ)
    return merge_plans([base, overlay])


@dataclass(frozen=True)
class ChaosResult:
    """One seed's outcome, comparable across runs (determinism check)."""

    seed: int
    converged: bool
    digest: str | None
    trace: tuple
    repairs: int
    failovers: int
    unacked_writes: int
    write_failures: int
    read_failures: int

    @property
    def matches_oracle(self) -> bool:
        return self.converged and self.write_failures == 0


def run_chaos(seed: int, replica_count: int = 3, op_count: int = 30,
              bucket_count: int = 16, rate: float = 0.12) -> ChaosResult:
    """One chaos run: workload under faults, then anti-entropy."""
    clock = FaultClock()
    plan = scenario_plan(seed, replica_count, rate)
    injector = FaultInjector(plan, clock, seed=seed)
    group = ReplicaGroup(shard="0", replica_count=replica_count,
                         bucket_count=bucket_count, faults=injector)
    write_failures = 0
    read_failures = 0
    floor = 0
    ops = chaos_ops(op_count)
    for index, op in enumerate(ops):
        # Write with retry + failover until acknowledged.
        for _ in range(_WRITE_ATTEMPTS):
            try:
                floor = max(floor, group.write((op,)))
                break
            except ReplicaUnavailable:
                try:
                    group.failover()
                except TransportError:
                    pass  # nobody reachable yet; the window drains
                clock.sleep(1)
            except TransportError:
                # Unacknowledged — likely delta gaps at the read
                # replicas; let the background anti-entropy loop run
                # one round so the retry can land contiguously.
                group.anti_entropy_round()
                clock.sleep(1)
        else:
            write_failures += 1
        # Interleave session reads (read-your-writes floor = last ack).
        if index % 3 == 2:
            key = f"k{index % 12}"
            for _ in range(_READ_ATTEMPTS):
                try:
                    group.read(key, min_watermark=floor)
                    break
                except TransportError:
                    clock.sleep(1)
            else:
                read_failures += 1
    # Background anti-entropy until digests agree (bounded rounds:
    # the plan's horizon guarantees eventual fault-free repairs).
    repairs = 0
    for _ in range(_REPAIR_ROUNDS):
        if group.converged():
            break
        repairs += len(group.anti_entropy_round())
        clock.sleep(1)
    converged = group.converged()
    return ChaosResult(
        seed=seed,
        converged=converged,
        digest=group.state_digest() if converged else None,
        trace=tuple(group.trace),
        repairs=repairs,
        failovers=group.failovers,
        unacked_writes=group.unacked_writes,
        write_failures=write_failures,
        read_failures=read_failures,
    )
