"""Replication-aware routing: consistent-hash shards × replica groups.

:class:`ReplicaRouter` sits beside
:class:`~repro.gateway.engine.EpochalShardRouter` in the serving tier:
keys hash onto shards through the same
:class:`~repro.scale.router.ConsistentHashRouter` ring, but each shard
is now a :class:`~repro.replica.group.ReplicaGroup` — writes go to the
shard's primary (with retry + failover on a crashed primary), reads
fan out to any caught-up replica.

Read-your-writes and monotonic reads are carried by
:class:`ReplicaSession`, the generalization of the UDDI write-version
watermark from :mod:`repro.uddi.resilient`: the session keeps one
watermark floor per shard; every acknowledged write raises the floor,
every read demands a replica at or above it (lagging replicas answer
with a typed :class:`~repro.core.errors.StaleRead` and the router
tries the next copy).  A successful read can therefore never observe a
watermark below the session's floor — the invariant the property
battery drives through random interleavings and failovers.
"""

from __future__ import annotations

from repro.core.errors import (
    ConfigurationError,
    IntegrityError,
    ReplicaUnavailable,
    RetryExhausted,
    TransportError,
)
from repro.faults.clock import FaultClock
from repro.faults.injector import FaultInjector
from repro.faults.resilience import RetryPolicy
from repro.replica.group import ReplicaGroup
from repro.scale.router import ConsistentHashRouter


class ReplicaSession:
    """Per-shard watermark floors: read-your-writes + monotonic reads."""

    def __init__(self) -> None:
        self._floors: dict[int, int] = {}

    def floor(self, shard: int) -> int:
        return self._floors.get(shard, 0)

    def advance(self, shard: int, watermark: int) -> None:
        """Raise the floor (acknowledged write): floors never go down."""
        if watermark > self._floors.get(shard, 0):
            self._floors[shard] = watermark

    def observed(self, shard: int, watermark: int) -> None:
        """Record a read's watermark; regression is a broken contract.

        The router only calls this with watermarks the replica proved
        at-or-above the floor, so a raise here is a *bug*, not a
        transport condition — hence :class:`IntegrityError`, which the
        property battery asserts never fires.
        """
        floor = self._floors.get(shard, 0)
        if watermark < floor:
            raise IntegrityError(
                f"session watermark regressed on shard {shard}: "
                f"observed {watermark} after floor {floor}")
        self._floors[shard] = watermark

    def snapshot(self) -> dict[int, int]:
        return dict(self._floors)


class ReplicaRouter:
    """Shard ring over replica groups: primary writes, fanned reads."""

    def __init__(self, shard_count: int = 4, replica_count: int = 3,
                 bucket_count: int = 64,
                 faults: FaultInjector | None = None,
                 retry: RetryPolicy | None = None,
                 clock: FaultClock | None = None) -> None:
        if shard_count < 1:
            raise ConfigurationError(
                f"shard_count must be >= 1, got {shard_count}")
        self.ring = ConsistentHashRouter(shard_count)
        self.shard_count = shard_count
        self.replica_count = replica_count
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=8, max_delay=8)
        if clock is None:
            clock = faults.clock if faults is not None else FaultClock()
        self.clock = clock
        self.groups = [
            ReplicaGroup(shard=str(index), replica_count=replica_count,
                         bucket_count=bucket_count, faults=faults)
            for index in range(shard_count)]
        self.reads = 0
        self.writes = 0

    # -- placement ---------------------------------------------------------

    def shard_for_key(self, key: str) -> int:
        return self.ring.shard_for(key)

    def group_for_key(self, key: str) -> ReplicaGroup:
        return self.groups[self.shard_for_key(key)]

    def session(self) -> ReplicaSession:
        return ReplicaSession()

    # -- writes (primary, with retry + failover) ---------------------------

    def put(self, key: str, value: str,
            session: ReplicaSession | None = None) -> int:
        return self._write(key, (("put", key, value),), session)

    def delete(self, key: str,
               session: ReplicaSession | None = None) -> int:
        return self._write(key, (("del", key),), session)

    def _write(self, key: str, ops: tuple,
               session: ReplicaSession | None) -> int:
        shard = self.shard_for_key(key)
        group = self.groups[shard]
        last_error: TransportError | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                version = group.write(ops)
            except ReplicaUnavailable as exc:
                last_error = exc
                try:
                    group.failover()
                except TransportError:
                    pass  # nobody promotable right now; back off
                self.clock.sleep(self.retry.delay_before(attempt, key))
                continue
            except TransportError as exc:
                last_error = exc
                # An unacknowledged write usually means the read
                # replicas have delta gaps (ReplicaDiverged on every
                # ship); one background repair round closes them so
                # the retry can be acknowledged.
                group.anti_entropy_round()
                self.clock.sleep(self.retry.delay_before(attempt, key))
                continue
            self.writes += 1
            if session is not None:
                session.advance(shard, version)
            return version
        assert last_error is not None
        raise RetryExhausted(self.retry.max_attempts, last_error)

    # -- reads (any caught-up replica) -------------------------------------

    def get(self, key: str,
            session: ReplicaSession | None = None) -> str | None:
        """Read *key* from any replica at or above the session floor."""
        shard = self.shard_for_key(key)
        group = self.groups[shard]
        floor = session.floor(shard) if session is not None else 0
        last_error: TransportError | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                value, watermark, _ = group.read(key, min_watermark=floor)
            except TransportError as exc:
                last_error = exc
                self.clock.sleep(self.retry.delay_before(attempt, key))
                continue
            self.reads += 1
            if session is not None:
                session.observed(shard, watermark)
            return value
        assert last_error is not None
        raise RetryExhausted(self.retry.max_attempts, last_error)

    # -- maintenance -------------------------------------------------------

    def anti_entropy(self, max_rounds: int = 8) -> int:
        """Repair rounds until every group converges; rounds used."""
        for rounds in range(1, max_rounds + 1):
            for group in self.groups:
                if not group.converged():
                    group.anti_entropy_round()
            if self.converged():
                return rounds
        return max_rounds

    def converged(self) -> bool:
        return all(group.converged() for group in self.groups)

    def state_digest(self) -> str:
        """Digest over all shards' primary roots (byte-identity oracle)."""
        from repro.crypto.hashing import combine
        return combine(*[group.state_digest() for group in self.groups])

    @property
    def failovers(self) -> int:
        return sum(group.failovers for group in self.groups)

    def reads_by_replica(self) -> dict[str, int]:
        """``site -> reads served``: the read-scaling bench's evidence
        that load spreads across replicas instead of piling on one."""
        return {replica.site: replica.reads_served
                for group in self.groups for replica in group.replicas}
