"""Bucketed key-value store summarized by an incremental Merkle tree.

Replica state is a flat ``key -> value`` map partitioned into a fixed
number of buckets by ``sha256(key) % bucket_count``.  Each bucket's
canonical serialization is a Merkle leaf, so:

* the tree **root is the state digest** — two replicas hold the same
  state iff their roots are byte-identical (the "prove equality by
  digest, not assertion" discipline the trust-brokerage model asks of
  mutually distrusting copies);
* a write rehashes one leaf's **root path only**
  (:meth:`~repro.merkle.tree.MerkleTree.update_leaf`, O(log buckets));
* divergence between two replicas localizes to the buckets whose
  leaf hashes differ, which the anti-entropy diff finds by descending
  the tree (:mod:`repro.replica.antientropy`).

Buckets are copy-on-write: a write replaces the touched bucket's dict,
never mutates it in place, so a published
:class:`~repro.replica.group.ReplicaSnapshot` can share bucket
references with the live store and stay immutable for free — the same
discipline as :mod:`repro.snap`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.errors import ConfigurationError
from repro.crypto.hashing import sha256_int
from repro.merkle.tree import MerkleTree

#: Separators for the canonical bucket serialization.  Unit/record
#: separators cannot appear in registry keys or values (they are
#: control characters), so the encoding is injective.
_KV_SEP = "\x1f"
_ENTRY_SEP = "\x1e"


def bucket_payload(entries: dict[str, str]) -> str:
    """Canonical, order-independent serialization of one bucket."""
    return _ENTRY_SEP.join(
        f"{key}{_KV_SEP}{entries[key]}" for key in sorted(entries))


class BucketedMerkleStore:
    """A replica's local state: bucketed entries + Merkle summary."""

    def __init__(self, bucket_count: int = 64) -> None:
        if bucket_count < 1:
            raise ConfigurationError(
                f"bucket_count must be >= 1, got {bucket_count}")
        self.bucket_count = bucket_count
        self._buckets: list[dict[str, str]] = [
            {} for _ in range(bucket_count)]
        self._tree = MerkleTree([""] * bucket_count)
        self._size = 0
        #: Cumulative hash computations spent on incremental updates —
        #: the O(log n)-per-write evidence the bench reports.
        self.hash_ops = 0

    # -- key routing -----------------------------------------------------

    def bucket_of(self, key: str) -> int:
        return sha256_int(f"bucket:{key}") % self.bucket_count

    # -- reads -----------------------------------------------------------

    def get(self, key: str) -> str | None:
        return self._buckets[self.bucket_of(key)].get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._buckets[self.bucket_of(key)]

    def __len__(self) -> int:
        return self._size

    def items(self) -> Iterator[tuple[str, str]]:
        for bucket in self._buckets:
            yield from sorted(bucket.items())

    @property
    def root(self) -> str:
        """The state digest: byte-identical roots ⇔ identical state."""
        return self._tree.root

    @property
    def tree(self) -> MerkleTree:
        return self._tree

    # -- writes (copy-on-write per bucket) -------------------------------

    def put(self, key: str, value: str) -> int:
        """Set ``key = value``; returns the touched bucket index."""
        index = self.bucket_of(key)
        bucket = self._buckets[index]
        if bucket.get(key) == value:
            return index
        if key not in bucket:
            self._size += 1
        updated = dict(bucket)
        updated[key] = value
        self._buckets[index] = updated
        self.hash_ops += self._tree.update_leaf(
            index, bucket_payload(updated))
        return index

    def delete(self, key: str) -> int:
        """Remove *key* if present (idempotent); returns its bucket."""
        index = self.bucket_of(key)
        bucket = self._buckets[index]
        if key not in bucket:
            return index
        updated = dict(bucket)
        del updated[key]
        self._buckets[index] = updated
        self._size -= 1
        self.hash_ops += self._tree.update_leaf(
            index, bucket_payload(updated))
        return index

    def apply(self, ops: Iterable[tuple]) -> None:
        """Apply ``("put", key, value)`` / ``("del", key)`` ops in order."""
        for op in ops:
            if op[0] == "put":
                self.put(op[1], op[2])
            elif op[0] == "del":
                self.delete(op[1])
            else:
                raise ConfigurationError(f"unknown replica op {op[0]!r}")

    def load(self, entries: dict[str, str]) -> None:
        """Bulk-load *entries*, rebuilding the tree once (seeding path)."""
        for key, value in entries.items():
            index = self.bucket_of(key)
            bucket = dict(self._buckets[index])
            if key not in bucket:
                self._size += 1
            bucket[key] = value
            self._buckets[index] = bucket
        self._tree = MerkleTree(
            [bucket_payload(bucket) for bucket in self._buckets])

    # -- bucket transfer (anti-entropy repair side) ----------------------

    def bucket_entries(self, index: int) -> dict[str, str]:
        """A private copy of bucket *index*'s entries (safe to ship)."""
        return dict(self._buckets[index])

    def payload(self, index: int) -> str:
        """Canonical serialization of bucket *index* (what crosses the
        wire during repair; its length is the bytes-shipped charge)."""
        return bucket_payload(self._buckets[index])

    def replace_bucket(self, index: int, entries: dict[str, str]) -> None:
        """Install a shipped bucket wholesale (repair/resync path)."""
        old = self._buckets[index]
        self._size += len(entries) - len(old)
        self._buckets[index] = dict(entries)
        self.hash_ops += self._tree.update_leaf(
            index, bucket_payload(entries))

    def buckets_view(self) -> tuple[dict[str, str], ...]:
        """The live bucket references, for zero-copy snapshots.

        Safe to share: writes replace bucket dicts instead of mutating
        them, so every dict handed out here is frozen in practice.
        """
        return tuple(self._buckets)
