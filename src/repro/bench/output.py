"""One place that knows where benchmark JSON reports live.

Every ``benchmarks/bench_*.py`` persists its report twice — the
canonical copy under ``benchmarks/results/BENCH_<name>.json`` and a
mirror at the repo root (what CI uploads and the docs link to).  The
double-write used to be copy-pasted per bench; this helper owns it.
"""

from __future__ import annotations

import json
import pathlib

#: src/repro/bench/output.py -> repo root is three levels up from src.
_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
RESULTS_DIR = _REPO_ROOT / "benchmarks" / "results"


def default_output(name: str) -> pathlib.Path:
    """The canonical report path for bench *name* (argparse default)."""
    return RESULTS_DIR / f"BENCH_{name}.json"


def write_bench_json(name: str, report: dict,
                     output: pathlib.Path | None = None
                     ) -> list[pathlib.Path]:
    """Serialize *report* to *output* (default: the canonical results
    path) and mirror it to ``BENCH_<name>.json`` at the repo root;
    returns every path written, in write order."""
    output = pathlib.Path(output) if output is not None \
        else default_output(name)
    payload = json.dumps(report, indent=2) + "\n"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(payload, encoding="utf-8")
    written = [output]
    mirror = _REPO_ROOT / f"BENCH_{name}.json"
    if output.resolve() != mirror:
        mirror.write_text(payload, encoding="utf-8")
        written.append(mirror)
    return written
