"""Experiment harness: timing, registration and report assembly.

Each benchmark module defines one :class:`Experiment` (id, claim, runner)
and registers it; ``python -m repro.bench`` or the pytest-benchmark
wrappers in ``benchmarks/`` run them.  Runners return
:class:`ExperimentResult` — a titled table plus free-form observations —
which is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bench.tables import render_table


@dataclass
class ExperimentResult:
    """One experiment's output."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]]
    observations: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def render(self) -> str:
        parts = [render_table(self.headers, self.rows,
                              title=f"[{self.experiment_id}] {self.title}")]
        for observation in self.observations:
            parts.append(f"  * {observation}")
        parts.append(f"  (completed in {self.elapsed_seconds:.2f}s)")
        return "\n".join(parts)


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    experiment_id: str
    claim: str
    runner: Callable[[], ExperimentResult]


class Timer:
    """Context-manager stopwatch used inside runners."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_callable(func: Callable[[], object],
                  repeats: int = 3) -> tuple[float, object]:
    """Best-of-N wall time in seconds, plus the last return value."""
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


_REGISTRY: dict[str, Experiment] = {}


def register(experiment_id: str, claim: str
             ) -> Callable[[Callable[[], ExperimentResult]],
                           Callable[[], ExperimentResult]]:
    """Decorator: ``@register("E1", "claim...")`` on a runner."""

    def wrap(runner: Callable[[], ExperimentResult]
             ) -> Callable[[], ExperimentResult]:
        def timed() -> ExperimentResult:
            with Timer() as timer:
                result = runner()
            result.elapsed_seconds = timer.elapsed
            return result

        _REGISTRY[experiment_id] = Experiment(experiment_id, claim, timed)
        return timed

    return wrap


def get_experiment(experiment_id: str) -> Experiment:
    return _REGISTRY[experiment_id]


def all_experiments() -> list[Experiment]:
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def run_all(ids: Sequence[str] | None = None) -> list[ExperimentResult]:
    chosen = (all_experiments() if ids is None
              else [get_experiment(i) for i in ids])
    results = []
    for experiment in chosen:
        results.append(experiment.runner())
    return results
