"""E7 — Randomization-based PPDM: privacy vs utility ([1], §3.3).

Claim: "continue with mining but at the same time ensure privacy as much
as possible" — aggregate patterns survive noise levels that make
individual values meaningless.

Operationalization: the Agrawal–Srikant sweep on the bimodal age column:
noise scale → (privacy interval, attacker MAE on individuals,
reconstruction TV-distance vs the naive estimate).  Plus the MASK-style
itemset-mining variant: keep-probability → itemset F1.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult, register
from repro.datagen.tabular import market_baskets, numeric_column
from repro.privacy.association import apriori, itemset_f1, mine_randomized
from repro.privacy.ppdm import (
    NoiseModel,
    histogram_distance,
    individual_error,
    privacy_interval,
    randomize,
    reconstruct_distribution,
    true_distribution,
)


@register("E7", "randomization preserves aggregate mining utility while "
               "hiding individual values ([1])")
def run() -> ExperimentResult:
    ages = numeric_column(4000, seed=11)
    bins = np.linspace(15, 100, 18)
    actual = true_distribution(ages, bins)
    rows = []
    for scale in (0.0, 10.0, 20.0, 40.0, 80.0):
        noise = NoiseModel("uniform", scale)
        released = randomize(ages, noise, seed=12)
        estimated = reconstruct_distribution(released, noise, bins)
        naive = true_distribution(released, bins)
        rows.append([
            scale,
            privacy_interval(noise, 0.95),
            individual_error(ages, released),
            histogram_distance(estimated, actual),
            histogram_distance(naive, actual),
        ])

    baskets = market_baskets(800, seed=13)
    items = sorted({item for basket in baskets for item in basket})
    truth = apriori(baskets, 0.15, max_size=2)
    mining_rows = []
    for keep in (1.0, 0.95, 0.85, 0.7, 0.55):
        mined = mine_randomized(baskets, items, keep, 0.15, max_size=2,
                                seed=14)
        mining_rows.append([keep, itemset_f1(mined.keys(),
                                             truth.keys())])
    observations = [
        "reconstruction tracks the true distribution far better than "
        "the naive histogram at every noise level > 0",
        "attacker error on individuals grows linearly with the privacy "
        "interval while aggregate error grows slowly — the [1] shape",
        "itemset mining on flipped baskets: F1 " + ", ".join(
            f"p={keep}: {f1:.2f}" for keep, f1 in mining_rows),
    ]
    return ExperimentResult(
        "E7", "Agrawal–Srikant randomization: privacy vs reconstruction "
              "accuracy (bimodal ages, n=4000)",
        ["noise scale", "privacy interval", "individual MAE",
         "recon TV-dist", "naive TV-dist"],
        rows, observations)
