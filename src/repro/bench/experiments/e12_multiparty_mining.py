"""E12 — Multiparty privacy-preserving mining ([7], §3.3).

Claim: Clifton's "multiparty security policy approach" mines across
organizations without pooling raw data in a trusted center.

Operationalization: horizontally partition the basket corpus across K
parties; secure-sum distributed Apriori must equal centralized mining
exactly, at a message cost of O(K) per candidate itemset, with no party
ever revealing a local count.
"""

from __future__ import annotations

import random

from repro.bench.harness import ExperimentResult, Timer, register
from repro.datagen.tabular import market_baskets
from repro.privacy.multiparty import (
    centralized_apriori,
    collusion_reconstructs,
    distributed_apriori,
    partition_transactions,
    secure_sum,
)


@register("E12", "secure-sum multiparty mining equals centralized "
                "mining without pooling raw data ([7])")
def run() -> ExperimentResult:
    baskets = market_baskets(1000, seed=18)
    rows = []
    for party_count in (2, 4, 8, 16):
        parties = partition_transactions(baskets, party_count, seed=19)
        with Timer() as distributed_timer:
            outcome = distributed_apriori(parties, 0.15, seed=20)
        with Timer() as central_timer:
            central = centralized_apriori(parties, 0.15)
        rows.append([
            party_count,
            len(outcome.frequent),
            outcome.frequent == central,
            outcome.secure_sum_rounds,
            outcome.messages,
            distributed_timer.elapsed * 1e3,
            central_timer.elapsed * 1e3,
        ])

    # Privacy of the primitive itself.
    rng = random.Random(21)
    values = [rng.randrange(1000) for _ in range(6)]
    names = [f"p{i}" for i in range(6)]
    trace = secure_sum(values, names, rng)
    masked = sum(1 for observed in trace.observed_by_party.values()
                 if observed not in values)
    collusion = sum(
        1 for index in range(1, 5)
        if collusion_reconstructs(trace, values, names, index))
    observations = [
        "distributed results are bit-identical to centralized mining "
        "at every K — privacy costs messages, not accuracy",
        f"secure-sum privacy: {masked}/{len(names)} observed partial "
        f"sums reveal no input; neighbour collusion reconstructs "
        f"{collusion}/4 middle parties (the documented ring weakness)",
        "messages grow linearly with K at fixed rounds — the O(K) "
        "per-itemset cost",
    ]
    return ExperimentResult(
        "E12", "Multiparty mining: exactness and message cost "
               "(1000 baskets, min_support=0.15)",
        ["parties", "frequent itemsets", "equals centralized",
         "secure-sum rounds", "messages", "distributed ms",
         "centralized ms"],
        rows, observations)
