"""E13 — Security cuts across all semantic web layers (§5).

Claim: "for the semantic web to be secure all of its components have to
be secure ... one cannot just have secure TCP/IP built on untrusted
communication layers"; end-to-end security requires every layer.

Operationalization: run the attack corpus against every subset regime of
secured layers (bottom-up, top-down, each-alone, all); report breach
rates and the undermined-layer count.  Then a concrete wire-level
demonstration: the WSA message stack under an interceptor with security
off vs on.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, register
from repro.core.errors import ServiceFault
from repro.semweb.layers import ATTACK_CORPUS, LayerName, LayerStack
from repro.wsa.actors import ServiceProvider, ServiceRequestor
from repro.wsa.transport import MessageBus
from repro.wsa.wsdl import describe


def _wire_demo(secured: bool) -> tuple[int, int]:
    """(attacks attempted, attacks that succeeded) on the message bus."""
    bus = MessageBus()
    provider = ServiceProvider(
        "svc", describe("S", op=(("data",), ("out",))), bus,
        key_seed=22, require_signatures=secured)
    provider.implement("op", lambda s, p: {"out": p["data"].upper()})
    requestor = ServiceRequestor("alice", bus, key_seed=23)
    provider.trust_requestor("alice", requestor.public_key)
    requestor.trust_provider("svc", provider.public_key)

    attempted = 0
    succeeded = 0

    # Attack 1: tamper in transit.
    def tamper(envelope):
        envelope.parameters["data"] = "evil"
        return envelope

    bus.set_interceptor(tamper)
    attempted += 1
    try:
        out = requestor.invoke("svc", "op", {"data": "good"},
                               sign_request=secured)
        if out["out"] == "EVIL":
            succeeded += 1
    except ServiceFault:
        pass
    bus.set_interceptor(None)

    # Attack 2: replay.
    requestor.invoke("svc", "op", {"data": "good"},
                     sign_request=secured)
    attempted += 1
    try:
        bus.replay_last()
        succeeded += 1
    except ServiceFault:
        pass

    # Attack 3: eavesdrop on a sensitive request parameter (lowercase so
    # the uppercased reply does not alias the probe).
    attempted += 1
    requestor.invoke("svc", "op", {"data": "pan-secret-12345"},
                     sign_request=secured,
                     encrypt=["data"] if secured else None)
    if any("pan-secret-12345" in value
           for value in bus.eavesdropped_values()):
        succeeded += 1
    return attempted, succeeded


def _proof_demo() -> tuple[bool, bool]:
    """(honest proof accepted, forged proof rejected) at the top layer."""
    from repro.core.errors import AuthenticationError
    from repro.crypto.rsa import generate_keypair
    from repro.semweb.trust import (
        ProofEngine,
        Rule,
        TrustPolicy,
        atom,
        check_proof,
        sign_fact,
    )

    authority = generate_keypair(bits=256, seed=24)
    rules = [Rule(atom("trusted", "?s"), (atom("vetted", "?s"),),
                  name="vetted-is-trusted")]
    engine = ProofEngine(rules, [
        sign_fact(atom("vetted", "svc"), "authority",
                  authority.private)])
    trust = TrustPolicy()
    trust.trust("authority", authority.public, ["vetted"])
    honest = engine.prove(atom("trusted", "svc"))
    try:
        check_proof(honest, trust, rules)
        honest_ok = True
    except AuthenticationError:
        honest_ok = False
    bogus_rule = Rule(atom("trusted", "?s"), (), name="everything-goes")
    forged_engine = ProofEngine([bogus_rule], [])
    forged = forged_engine.prove(atom("trusted", "mallory"))
    try:
        check_proof(forged, trust, rules)
        forged_caught = False
    except AuthenticationError:
        forged_caught = True
    return honest_ok, forged_caught


@register("E13", "end-to-end security requires every layer; a single "
                "open layer keeps the stack breachable (§5)")
def run() -> ExperimentResult:
    rows = []
    regimes: list[tuple[str, set[LayerName]]] = [
        ("none", set()),
        ("network only", {LayerName.NETWORK}),
        ("up to XML", {LayerName.NETWORK, LayerName.XML}),
        ("up to RDF", {LayerName.NETWORK, LayerName.XML, LayerName.RDF}),
        ("up to ontology", {LayerName.NETWORK, LayerName.XML,
                            LayerName.RDF, LayerName.ONTOLOGY}),
        ("all layers", set(LayerName)),
        ("all but network", set(LayerName) - {LayerName.NETWORK}),
        ("XML only", {LayerName.XML}),
    ]
    for name, secured in regimes:
        stack = LayerStack(set(secured))
        rows.append([
            name, len(secured),
            f"{stack.breach_rate(ATTACK_CORPUS):.2f}",
            len(stack.undermined_layers()),
            stack.end_to_end_secure(),
        ])
    open_attempted, open_succeeded = _wire_demo(secured=False)
    closed_attempted, closed_succeeded = _wire_demo(secured=True)
    honest_ok, forged_caught = _proof_demo()
    observations = [
        "only the full stack reaches breach rate 0 and end-to-end "
        "security; 'all but network' keeps 4 secured layers undermined",
        f"wire demo (tamper/replay/eavesdrop): insecure stack "
        f"{open_succeeded}/{open_attempted} attacks succeed; secured "
        f"message layer {closed_succeeded}/{closed_attempted}",
        f"logic/proof/trust demo: honest proof accepted={honest_ok}, "
        f"forged-rule proof rejected={forged_caught}",
    ]
    return ExperimentResult(
        "E13", "Layered security: breach rate per secured-layer regime "
               f"({len(ATTACK_CORPUS)}-attack corpus)",
        ["regime", "secured layers", "breach rate",
         "undermined layers", "end-to-end"],
        rows, observations)
