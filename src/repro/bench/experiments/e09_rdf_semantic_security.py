"""E9 — RDF needs *semantic*-level security (§3.2).

Claim: "with RDF we also need to ensure that security is preserved at
the semantic level" — syntactic (stored-triple-only) enforcement leaks
through RDFS entailment, reification and containers.

Operationalization: synthetic personnel graphs with secret employments,
a public schema (domain/range/subClassOf), reifications and containers;
count leaked derived triples and reification leaks under syntactic vs
semantic enforcement, plus the enforcement overhead.
"""

from __future__ import annotations

import random

from repro.bench.harness import ExperimentResult, Timer, register
from repro.core.mls import Label, Level
from repro.rdfdb.containers import create_container
from repro.rdfdb.model import RDF, RDFS, Literal, Namespace, triple
from repro.rdfdb.reification import reify
from repro.rdfdb.security import SecureRdfStore

EX = Namespace("http://agency.example/")
SECRET = Label(Level.SECRET)
UNCLEARED = Label(Level.UNCLASSIFIED)


def _build(person_count: int, seed: int) -> SecureRdfStore:
    rng = random.Random(seed)
    store = SecureRdfStore()
    # Public schema.
    store.add(triple(EX.worksFor, RDFS.domain, EX.Employee))
    store.add(triple(EX.Employee, RDFS.subClassOf, EX.Person))
    store.add(triple(EX.covertAgent, RDFS.subPropertyOf, EX.worksFor))
    secret_members = []
    for index in range(person_count):
        person = EX[f"person{index}"]
        store.add(triple(person, EX.name, f"Person {index}"))
        if rng.random() < 0.3:
            fact = triple(person, EX.covertAgent, EX.agency)
            store.add(fact)
            store.classify(fact, SECRET, protect_reifications=False)
            secret_members.append(person)
            if rng.random() < 0.5:
                reify(store.store, fact)  # unprotected reification
        else:
            store.add(triple(person, EX.worksFor, EX[f"firm{index % 5}"]))
    if secret_members:
        node = create_container(
            store.store, "Bag",
            [Literal(str(m)) for m in secret_members])
        store.classify_container(node, SECRET)
    return store


@register("E9", "syntactic-only RDF enforcement leaks through inference "
               "and reification; semantic enforcement does not (§3.2)")
def run() -> ExperimentResult:
    rows = []
    for person_count in (50, 150, 400):
        store = _build(person_count, seed=16)
        with Timer() as naive_timer:
            naive = store.query(UNCLEARED, infer=True, semantic=False)
        with Timer() as semantic_timer:
            semantic = store.query(UNCLEARED, infer=True, semantic=True)
        leaked = store.leaked_by_syntactic_enforcement(UNCLEARED)
        reif_leaks = store.reification_leaks(UNCLEARED)
        rows.append([person_count, len(store.store),
                     len(naive), len(semantic), len(leaked),
                     len(reif_leaks) // 3,
                     naive_timer.elapsed * 1e3,
                     semantic_timer.elapsed * 1e3])
    # Context declassification demo on the last store.
    fact = triple(EX.person0, EX.missionReport, "delivered")
    store.add(fact)
    store.add_context_rule(fact, "wartime", SECRET)
    store.set_context("wartime", True)
    hidden_during = fact not in store.query(UNCLEARED)
    store.set_context("wartime", False)
    visible_after = fact in store.query(UNCLEARED)
    observations = [
        "derived-triple leaks grow with the share of classified facts; "
        "semantic enforcement (closing over the visible subgraph) "
        "eliminates them",
        "unprotected reifications re-encode every classified statement "
        "they describe — co-classification (classify with "
        "protect_reifications) closes that channel",
        f"context declassification: hidden during wartime={hidden_during}, "
        f"visible after={visible_after} (§5's example)",
    ]
    return ExperimentResult(
        "E9", "RDF semantic enforcement vs the syntactic strawman",
        ["persons", "stored triples", "naive visible",
         "semantic visible", "derived leaks", "reified leaks",
         "naive ms", "semantic ms"],
        rows, observations)
