"""Experiment implementations, one module per DESIGN.md experiment id.

Importing this package registers every experiment with
:mod:`repro.bench.harness`.
"""

from repro.bench.experiments import (  # noqa: F401
    a01_query_index,
    a02_deny_aware_configs,
    a03_policy_index,
    a04_static_analysis,
    e01_subject_qualification,
    e02_xml_granularity,
    e03_dissemination_keys,
    e04_third_party_publishing,
    e05_uddi_authentication,
    e06_registry_architectures,
    e07_ppdm_randomization,
    e08_inference_controller,
    e09_rdf_semantic_security,
    e10_p3p_matching,
    e11_flexible_security,
    e12_multiparty_mining,
    e13_layered_security,
    e14_web_transactions,
)

ALL_EXPERIMENT_IDS = [f"E{n}" for n in range(1, 15)] + ["A1", "A2", "A3",
                                                        "A4"]
