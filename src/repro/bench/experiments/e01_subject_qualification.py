"""E1 — Subject qualification at web scale (§3.1).

Claim: "traditional identity-based mechanisms for performing access
control are not enough" for web populations; role/credential
qualification is needed.

Operationalization: to give a population of N users access to a fixed
resource set, count how many policies each basis needs and how decision
latency scales.  Identity-based bases need O(N) policies; role and
credential bases stay O(#roles)/O(#attributes).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, register, time_callable
from repro.core.credentials import (
    attribute_equals,
    has_role,
    is_identity,
)
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action, PolicyBase, grant
from repro.datagen.population import DEPARTMENTS, generate_population


def _coverage_policy_base(basis: str, directory) -> PolicyBase:
    """Policies granting every *authorized* user READ on the records.

    Authorized = holds the doctor role (directly or via a physician
    credential).  Identity basis must enumerate those users one by one.
    """
    base = PolicyBase()
    resource = "hospital/records/**"
    if basis == "identity":
        for subject in directory.subjects():
            if any(r.name == "doctor" for r in subject.roles):
                base.add(grant(is_identity(subject.identity.name),
                               Action.READ, resource))
    elif basis == "role":
        base.add(grant(has_role("doctor"), Action.READ, resource))
    else:  # credential
        for department in DEPARTMENTS:
            base.add(grant(attribute_equals("physician", "department",
                                            department),
                           Action.READ, resource))
    return base


@register("E1", "identity-based access control does not scale to web "
               "populations; role/credential qualification does (§3.1)")
def run() -> ExperimentResult:
    rows = []
    observations = []
    for population_size in (100, 500, 2000):
        directory = generate_population(population_size, seed=1)
        subjects = list(directory.subjects())
        probe = subjects[: min(200, len(subjects))]
        for basis in ("identity", "role", "credential"):
            base = _coverage_policy_base(basis, directory)
            evaluator = PolicyEvaluator(base)

            def workload() -> int:
                granted = 0
                for subject in probe:
                    # serial per-request latency is the quantity
                    # under measurement here
                    if evaluator.check(  # lint: allow=LINT-BATCHLOOP
                            subject, Action.READ,
                                       "hospital/records/r1/name"):
                        granted += 1
                return granted

            latency, granted = time_callable(workload, repeats=3)
            rows.append([population_size, basis, len(base),
                         latency * 1e6 / len(probe), granted])
    identity_growth = rows[6][2] / max(rows[0][2], 1)
    role_growth = rows[7][2] / max(rows[1][2], 1)
    observations.append(
        f"policy count growth 100->2000 users: identity x{identity_growth:.0f}, "
        f"role x{role_growth:.0f} (flat)")
    return ExperimentResult(
        "E1", "Subject qualification: policies needed and decision latency",
        ["users", "basis", "policies", "us/decision", "granted"],
        rows, observations)
