"""A3 (ablation) — the policy base's head-segment index.

DESIGN.md design choice: :class:`repro.core.policy.PolicyBase` indexes
policies by action and first literal resource segment so evaluation
touches only candidates.  This ablation compares decision latency with
the index against a linear scan over the whole base, across policy-base
sizes — the "query processing algorithms may need to take into
consideration the access control policies" cost of §3.1 made concrete.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, register, time_callable
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action, PolicyBase
from repro.datagen.population import generate_population
from repro.datagen.workload import subject_qualification_policies


class _ScanPolicyBase(PolicyBase):
    """PolicyBase with the head index disabled (full scan)."""

    def candidates(self, action, path):  # type: ignore[override]
        return [p for p in self._policies if p.action is action]


@register("A3", "ablation: the head-segment policy index vs scanning "
               "the whole policy base per decision (§3.1)")
def run() -> ExperimentResult:
    population = generate_population(50, seed=43)
    probes = list(population.subjects())[:25]
    resources = [f"hospital/records/r{n}/name" for n in range(1, 11)] \
        + [f"bank/accounts/a{n}" for n in range(1, 11)]
    rows = []
    for policy_count in (50, 200, 800):
        indexed = subject_qualification_policies(
            policy_count, "role", user_count=50, seed=44)
        scanning = _ScanPolicyBase(list(indexed))
        indexed_eval = PolicyEvaluator(indexed)
        scan_eval = PolicyEvaluator(scanning)

        def decide(evaluator):
            def work() -> int:
                granted = 0
                for subject in probes:
                    for resource in resources:
                        # this experiment measures the serial
                        # per-request path on purpose
                        if evaluator.check(  # lint: allow=LINT-BATCHLOOP
                                subject, Action.READ,
                                           resource):
                            granted += 1
                return granted
            return work

        indexed_time, indexed_granted = time_callable(
            decide(indexed_eval), repeats=3)
        scan_time, scan_granted = time_callable(
            decide(scan_eval), repeats=3)
        assert indexed_granted == scan_granted  # identical decisions
        decisions = len(probes) * len(resources)
        rows.append([policy_count,
                     indexed_time * 1e6 / decisions,
                     scan_time * 1e6 / decisions,
                     scan_time / max(indexed_time, 1e-9)])
    observations = [
        "half the probe resources live outside the policies' head "
        "segment; the index prunes them to zero candidates",
        "decisions are asserted identical with and without the index",
    ]
    return ExperimentResult(
        "A3", "Ablation: policy head index vs full scan "
              f"({len(probes)} subjects x {len(resources)} resources)",
        ["policies", "indexed us/decision", "scan us/decision",
         "speedup"],
        rows, observations)
