"""E14 — Web transaction models: open bidding vs immediate locking (§2.1).

Claim: "the item should not be locked immediately when a potential buyer
makes a bid.  It has to be left open until several bids are received and
the item is sold.  That is, special transaction models are needed."

Operationalization: the same randomized bid stream over N items through
both engines; compare accepted bids, items sold, revenue, and average
sale price.
"""

from __future__ import annotations

import random

from repro.bench.harness import ExperimentResult, Timer, register
from repro.core.errors import TransactionError
from repro.relational.bidding import (
    Bid,
    ImmediateLockAuction,
    OpenBidAuction,
)


def _bid_stream(item_count: int, bids_per_item: float,
                seed: int) -> tuple[list[str], list[Bid]]:
    rng = random.Random(seed)
    items = [f"item{i:04d}" for i in range(item_count)]
    bids: list[Bid] = []
    total_bids = int(item_count * bids_per_item)
    for index in range(total_bids):
        item = rng.choice(items)
        bids.append(Bid(f"bidder{index % 97}", item,
                        round(rng.uniform(5.0, 100.0), 2)))
    rng.shuffle(bids)
    return items, bids


@register("E14", "open bidding accepts every bid and extracts better "
                "prices than lock-on-first-bid (§2.1)")
def run() -> ExperimentResult:
    rows = []
    for bids_per_item in (2.0, 5.0, 12.0):
        items, bids = _bid_stream(200, bids_per_item, seed=24)
        reserve = 20.0

        locked = ImmediateLockAuction()
        for item in items:
            locked.list_item(item, reserve)
        with Timer() as locked_timer:
            for bid in bids:
                locked.place_bid(bid)
            for item in items:
                try:
                    locked.complete_sale(item)
                except TransactionError:
                    pass  # unsold items have no sale to complete

        open_model = OpenBidAuction()
        for item in items:
            open_model.list_item(item, reserve)
        with Timer() as open_timer:
            for bid in bids:
                open_model.place_bid(bid)
            for item in items:
                open_model.close(item)

        def average_price(stats):
            return (stats.revenue / stats.items_sold
                    if stats.items_sold else 0.0)

        rows.append([
            bids_per_item,
            locked.stats.bids_rejected, open_model.stats.bids_rejected,
            locked.stats.items_sold, open_model.stats.items_sold,
            average_price(locked.stats), average_price(open_model.stats),
            locked.stats.revenue, open_model.stats.revenue,
        ])
    observations = [
        "the lock model rejects every bid after the first and sells at "
        "the first acceptable price; open bidding sells at the best",
        "the revenue gap widens with contention (more bids per item) — "
        "exactly why the paper calls for new transaction models",
    ]
    return ExperimentResult(
        "E14", "Web transactions: immediate-lock vs open-bid auctions "
               "(200 items, reserve 20)",
        ["bids/item", "lock rejected", "open rejected", "lock sold",
         "open sold", "lock avg price", "open avg price",
         "lock revenue", "open revenue"],
        rows, observations)
