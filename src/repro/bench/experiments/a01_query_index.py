"""A1 (ablation) — path indexes and the §2.1 cost model.

DESIGN.md design choice: XPath evaluation is naive tree-walking; hot
query shapes get an inverted path index behind a cost model.  This
ablation measures what the index buys on the hospital corpus and shows
the cost model routing each query to the cheaper strategy.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, register, time_callable
from repro.datagen.documents import hospital_corpus
from repro.xmldb.index import PathIndex, QueryCostModel, indexed_select
from repro.xmldb.xpath import select_elements

INDEXABLE = ["//record", "//diagnosis",
             "//record[@id='r7']", "//record[diagnosis='influenza']"]
NON_INDEXABLE = ["//record/name", "/hospital/record[3]",
                 "//record[diagnosis='influenza']/name"]


@register("A1", "ablation: inverted path indexes + cost model vs naive "
               "tree-walking XPath (§2.1 'index strategies' and 'cost "
               "models')")
def run() -> ExperimentResult:
    rows = []
    for record_count in (50, 200, 800):
        document = hospital_corpus(record_count, seed=41)
        build_time, index = time_callable(
            lambda: PathIndex(document.root), repeats=1)
        model = QueryCostModel(index, document.size())

        def scan_all() -> int:
            return sum(len(select_elements(q, document))
                       for q in INDEXABLE)

        def probe_all() -> int:
            return sum(len(indexed_select(index, q, document))
                       for q in INDEXABLE)

        scan_time, scan_hits = time_callable(scan_all, repeats=3)
        probe_time, probe_hits = time_callable(probe_all, repeats=3)
        assert scan_hits == probe_hits  # identical answers
        for query in INDEXABLE + NON_INDEXABLE:
            model.run(query, document)
        rows.append([record_count, document.size(),
                     build_time * 1e3, scan_time * 1e3,
                     probe_time * 1e3,
                     scan_time / max(probe_time, 1e-9),
                     f"{model.decisions['index']}/{model.decisions['scan']}"])
    observations = [
        "index probes answer the hot shapes orders of magnitude faster "
        "and the gap widens with document size",
        "the cost model routes indexable shapes to the index and "
        "everything else to the (always-correct) scan",
        "answers are asserted identical between strategies",
    ]
    return ExperimentResult(
        "A1", "Ablation: path index vs naive scan "
              f"({len(INDEXABLE)} indexable + {len(NON_INDEXABLE)} "
              "fallback queries)",
        ["records", "elements", "build ms", "scan ms", "index ms",
         "speedup", "index/scan decisions"],
        rows, observations)
