"""E2 — XML access control granularity (§3.2).

Claim: an XML access control model must support "a wide spectrum of
access granularity levels, ranging from sets of documents, to single
documents, to specific portions within a document", including
content-dependent policies.

Operationalization: on the hospital corpus, express the *same*
protection goal ("hide sensitive oncology data from non-doctors") at
four granularities and measure (a) view-computation cost and (b) how
much non-sensitive content each granularity needlessly withholds
(over-restriction) — the cost of NOT having fine granularity.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, register, time_callable
from repro.core.credentials import anyone, has_role
from repro.core.subjects import Role, Subject
from repro.datagen.documents import hospital_corpus
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant
from repro.xmlsec.views import compute_view

NURSE = Subject("nurse", roles={Role("nurse")})


def _sensitive_paths(document) -> set[str]:
    """Ground truth: what actually must be hidden from nurses —
    oncology diagnosis/billing subtrees plus every SSN."""
    sensitive: set[str] = set()
    for node in document.iter():
        if node.tag == "ssn":
            sensitive.add(node.node_path())
        if node.tag in ("diagnosis", "billing"):
            record = node.parent
            department = record.find("department")
            if department is not None and \
                    department.text == "oncology":
                for part in node.iter():
                    sensitive.add(part.node_path())
    return sensitive


def _policy_base(granularity: str) -> XmlPolicyBase:
    base = XmlPolicyBase()
    if granularity == "document":
        # Coarsest available decision: hide the whole document from
        # nurses (they lose everything).
        base.add(xml_grant(has_role("doctor"), "/hospital"))
    elif granularity == "subtree":
        # Element-level: hide every record that contains oncology data.
        base.add(xml_grant(anyone(), "/hospital"))
        base.add(xml_deny(has_role("nurse"),
                          "//record[department='oncology']"))
        base.add(xml_deny(has_role("nurse"), "//ssn"))
    elif granularity == "element":
        # Finer: hide diagnosis/billing/ssn elements everywhere.
        base.add(xml_grant(anyone(), "/hospital"))
        base.add(xml_deny(has_role("nurse"), "//diagnosis"))
        base.add(xml_deny(has_role("nurse"), "//billing"))
        base.add(xml_deny(has_role("nurse"), "//ssn"))
    else:  # content-dependent: exactly the sensitive portions
        base.add(xml_grant(anyone(), "/hospital"))
        base.add(xml_deny(has_role("nurse"),
                          "//record[department='oncology']/diagnosis"))
        base.add(xml_deny(has_role("nurse"),
                          "//record[department='oncology']/billing"))
        base.add(xml_deny(has_role("nurse"), "//ssn"))
    return base


@register("E2", "XML access control needs the full granularity ladder, "
               "down to content-dependent portions (§3.2)")
def run() -> ExperimentResult:
    document = hospital_corpus(60, seed=2)
    sensitive = _sensitive_paths(document)
    total = document.size()
    rows = []
    for granularity in ("document", "subtree", "element", "content"):
        base = _policy_base(granularity)

        def build():
            # Markers keep sibling indexes aligned with the original, so
            # the leakage accounting below maps paths exactly.
            return compute_view(base, NURSE, "h", document,
                                with_markers=True)

        latency, (view, _stats) = time_callable(build, repeats=3)
        visible_paths = set()
        if view is not None:
            from repro.merkle.xml_merkle import (
                is_pruned_marker,
                original_paths_of_view,
            )
            paths = original_paths_of_view(view.root)
            visible_paths = {
                paths[id(n)] for n in view.iter()
                if not is_pruned_marker(n) and (n.text or n.attributes)}
        leaked = len(visible_paths & sensitive)
        over_restricted = total - len(sensitive) - sum(
            1 for node in document.iter()
            if (node.text or node.attributes)
            and node.node_path() in visible_paths
            and node.node_path() not in sensitive)
        rows.append([granularity, len(base), latency * 1e3, leaked,
                     over_restricted])
    observations = [
        "every granularity keeps leakage at 0 — the difference is how "
        "much non-sensitive content each needlessly withholds",
        "content-dependent policies minimize over-restriction — the "
        "paper's case for the full granularity ladder",
    ]
    return ExperimentResult(
        "E2", "Granularity ladder: cost and over-restriction "
              f"(document: {total} elements, {len(sensitive)} sensitive)",
        ["granularity", "policies", "view ms", "leaked",
         "over-restricted"],
        rows, observations)
