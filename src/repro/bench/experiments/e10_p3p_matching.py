"""E10 — P3P matching and policy propagation (§4.2).

Claim: the WSA must let consumers evaluate advertised P3P policies and
must "enable delegation and propagation of privacy policy".

Operationalization: a synthetic service ecosystem with varying practice
invasiveness; sweep consumer strictness → acceptance rate; then build
delegation chains of growing length and count the broadening violations
only the propagation check catches.  Finally run the five-requirement
WSA audit on compliant and sloppy deployments.
"""

from __future__ import annotations

import random

from repro.bench.harness import ExperimentResult, register
from repro.p3p.matching import chain_acceptable, match, propagation_violations
from repro.p3p.policy import (
    DataCategory,
    P3PPolicy,
    Purpose,
    Recipient,
    Retention,
    statement,
)
from repro.p3p.preferences import strictness_profile
from repro.p3p.wsa_requirements import ServiceRegistration, WsaPrivacyAudit

PURPOSE_LADDER = [Purpose.CURRENT, Purpose.ADMIN, Purpose.TAILORING,
                  Purpose.PSEUDO_ANALYSIS, Purpose.INDIVIDUAL_ANALYSIS,
                  Purpose.CONTACT, Purpose.TELEMARKETING]
RECIPIENT_LADDER = [Recipient.OURS, Recipient.DELIVERY, Recipient.SAME,
                    Recipient.OTHER_RECIPIENT, Recipient.UNRELATED,
                    Recipient.PUBLIC]
RETENTION_LADDER = [Retention.NO_RETENTION, Retention.STATED_PURPOSE,
                    Retention.BUSINESS_PRACTICES, Retention.INDEFINITELY]


def _random_policy(rng: random.Random, entity: str,
                   invasiveness: float) -> P3PPolicy:
    """invasiveness in [0,1]: how far up each ladder the policy reaches."""

    def pick(ladder):
        ceiling = max(1, round(invasiveness * len(ladder)))
        return ladder[rng.randrange(ceiling)]

    statements = []
    for category in rng.sample(list(DataCategory), k=3):
        statements.append(statement(
            [category],
            {pick(PURPOSE_LADDER), Purpose.CURRENT},
            {pick(RECIPIENT_LADDER), Recipient.OURS},
            pick(RETENTION_LADDER)))
    return P3PPolicy(entity, tuple(statements))


@register("E10", "consumers can gate on P3P policies; delegation chains "
                "need explicit propagation checks (§4.2)")
def run() -> ExperimentResult:
    rng = random.Random(17)
    services = [
        _random_policy(rng, f"svc{index}", invasiveness=rng.random())
        for index in range(80)]
    rows = []
    for level in range(4):
        preferences = strictness_profile(level)
        accepted = sum(1 for policy in services
                       if match(policy, preferences))
        baseline_ok = sum(1 for policy in services
                          if policy.conforms_to_baseline())
        rows.append([level, preferences.name, accepted,
                     len(services) - accepted, baseline_ok])

    # Delegation chains: entry service always modest, later hops random.
    chain_rows = []
    categories = [DataCategory.ONLINE, DataCategory.PHYSICAL]
    preferences = strictness_profile(1)
    for chain_length in (2, 3, 5):
        entry_ok = 0
        chain_ok = 0
        violations_caught = 0
        trials = 60
        for _ in range(trials):
            chain = [_random_policy(rng, "entry", 0.2)] + [
                _random_policy(rng, f"hop{i}", rng.random())
                for i in range(chain_length - 1)]
            if match(chain[0], preferences):
                entry_ok += 1
                problems = propagation_violations(chain, categories)
                if problems:
                    violations_caught += 1
                if chain_acceptable(chain, categories, preferences):
                    chain_ok += 1
        chain_rows.append(
            f"len={chain_length}: entry-ok {entry_ok}/{trials}, "
            f"chain-ok {chain_ok}, broadening caught "
            f"{violations_caught}")

    # WSA requirements audit.
    good = P3PPolicy("good", (statement(
        [DataCategory.ONLINE], [Purpose.CURRENT], [Recipient.OURS],
        Retention.STATED_PURPOSE),))
    compliant = WsaPrivacyAudit([
        ServiceRegistration("a", good),
        ServiceRegistration("b", good),
    ]).run()
    sloppy = WsaPrivacyAudit([
        ServiceRegistration("a", None),
        ServiceRegistration("b", good, policy_retrievable=False,
                            supports_anonymous=False),
    ]).run()
    observations = chain_rows + [
        f"WSA five-requirement audit: compliant deployment passes "
        f"{sum(r.passed for r in compliant.results)}/5, sloppy "
        f"deployment passes {sum(r.passed for r in sloppy.results)}/5",
        "checking only the entry policy accepts chains whose later hops "
        "broaden the practices — the propagation requirement exists for "
        "a reason",
    ]
    return ExperimentResult(
        "E10", "P3P: acceptance vs consumer strictness (80 services)",
        ["strictness", "profile", "accepted", "rejected",
         "baseline-conformant"],
        rows, observations)
