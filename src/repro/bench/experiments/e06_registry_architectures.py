"""E6 — Two-party vs third-party registries under compromise (§4.1).

Claim: "if a two-party architecture is adopted, security properties can
be ensured using the strategies adopted in conventional DBMSs ... such
standard mechanisms must be revised when a third-party architecture is
adopted" because "large web-based systems cannot be easily verified to
be trusted and can be easily penetrated".

Operationalization: the same workload against (a) a two-party registry,
(b) an honest third-party agency, (c) a compromised third-party agency —
counting confidential rows leaked and forged answers *accepted* (after
client-side Merkle verification).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, register
from repro.core.credentials import anyone, has_role
from repro.core.errors import AccessDenied, AuthenticationError
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action, PolicyBase, deny, grant
from repro.core.subjects import Role, Subject
from repro.uddi.architectures import (
    ThirdPartyDeployment,
    TwoPartyDeployment,
)
from repro.uddi.model import make_business, make_service
from repro.uddi.registry import UddiRegistry
from repro.uddi.secure import verify_authenticated_answer

PARTNER = Subject("partner-user", roles={Role("partner")})
STRANGER = Subject("stranger")


def _entities(count: int):
    entities = []
    for index in range(count):
        entity = make_business(f"Provider-{index:03d}")
        entity = entity.with_service(make_service(
            f"public-api-{index}", category="catalog",
            access_point=f"http://p{index}/public"))
        entity = entity.with_service(make_service(
            f"partner-feed-{index}", category="premium",
            access_point=f"http://p{index}/premium"))
        entities.append(entity)
    return entities


def _evaluator(entities, registry_name: str) -> PolicyEvaluator:
    policies = [grant(anyone(), Action.WRITE, "uddi/**"),
                grant(anyone(), Action.READ, "uddi/**")]
    for entity in entities:
        premium = entity.services[1].service_key
        policies.append(deny(
            ~has_role("partner"), Action.READ,
            f"uddi/{registry_name}/{entity.business_key}/{premium}"))
    return PolicyEvaluator(PolicyBase(policies))


@register("E6", "conventional access control suffices two-party; an "
               "untrusted third party needs client-verifiable answers (§4.1)")
def run() -> ExperimentResult:
    entities = _entities(12)
    rows = []

    # (a) two-party: provider runs its own registry.
    two_party = TwoPartyDeployment(
        "self", UddiRegistry("own"), _evaluator(entities, "own"))
    for entity in entities:
        two_party.publish(Subject("self"), entity)
    browse = two_party.find_service(STRANGER)
    leaked = sum(1 for row in browse if row.category == "premium")
    denied = 0
    for entity in entities:
        try:
            two_party.get_service_detail(
                STRANGER, entity.services[1].service_key)
        except AccessDenied:
            denied += 1
    rows.append(["two-party", "honest", leaked, 0, denied])

    # (b) honest third party.
    def third_party():
        deployment = ThirdPartyDeployment(
            _evaluator(entities, "third-party"))
        keys = {}
        for index, entity in enumerate(entities):
            provider = f"prov{index}"
            keys[provider] = deployment.register_provider(
                provider, key_seed=100 + index)
            deployment.publish(provider, entity)
        return deployment, keys

    deployment, keys = third_party()
    browse = deployment.find_service(STRANGER)
    leaked = sum(1 for row in browse if row.category == "premium")
    accepted_forgeries = 0
    denied = 0
    for index, entity in enumerate(entities):
        try:
            answer = deployment.get_service_detail(
                STRANGER, entity.services[0].service_key)
            verify_authenticated_answer(answer, keys[f"prov{index}"])
        except AccessDenied:
            denied += 1
        except AuthenticationError:
            pass
    rows.append(["third-party", "honest", leaked, accepted_forgeries,
                 denied])

    # (c) compromised third party.
    deployment, keys = third_party()
    deployment.compromise()
    browse = deployment.find_service(STRANGER)
    leaked = sum(1 for row in browse if row.category == "premium")
    accepted_forgeries = 0
    detected = 0
    for index, entity in enumerate(entities):
        answer = deployment.get_service_detail(
            STRANGER, entity.services[0].service_key)
        try:
            verify_authenticated_answer(answer, keys[f"prov{index}"])
            accepted_forgeries += 1
        except AuthenticationError:
            detected += 1
    rows.append(["third-party", "compromised", leaked,
                 accepted_forgeries, 0])
    observations = [
        "a compromised agency leaks every confidential browse row — "
        "confidentiality needs encryption (cf. EncryptedRegistry), not "
        "agency goodwill",
        f"integrity survives compromise: {detected} forged answers, "
        f"0 accepted — the [4] mechanism's whole point",
    ]
    return ExperimentResult(
        "E6", "Registry architectures under an honest vs compromised "
              "discovery agency",
        ["architecture", "agency", "premium rows leaked",
         "forgeries accepted", "denials enforced"],
        rows, observations)
