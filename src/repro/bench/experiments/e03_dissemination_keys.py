"""E3 — Secure dissemination: keys per policy configuration ([5], §4.1).

Claim: "all the entry portions to which the same policies apply are
encrypted with the same key" — so one encrypted copy serves every
subscriber, and the number of keys scales with the number of *policy
configurations*, not subscribers.

Operationalization: sweep the subscriber population; compare the
Author-X scheme (one packet, keys = configurations) against the naive
baseline (encrypt each subscriber's view separately): #keys,
ciphertext bytes prepared, and encryption wall time.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, Timer, register
from repro.core.credentials import anyone, attribute_equals, has_role
from repro.crypto.keys import KeyStore
from repro.datagen.documents import hospital_corpus
from repro.datagen.population import generate_population
from repro.xmldb.serializer import serialize
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant
from repro.xmlsec.dissemination import Disseminator
from repro.xmlsec.views import compute_view


def _policy_base() -> XmlPolicyBase:
    base = XmlPolicyBase()
    base.add(xml_grant(has_role("doctor"), "/hospital"))
    base.add(xml_deny(anyone(), "//ssn"))
    base.add(xml_grant(has_role("nurse"), "//record/name"))
    base.add(xml_grant(has_role("nurse"), "//record/treatment"))
    base.add(xml_grant(has_role("researcher"), "//record/diagnosis"))
    for department in ("oncology", "cardiology", "pediatrics"):
        base.add(xml_grant(
            attribute_equals("physician", "department", department),
            f"//record[department='{department}']/billing"))
    return base


@register("E3", "dissemination encrypts once per policy configuration; "
               "keys do not grow with the subscriber population ([5])")
def run() -> ExperimentResult:
    document = hospital_corpus(40, seed=3)
    base = _policy_base()
    rows = []
    for subscribers in (10, 50, 200):
        population = generate_population(subscribers, seed=4)
        subjects = {s.identity.name: s for s in population.subjects()}

        # Author-X scheme: one packaging pass + key distribution.
        disseminator = Disseminator(base)
        with Timer() as authorx_timer:
            packet = disseminator.package("h", document)
            distributor = disseminator.distributor(subjects)
            for name in subjects:
                distributor.grant(name)
        authorx_keys = disseminator.key_count()
        authorx_bytes = packet.total_bytes()

        # Naive baseline: per-subscriber view, each encrypted under a
        # per-subscriber key.
        naive_store = KeyStore("naive")
        naive_bytes = 0
        with Timer() as naive_timer:
            for name, subject in subjects.items():
                view, _stats = compute_view(base, subject, "h", document)
                if view is None:
                    continue
                key_id = f"subscriber:{name}"
                naive_store.get_or_create(key_id)
                ciphertext = naive_store.encrypt(key_id,
                                                 serialize(view))
                naive_bytes += len(ciphertext)
        rows.append([subscribers, authorx_keys, len(naive_store),
                     authorx_bytes / 1024, naive_bytes / 1024,
                     authorx_timer.elapsed * 1e3,
                     naive_timer.elapsed * 1e3])
    observations = [
        "Author-X key count stays flat as subscribers grow; the naive "
        "scheme needs one key and one ciphertext per subscriber",
        "the single Author-X packet is smaller than the sum of "
        "per-subscriber ciphertexts once subscribers outnumber "
        "configurations",
    ]
    return ExperimentResult(
        "E3", "Dissemination: policy-configuration keys vs per-subscriber "
              "encryption",
        ["subscribers", "authorx keys", "naive keys", "authorx KiB",
         "naive KiB", "authorx ms", "naive ms"],
        rows, observations)
