"""A2 (ablation) — deny-aware policy configurations in dissemination.

DESIGN.md design choice: a dissemination configuration records, per
grant, the DENY policies dominating it, and key distribution checks
both.  The obvious simplification — configurations from GRANT policies
only, denies ignored — silently hands subscribers keys for portions a
deny forbids.  This ablation quantifies that leak on the hospital
workload.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, register
from repro.core.credentials import anyone, has_role
from repro.datagen.documents import hospital_corpus
from repro.datagen.population import named_cast
from repro.xmlsec.authorx import XmlPolicyBase, XmlSign, xml_deny, xml_grant
from repro.xmlsec.dissemination import (
    element_configurations,
    subject_can_unlock,
)


def _policy_base() -> XmlPolicyBase:
    return XmlPolicyBase([
        xml_grant(has_role("doctor"), "/hospital"),
        xml_deny(anyone(), "//ssn"),
        xml_grant(has_role("nurse"), "//record/name"),
        xml_deny(has_role("nurse"), "//record[department='oncology']"),
    ])


@register("A2", "ablation: ignoring DENY policies when forming "
               "dissemination configurations leaks forbidden portions")
def run() -> ExperimentResult:
    cast = named_cast()
    base = _policy_base()
    grants_only = XmlPolicyBase(
        [p for p in base if p.sign is XmlSign.GRANT])
    rows = []
    for record_count in (20, 80):
        document = hospital_corpus(record_count, seed=42)
        full = element_configurations(base, "h", document)
        naive = element_configurations(grants_only, "h", document)
        by_id = {id(node): node for node in document.iter()}
        for name, subject in (("doctor", cast.doctor),
                              ("nurse", cast.nurse)):
            leaked = 0
            unlockable = 0
            for node_id, configuration in naive.items():
                if not subject_can_unlock(grants_only, subject,
                                          configuration):
                    continue
                unlockable += 1
                # Does the deny-aware model forbid this element?
                if not subject_can_unlock(base, subject,
                                          full[node_id]):
                    leaked += 1
            forbidden_tags = sorted({
                by_id[node_id].tag
                for node_id, configuration in naive.items()
                if subject_can_unlock(grants_only, subject,
                                      configuration)
                and not subject_can_unlock(base, subject,
                                           full[node_id])})
            rows.append([record_count, name, unlockable, leaked,
                         ",".join(forbidden_tags[:4]) or "-"])
    observations = [
        "grant-only configurations hand the doctor keys for every SSN — "
        "exactly what the universal DENY forbids",
        "the nurse leaks nothing either way: her name grant attaches "
        "deeper than the oncology deny, so most-specific-wins lets it "
        "through in both models (Author-X semantics, same as views)",
        "the deny-aware model (each grant paired with its dominating "
        "denies) leaks nothing by construction",
    ]
    return ExperimentResult(
        "A2", "Ablation: grant-only vs deny-aware dissemination "
              "configurations (elements the naive model over-unlocks)",
        ["records", "subject", "unlockable elements",
         "leaked vs deny-aware", "leaked tags"],
        rows, observations)
