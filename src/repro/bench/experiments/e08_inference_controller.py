"""E8 — The inference controller ([13, 14], §3.3).

Claim: the inference controller "is one solution to achieve some level
of privacy" — it must stop query *sequences* that jointly complete a
private association, which per-query (stateless) enforcement misses.

Operationalization: medical database; an attacker issues the classic
two-step linkage sequence per target row (quasi-identifiers first, then
diagnosis).  Sweep constraint count; report completed linkages under
(a) no controller, (b) stateless checks, (c) history-tracking controller,
plus per-query latency overhead.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, Timer, register
from repro.core.errors import InferenceViolation
from repro.datagen.tabular import load_patients
from repro.privacy.constraints import PrivacyConstraintSet, PrivacyLevel
from repro.privacy.controller import PrivacyController
from repro.privacy.inference import InferenceController
from repro.relational.authorization import Privilege
from repro.relational.database import Database


def _attack(select, row_ids) -> tuple[int, int]:
    """Run the two-step linkage per row; return (linkages, refusals)."""
    linkages = 0
    refusals = 0
    for row_id in row_ids:
        seen: dict[str, object] = {}
        for columns in (["id", "zip", "age"], ["id", "diagnosis"]):
            try:
                result = select(columns,
                                lambda r, rid=row_id: r["id"] == rid)
            except InferenceViolation:
                refusals += 1
                continue
            for row in result.rows:
                record = dict(zip(result.columns, row))
                seen.update({k: v for k, v in record.items()
                             if v is not None})
        if all(seen.get(c) is not None
               for c in ("zip", "age", "diagnosis")):
            linkages += 1
    return linkages, refusals


@register("E8", "query-history inference control blocks linkage "
               "sequences that per-query checks miss ([13,14])")
def run() -> ExperimentResult:
    rows = []
    for extra_constraints in (0, 10, 40):
        database = Database()
        load_patients(database, 300, seed=15)
        database.authorization.grant("dba", "attacker", "patients",
                                     Privilege.SELECT)
        constraints = PrivacyConstraintSet()
        constraints.protect_together(
            "patients", ["zip", "age", "diagnosis"],
            PrivacyLevel.PRIVATE, name="linkage")
        # Padding constraints to measure evaluation-cost scaling.
        for index in range(extra_constraints):
            constraints.protect(
                "patients", "salary", PrivacyLevel.PUBLIC,
                name=f"pad-{index}",
                condition=lambda row: False)
        controller = PrivacyController(database, constraints)
        row_ids = list(range(1, 41))

        # (a) no controller: raw database access.
        def raw(columns, where):
            return database.select("attacker", "patients", columns,
                                   where)

        linkages_raw, _ = _attack(raw, row_ids)

        # (b) stateless privacy checks only.
        stateless = InferenceController(controller,
                                        track_history=False)
        with Timer() as stateless_timer:
            linkages_stateless, refusals_stateless = _attack(
                lambda c, w: stateless.select("attacker", "patients",
                                              c, w), row_ids)

        # (c) full history tracking.
        tracked = InferenceController(controller, track_history=True)
        with Timer() as tracked_timer:
            linkages_tracked, refusals_tracked = _attack(
                lambda c, w: tracked.select("attacker", "patients",
                                            c, w), row_ids)
        queries = len(row_ids) * 2
        rows.append([
            1 + extra_constraints,
            linkages_raw, linkages_stateless, linkages_tracked,
            refusals_tracked,
            stateless_timer.elapsed * 1e3 / queries,
            tracked_timer.elapsed * 1e3 / queries,
        ])
    observations = [
        "without history tracking the two-step attack links every "
        "target; the inference controller blocks all of them",
        "overhead grows mildly with constraint count — the ledger "
        "lookup dominates, not the constraints",
    ]
    return ExperimentResult(
        "E8", "Inference controller: linkages completed by a two-step "
              "attack (40 targets)",
        ["constraints", "raw linkages", "stateless linkages",
         "tracked linkages", "refusals", "stateless ms/q",
         "tracked ms/q"],
        rows, observations)
