"""A4 (ablation) — static policy analysis cost vs policy-base size.

The analyzer in :mod:`repro.analysis` inspects whole policy bases
without executing queries, so its cost must stay near-linear in the
number of policies or it cannot gate deployments of realistic size.
This experiment times :func:`analyze_xml_policies` over generated
Author-X bases of 100 / 1 000 / 10 000 policies (the credential-overlap
test is a per-policy bitmask, so the pairwise conflict check never
materializes the quadratic candidate set) and reports per-policy cost
alongside the finding counts.
"""

from __future__ import annotations

from repro.analysis.xmlpolicy import analyze_xml_policies
from repro.bench.harness import ExperimentResult, register, time_callable
from repro.datagen.documents import hospital_schema
from repro.datagen.workload import xml_policy_workload


@register("A4", "static analysis of an n-policy Author-X base stays "
               "near-linear: credential overlap is a precomputed "
               "bitmask, not a pairwise expression comparison (§3.2)")
def run() -> ExperimentResult:
    schema = hospital_schema()
    rows = []
    per_policy_us = []
    for policy_count in (100, 1_000, 10_000):
        base = xml_policy_workload(policy_count, seed=11)

        def work() -> tuple[int, int, int]:
            report = analyze_xml_policies(base, schema)
            by_rule = {rule_id: len(report.by_rule(rule_id))
                       for rule_id in report.rule_ids()}
            return (by_rule.get("XML-CONFLICT", 0),
                    by_rule.get("XML-DEAD", 0),
                    by_rule.get("XML-SHADOWED", 0))

        elapsed, (conflicts, dead, shadowed) = time_callable(
            work, repeats=3)
        per_policy_us.append(elapsed * 1e6 / policy_count)
        rows.append([policy_count, elapsed * 1e3,
                     elapsed * 1e6 / policy_count,
                     conflicts, dead, shadowed])
    observations = [
        "per-policy cost grows far slower than the 100x base growth, "
        "so the whole-base sweep is deployable as a CI gate",
        "finding counts scale with the base because the generator "
        "seeds a fixed fraction of dead targets and blanket denials",
    ]
    return ExperimentResult(
        "A4", "Ablation: static XML policy analysis vs base size "
              "(conflicts, dead policies, shadowed grants)",
        ["policies", "total ms", "us/policy",
         "conflicts", "dead", "shadowed"],
        rows, observations)
