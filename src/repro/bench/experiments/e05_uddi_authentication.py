"""E5 — Merkle authentication of UDDI answers ([4], §4.1).

Claim: one *summary signature* per entry lets the discovery agency serve
verifiable partial answers; the alternative, "directly apply standard
digital signature techniques", would require a signature per possible
view (or an online provider signing every answer).

Operationalization: registry size sweep; compare signatures the provider
must produce (Merkle: one per entry; baseline: one per service-detail
view), answer verification latency, and filler-hash overhead.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, Timer, register
from repro.crypto.rsa import generate_keypair, sign
from repro.datagen.registry_gen import generate_businesses
from repro.uddi.registry import UddiRegistry
from repro.uddi.secure import (
    AuthenticatedRegistry,
    sign_entry,
    verify_authenticated_answer,
)
from repro.xmldb.serializer import serialize_element


@register("E5", "Merkle summary signatures authenticate partial UDDI "
               "answers with one signature per entry ([4])")
def run() -> ExperimentResult:
    keys = generate_keypair(bits=512, seed=9)
    rows = []
    for business_count in (10, 40, 160):
        businesses = generate_businesses(business_count, seed=10)
        registry = AuthenticatedRegistry(UddiRegistry())

        with Timer() as merkle_sign_timer:
            for entity in businesses:
                registry.publish(entity,
                                 sign_entry(entity, "provider",
                                            keys.private),
                                 "provider")
        merkle_signatures = business_count

        # Baseline: sign every possible service-detail view up front.
        with Timer() as baseline_sign_timer:
            baseline_signatures = 0
            for entity in businesses:
                for service in entity.services:
                    sign(keys.private,
                         serialize_element(service.to_element()))
                    baseline_signatures += 1
                # plus the full-entry view
                sign(keys.private,
                     serialize_element(entity.to_element()))
                baseline_signatures += 1

        # Query: drill down into every service, verify each answer.
        total_fillers = 0
        queries = 0
        with Timer() as verify_timer:
            for entity in businesses[: min(20, business_count)]:
                for service in entity.services:
                    answer = registry.get_service_detail(
                        service.service_key)
                    verify_authenticated_answer(answer, keys.public)
                    total_fillers += answer.proof_hash_count()
                    queries += 1
        rows.append([business_count, merkle_signatures,
                     baseline_signatures,
                     merkle_sign_timer.elapsed * 1e3,
                     baseline_sign_timer.elapsed * 1e3,
                     verify_timer.elapsed * 1e3 / max(queries, 1),
                     total_fillers / max(queries, 1)])
    observations = [
        "signatures the provider must produce: Merkle = entries; "
        "baseline = entries + every service view (grows with fan-out)",
        "verification is local to the requestor and needs only the "
        "filler hashes — the agency stays untrusted",
    ]
    return ExperimentResult(
        "E5", "UDDI authentication: signing and verification costs",
        ["businesses", "merkle sigs", "baseline sigs", "merkle sign ms",
         "baseline sign ms", "verify ms/q", "fillers/q"],
        rows, observations)
