"""E4 — Third-party publishing: verifiable answers from an untrusted
publisher ([3], §3.2).

Claim: subjects can "verify the authenticity and completeness of the
received answer" without trusting the publisher.

Operationalization: corpus + subject mix; measure proof overhead (filler
hashes, verification latency) of the Merkle scheme against the
trusted-owner baseline (owner signs each subject's view individually —
which forces the *owner* to be online per query), and show the detection
rate of each attack is 100%.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, Timer, register
from repro.core.credentials import anyone, has_role
from repro.crypto.rsa import generate_keypair, sign, verify
from repro.datagen.documents import hospital_corpus
from repro.datagen.population import named_cast
from repro.pubsub import MaliciousPublisher, Owner, Publisher, SubjectVerifier
from repro.xmldb.serializer import serialize
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant
from repro.xmlsec.views import compute_view


def _policy_base() -> XmlPolicyBase:
    return XmlPolicyBase([
        xml_grant(has_role("doctor"), "/hospital"),
        xml_deny(anyone(), "//ssn"),
        xml_grant(has_role("nurse"), "//record/name"),
        xml_grant(has_role("researcher"), "//record/diagnosis"),
    ])


@register("E4", "untrusted publishers can prove authenticity AND "
               "completeness of partial answers ([3])")
def run() -> ExperimentResult:
    cast = named_cast()
    subjects = [("doctor", cast.doctor), ("nurse", cast.nurse),
                ("researcher", cast.researcher)]
    rows = []
    for record_count in (10, 40, 160):
        base = _policy_base()
        document = hospital_corpus(record_count, seed=5)
        owner = Owner("hospital", base, key_seed=6)
        owner.add_document("h", document)
        publisher = Publisher()
        owner.publish_to(publisher)
        for name, subject in subjects:
            answer = publisher.request(subject, "h")
            verifier = SubjectVerifier(subject, owner.public_key, base)
            with Timer() as verify_timer:
                report = verifier.verify(answer)
            assert report.ok
            # Baseline: owner online, signs this subject's view directly.
            owner_keys = generate_keypair(bits=512, seed=7)
            view, _ = compute_view(base, subject, "h", document)
            with Timer() as baseline_timer:
                payload = serialize(view)
                signature = sign(owner_keys.private, payload)
                assert verify(owner_keys.public, payload, signature)
            rows.append([record_count, name,
                         answer.proof_hash_count(),
                         verify_timer.elapsed * 1e3,
                         baseline_timer.elapsed * 1e3])

    # Attack detection sweep.
    base = _policy_base()
    document = hospital_corpus(40, seed=5)
    owner = Owner("hospital", base, key_seed=6)
    owner.add_document("h", document)
    owner.add_document("h2", hospital_corpus(5, seed=8))
    detected = {}
    for mode in ("tamper", "omit", "swap"):
        publisher = MaliciousPublisher(mode)
        owner.publish_to(publisher)
        trials = 0
        caught = 0
        for _name, subject in subjects:
            answer = publisher.request(subject, "h")
            report = SubjectVerifier(
                subject, owner.public_key, base).verify(answer)
            trials += 1
            if not report.ok:
                caught += 1
        detected[mode] = (caught, trials)
    observations = [
        "the Merkle scheme needs no online owner: one summary signature "
        "per document serves every subject and every query",
        "attack detection: " + ", ".join(
            f"{mode} {caught}/{trials}"
            for mode, (caught, trials) in detected.items()),
    ]
    return ExperimentResult(
        "E4", "Third-party publishing: proof size, verification cost, "
              "attack detection",
        ["records", "subject", "filler hashes", "verify ms",
         "owner-online ms"],
        rows, observations)
