"""E11 — The flexible security policy (§5).

Claim: "During some situations we may need one hundred percent security
while during some other situations say thirty percent security (whatever
that means) may be sufficient" — security must be dialable against
efficiency.

Operationalization: sweep the dial 0..100 over the default measure
catalogue; report throughput, cost and residual risk, then drive a
simulated incident through the situational presets and measure how the
operating point moves.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, register
from repro.semweb.flexible import (
    FlexiblePolicy,
    SituationalPolicy,
)


@register("E11", "a flexible security dial trades residual risk against "
                "throughput; situations pick the operating point (§5)")
def run() -> ExperimentResult:
    policy = FlexiblePolicy()
    rows = []
    for dial in range(0, 101, 10):
        point = policy.operating_point(dial)
        rows.append([dial, len(point.active_measures),
                     point.cost_per_request, point.throughput,
                     point.residual_risk])

    situational = SituationalPolicy(policy)
    trajectory = []
    for situation in ("relaxed", "normal", "elevated", "under-attack",
                      "normal"):
        point = situational.escalate_to(situation)
        trajectory.append(
            f"{situation}@{situational.dial()}: "
            f"thr {point.throughput:.2f}, risk {point.residual_risk:.2f}")
    minimal_for_inference = policy.minimal_dial_covering({"inference"})
    observations = [
        "incident trajectory: " + " -> ".join(trajectory),
        f"'thirty percent security' means: the measures active at dial "
        f"30 = {policy.operating_point(30).active_measures}",
        f"covering inference attacks requires dial >= "
        f"{minimal_for_inference} — the expensive controls arrive last",
    ]
    return ExperimentResult(
        "E11", "Flexible security: the dial's risk/throughput frontier",
        ["dial", "measures", "cost/request", "throughput",
         "residual risk"],
        rows, observations)
