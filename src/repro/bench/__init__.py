"""Benchmark harness: experiment registry, timers, table rendering."""

from repro.bench.harness import (
    Experiment,
    ExperimentResult,
    Timer,
    all_experiments,
    get_experiment,
    register,
    run_all,
    time_callable,
)
from repro.bench.tables import format_cell, render_table

__all__ = [
    "Experiment", "ExperimentResult", "Timer", "all_experiments",
    "format_cell", "get_experiment", "register", "render_table",
    "run_all", "time_callable",
]
