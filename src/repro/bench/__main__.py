"""CLI: ``python -m repro.bench [E1 E2 ...]`` runs experiments and
prints their tables (all of them by default)."""

from __future__ import annotations

import sys

import repro.bench.experiments  # noqa: F401  (registers everything)
from repro.bench.harness import run_all


def main(argv: list[str]) -> int:
    ids = argv or None
    for result in run_all(ids):
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
