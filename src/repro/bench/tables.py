"""Fixed-width table rendering for benchmark output.

Every benchmark prints its results through :func:`render_table` so the
rows EXPERIMENTS.md records look identical run to run.
"""

from __future__ import annotations

from typing import Sequence


def format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table; numeric columns right-aligned."""
    text_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    numeric = [
        all(isinstance(row[index], (int, float)) and
            not isinstance(row[index], bool)
            for row in rows) if rows else False
        for index in range(len(headers))]

    def line(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if numeric[index]:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "| " + " | ".join(parts) + " |"

    separator = "|-" + "-|-".join("-" * w for w in widths) + "-|"
    output: list[str] = []
    if title:
        output.append(title)
    output.append(line(list(headers)))
    output.append(separator)
    for row in text_rows:
        output.append(line(row))
    return "\n".join(output)
