"""The document owner in the third-party publishing protocol [3].

The owner holds the documents and the access control policies, but does
*not* answer queries — an untrusted :class:`~repro.pubsub.publisher.Publisher`
does.  The owner's job is to make the publisher's answers *verifiable*:

* it signs, once per document, the Merkle hash of the whole document (the
  *summary signature*);
* it hands the publisher the documents, the policy base and the summary
  signatures;
* it issues each subject a :class:`SubscriptionTicket` binding the
  subject's credentials to the owner's signature, so the publisher cannot
  invent subjects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.subjects import Subject
from repro.crypto.hashing import sha256_hex
from repro.crypto.rsa import KeyPair, PublicKey, generate_keypair, sign
from repro.merkle.xml_merkle import document_hash
from repro.xmldb.model import Document
from repro.xmlsec.authorx import XmlPolicyBase
from repro.xmlsec.dissemination import Configuration, configurations_by_path


@dataclass(frozen=True)
class SummarySignature:
    """The owner's signature over one document's Merkle root hash."""

    doc_id: str
    root_hash: str
    signature: int

    def verify(self, owner_key: PublicKey) -> bool:
        from repro.crypto.rsa import verify
        return verify(owner_key, f"{self.doc_id}:{self.root_hash}",
                      self.signature)


@dataclass(frozen=True)
class SubscriptionTicket:
    """Owner-signed statement that a subject (and its credential digest)
    is registered; presented by subjects to the publisher."""

    subject_name: str
    credential_digest: str
    signature: int

    def verify(self, owner_key: PublicKey) -> bool:
        from repro.crypto.rsa import verify
        return verify(owner_key,
                      f"{self.subject_name}:{self.credential_digest}",
                      self.signature)


@dataclass(frozen=True)
class PolicyMap:
    """Owner-signed record of which policy configuration protects each
    node of a document.

    This is the "security-enhanced structure" of [3] that makes
    *completeness* verifiable: a subject who knows the (public) policy
    base can compute, from the map, exactly which node paths it is
    entitled to, and detect a publisher that silently omitted some.
    The map reveals node paths (tags/structure) — the same structural
    disclosure connectors make, documented in DESIGN.md.
    """

    doc_id: str
    entries: dict[str, Configuration]
    signature: int

    @staticmethod
    def digest(doc_id: str, entries: dict[str, Configuration]) -> str:
        canonical = sorted(
            (path, sorted((g, tuple(sorted(d))) for g, d in configuration))
            for path, configuration in entries.items())
        return sha256_hex(f"{doc_id}:{canonical!r}")

    def verify(self, owner_key: PublicKey) -> bool:
        from repro.crypto.rsa import verify
        return verify(owner_key, self.digest(self.doc_id, self.entries),
                      self.signature)


def credential_digest(subject: Subject) -> str:
    """Stable digest of a subject's role and credential set."""
    from repro.crypto.hashing import sha256_hex
    parts = sorted(r.name for r in subject.roles)
    parts += sorted(
        f"{c.type_name}:{c.issuer}:{sorted(c.attributes.items())!r}"
        for c in subject.credentials)
    return sha256_hex("|".join(parts))


class Owner:
    """The information owner: documents, policies, signing keys."""

    def __init__(self, name: str, policy_base: XmlPolicyBase,
                 key_seed: int = 1) -> None:
        self.name = name
        self.policy_base = policy_base
        self._keys: KeyPair = generate_keypair(seed=key_seed)
        self._documents: dict[str, Document] = {}
        self._signatures: dict[str, SummarySignature] = {}
        self._policy_maps: dict[str, PolicyMap] = {}

    @property
    def public_key(self) -> PublicKey:
        return self._keys.public

    def add_document(self, doc_id: str, document: Document) -> SummarySignature:
        """Register a document: summary-sign it and sign its policy map."""
        root_hash = document_hash(document)
        signature = SummarySignature(
            doc_id, root_hash,
            sign(self._keys.private, f"{doc_id}:{root_hash}"))
        entries = configurations_by_path(self.policy_base, doc_id, document)
        policy_map = PolicyMap(
            doc_id, entries,
            sign(self._keys.private, PolicyMap.digest(doc_id, entries)))
        self._documents[doc_id] = document
        self._signatures[doc_id] = signature
        self._policy_maps[doc_id] = policy_map
        return signature

    def issue_ticket(self, subject: Subject) -> SubscriptionTicket:
        digest = credential_digest(subject)
        return SubscriptionTicket(
            subject.identity.name, digest,
            sign(self._keys.private,
                 f"{subject.identity.name}:{digest}"))

    def publish_to(self, publisher: "Publisher") -> None:  # noqa: F821
        """Hand everything the publisher needs (it is untrusted: it gets
        documents and policies but never the owner's private key)."""
        for doc_id, document in self._documents.items():
            publisher.receive_document(
                doc_id, document, self._signatures[doc_id],
                self._policy_maps[doc_id])
        publisher.receive_policies(self.policy_base)
        publisher.receive_owner_key(self.public_key)

    def documents(self) -> dict[str, Document]:
        return dict(self._documents)

    def summary_signature(self, doc_id: str) -> SummarySignature:
        return self._signatures[doc_id]

    def policy_map(self, doc_id: str) -> PolicyMap:
        return self._policy_maps[doc_id]
