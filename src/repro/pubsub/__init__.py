"""Secure third-party publishing of XML documents ([3], §3.2/§4.1):
owner → untrusted publisher → subject, with Merkle-based authenticity and
policy-map-based completeness verification.
"""

from repro.pubsub.owner import (
    Owner,
    PolicyMap,
    SubscriptionTicket,
    SummarySignature,
    credential_digest,
)
from repro.pubsub.publisher import (
    MaliciousPublisher,
    Publisher,
    VerifiableAnswer,
)
from repro.pubsub.resilient import FaultyAnswerChannel, fetch_verified
from repro.pubsub.subject import SubjectVerifier, VerificationReport

__all__ = [
    "FaultyAnswerChannel", "MaliciousPublisher", "Owner", "PolicyMap",
    "Publisher",
    "SubjectVerifier", "SubscriptionTicket", "SummarySignature",
    "VerifiableAnswer", "VerificationReport", "credential_digest",
    "fetch_verified",
]
