"""The untrusted publisher in the third-party publishing protocol [3].

"The idea is for owners to publish documents, subjects to request access
to the documents, and untrusted publishers to give the subjects the views
of the documents they are authorized to see, making at the same time the
subjects able to verify the authenticity and completeness of the received
answer" (§3.2).

The publisher computes authorized views *with pruned-subtree markers*,
attaches the Merkle filler hashes for the pruned parts and the owner's
summary signature.  A :class:`MaliciousPublisher` subclass implements the
tampering behaviours the tests and benchmark E4 must detect: altering
content, omitting authorized elements (incompleteness) and replaying
another document's signature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import RegistryError
from repro.core.subjects import Subject
from repro.crypto.rsa import PublicKey
from repro.merkle.xml_merkle import (
    FillerHashes,
    content_hash,
    is_pruned_marker,
    merkle_hash,
    original_paths_of_view,
)
from repro.pubsub.owner import PolicyMap, SummarySignature
from repro.xmldb.model import Document, Element
from repro.xmlsec.authorx import XmlPolicyBase
from repro.xmlsec.views import compute_view


@dataclass(frozen=True)
class VerifiableAnswer:
    """What a subject receives for one document request."""

    doc_id: str
    view: Document | None
    fillers: FillerHashes
    summary: SummarySignature
    policy_map: PolicyMap

    def proof_hash_count(self) -> int:
        return len(self.fillers)


class Publisher:
    """Answers subject queries over the owner's documents."""

    def __init__(self, name: str = "publisher") -> None:
        self.name = name
        self._documents: dict[str, Document] = {}
        self._signatures: dict[str, SummarySignature] = {}
        self._policy_maps: dict[str, PolicyMap] = {}
        self._policy_base: XmlPolicyBase | None = None
        self._owner_key: PublicKey | None = None
        self.answers_served = 0

    # -- owner-side feed --------------------------------------------------

    def receive_document(self, doc_id: str, document: Document,
                         summary: SummarySignature,
                         policy_map: PolicyMap) -> None:
        self._documents[doc_id] = document
        self._signatures[doc_id] = summary
        self._policy_maps[doc_id] = policy_map

    def receive_policies(self, policy_base: XmlPolicyBase) -> None:
        self._policy_base = policy_base

    def receive_owner_key(self, key: PublicKey) -> None:
        self._owner_key = key

    # -- subject-side API ---------------------------------------------------

    def doc_ids(self) -> list[str]:
        return sorted(self._documents)

    def request(self, subject: Subject, doc_id: str) -> VerifiableAnswer:
        """Compute the subject's authorized view plus verification data."""
        if self._policy_base is None:
            raise RegistryError("publisher has not received policies yet")
        if doc_id not in self._documents:
            raise RegistryError(f"unknown document {doc_id!r}")
        document = self._documents[doc_id]
        view, _stats = compute_view(
            self._policy_base, subject, doc_id, document, with_markers=True)
        fillers = self._filler_hashes(document, view)
        self.answers_served += 1
        return self._package(doc_id, view, fillers)

    def _package(self, doc_id: str, view: Document | None,
                 fillers: FillerHashes) -> VerifiableAnswer:
        return VerifiableAnswer(doc_id, view, fillers,
                                self._signatures[doc_id],
                                self._policy_maps[doc_id])

    def _filler_hashes(self, original: Document,
                       view: Document | None) -> FillerHashes:
        """Fillers: Merkle hashes of pruned subtrees plus content hashes
        of elements whose local content was stripped (connectors and
        NAVIGATE nodes)."""
        if view is None:
            return FillerHashes()
        by_path = {node.node_path(): node for node in original.iter()}
        subtrees: dict[str, str] = {}
        contents: dict[str, str] = {}
        original_paths = original_paths_of_view(view.root)
        for node in view.iter():
            path = original_paths[id(node)]
            if is_pruned_marker(node):
                pruned = by_path.get(path)
                if pruned is not None:
                    subtrees[path] = merkle_hash(pruned)
                continue
            source = by_path.get(path)
            if source is None:
                continue
            stripped = not node.attributes and not node.text
            had_content = bool(source.attributes) or bool(source.text)
            if stripped and had_content:
                contents[path] = content_hash(source)
        return FillerHashes(subtrees, contents)


class MaliciousPublisher(Publisher):
    """A publisher that misbehaves in controlled ways.

    ``mode`` selects the attack:

    * ``"tamper"`` — alters the text of the first content-bearing element
      in every answer (authenticity violation);
    * ``"omit"`` — silently drops the last authorized child of the view
      root, replacing nothing (completeness violation);
    * ``"swap"`` — serves answers with a summary signature replayed from
      a different document (authenticity violation).
    """

    def __init__(self, mode: str, name: str = "malicious") -> None:
        super().__init__(name)
        if mode not in ("tamper", "omit", "swap"):
            raise RegistryError(f"unknown attack mode {mode!r}")
        self.mode = mode

    def request(self, subject: Subject, doc_id: str) -> VerifiableAnswer:
        answer = super().request(subject, doc_id)
        if answer.view is None:
            return answer
        view = answer.view.deep_copy()
        if self.mode == "tamper":
            self._tamper(view.root)
        elif self.mode == "omit":
            self._omit(view.root)
        elif self.mode == "swap":
            # Sorted so the swapped-in signature does not depend on the
            # order documents happened to be published.
            other_ids = sorted(d for d in self._signatures if d != doc_id)
            if other_ids:
                return VerifiableAnswer(doc_id, view, answer.fillers,
                                        self._signatures[other_ids[0]],
                                        answer.policy_map)
        return VerifiableAnswer(doc_id, view, answer.fillers,
                                answer.summary, answer.policy_map)

    @staticmethod
    def _tamper(root: Element) -> None:
        for node in root.iter():
            if node.text and not is_pruned_marker(node):
                node.set_text(node.text + "-forged")
                return

    @staticmethod
    def _omit(root: Element) -> None:
        visible = [c for c in root.element_children
                   if not is_pruned_marker(c)]
        if visible:
            root.remove(visible[-1])
