"""Verified document fetch under an unreliable publisher link.

The third-party publishing protocol already makes answers *checkable*
(:class:`~repro.pubsub.subject.SubjectVerifier`); this module makes the
client path *resilient*: a :class:`FaultyAnswerChannel` damages answers
in flight per a seeded fault plan, and :func:`fetch_verified` wraps
request + verification in retry-with-backoff.  The fail-closed
contract: the caller gets a fully verified
:class:`~repro.pubsub.publisher.VerifiableAnswer` or a typed error —
an answer that fails authenticity or completeness checks is *retried*
(a fresh delivery may be clean) and, when the budget runs out, the
failure surfaces as :class:`RetryExhausted`; it is never returned.
"""

from __future__ import annotations

from repro.core.errors import (
    AuthenticationError,
    CompletenessError,
    IntegrityError,
    MessageDropped,
    ReplicaUnavailable,
    TransportError,
)
from repro.faults.clock import FaultClock
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind
from repro.faults.resilience import (
    RetryPolicy,
    RetryTelemetry,
    retry_with_backoff,
)
from repro.core.subjects import Subject
from repro.merkle.xml_merkle import is_pruned_marker
from repro.pubsub.publisher import Publisher, VerifiableAnswer
from repro.pubsub.subject import SubjectVerifier


class FaultyAnswerChannel:
    """The subject-to-publisher link, with scheduled faults.

    Whole-answer faults (drop, crash) raise transport errors; CORRUPT
    rots the text of one view element — precisely the damage the
    Merkle summary-signature check must catch.  Omission faults
    (REORDER is reused as "a fragment got separated from the answer")
    remove one authorized element, which the completeness check must
    catch.
    """

    def __init__(self, faults: FaultInjector, name: str = "answers") -> None:
        self.faults = faults
        self.site = f"pubsub:{name}"

    def deliver(self, answer: VerifiableAnswer) -> VerifiableAnswer:
        events = self.faults.step(self.site)
        if not events:
            return answer
        view = answer.view
        for event in events:
            if event.kind is FaultKind.CRASH:
                raise ReplicaUnavailable("the publisher is down")
            if event.kind in (FaultKind.DROP, FaultKind.STALE_READ):
                raise MessageDropped(
                    f"answer for {answer.doc_id!r} lost in transit")
            if event.kind is FaultKind.CORRUPT and view is not None:
                # Damage must not alias the publisher's pristine answer.
                view = view.deep_copy()  # lint: allow=LINT-HOTCOPY
                for node in view.root.iter():
                    if node.text and not is_pruned_marker(node):
                        node.set_text(self.faults.corrupt_text(
                            node.text, self.site))
                        break
            if event.kind is FaultKind.REORDER and view is not None:
                view = view.deep_copy()  # lint: allow=LINT-HOTCOPY
                visible = [c for c in view.root.element_children
                           if not is_pruned_marker(c)]
                if visible:
                    view.root.remove(visible[-1])
        if view is answer.view:
            return answer
        return VerifiableAnswer(answer.doc_id, view, answer.fillers,
                                answer.summary, answer.policy_map)


def fetch_verified(publisher: Publisher, verifier: SubjectVerifier,
                   subject: Subject, doc_id: str,
                   channel: FaultyAnswerChannel | None = None,
                   policy: RetryPolicy | None = None,
                   clock: FaultClock | None = None,
                   telemetry: RetryTelemetry | None = None
                   ) -> VerifiableAnswer:
    """The wired pub/sub client path: request, verify, retry, fail closed."""
    policy = policy if policy is not None else RetryPolicy()
    if clock is not None:
        pass
    elif channel is not None:
        clock = channel.faults.clock
    else:
        clock = FaultClock()

    def attempt() -> VerifiableAnswer:
        answer = publisher.request(subject, doc_id)
        if channel is not None:
            answer = channel.deliver(answer)
        verifier.check_authenticity(answer)
        verifier.check_completeness(answer)
        return answer

    return retry_with_backoff(
        attempt, policy, clock, key=f"pubsub:{doc_id}",
        retry_on=(TransportError, AuthenticationError,
                  IntegrityError, CompletenessError),
        telemetry=telemetry)
