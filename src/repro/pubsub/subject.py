"""The subject (consumer) side of third-party publishing [3].

The verifier checks three properties of every answer, without trusting
the publisher:

* **authenticity** — the view plus the filler hashes recompute the Merkle
  root hash the owner signed; the summary signature verifies under the
  owner's public key and is bound to the requested document id;
* **completeness** — from the owner-signed policy map, the subject
  derives exactly which node paths it is entitled to and checks each is
  present in the view (not pruned, not a bare connector);
* **minimality** (no over-delivery) — the view contains no content the
  policy map says the subject is not entitled to.  Over-delivery is the
  publisher leaking, which the subject reports but benefits from; we
  surface it for the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import (
    AuthenticationError,
    CompletenessError,
    IntegrityError,
)
from repro.core.subjects import Subject
from repro.crypto.rsa import PublicKey
from repro.merkle.xml_merkle import (
    is_pruned_marker,
    original_paths_of_view,
    view_hash,
)
from repro.pubsub.publisher import VerifiableAnswer
from repro.xmlsec.authorx import XmlPolicyBase
from repro.xmlsec.dissemination import subject_can_unlock


@dataclass
class VerificationReport:
    """The outcome of verifying one answer."""

    authentic: bool
    complete: bool
    over_delivered_paths: list[str] = field(default_factory=list)
    missing_paths: list[str] = field(default_factory=list)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.authentic and self.complete


class SubjectVerifier:
    """Client-side verifier bound to one subject and one owner."""

    def __init__(self, subject: Subject, owner_key: PublicKey,
                 policy_base: XmlPolicyBase) -> None:
        self.subject = subject
        self.owner_key = owner_key
        self.policy_base = policy_base

    # -- individual checks -------------------------------------------------

    def check_authenticity(self, answer: VerifiableAnswer) -> None:
        """Raise AuthenticationError/IntegrityError if the answer is forged."""
        if answer.summary.doc_id != answer.doc_id:
            raise AuthenticationError(
                f"summary signature is for document "
                f"{answer.summary.doc_id!r}, answer claims "
                f"{answer.doc_id!r}")
        if not answer.summary.verify(self.owner_key):
            raise AuthenticationError(
                "summary signature does not verify under the owner key")
        if answer.view is not None:
            recomputed = view_hash(answer.view.root, answer.fillers)
            if recomputed != answer.summary.root_hash:
                raise IntegrityError(
                    "view + filler hashes do not reproduce the signed "
                    "Merkle root (content was altered or omitted)")

    def entitled_paths(self, answer: VerifiableAnswer) -> set[str]:
        """Node paths of the original document this subject may read."""
        if not answer.policy_map.verify(self.owner_key):
            raise AuthenticationError(
                "policy map signature does not verify under the owner key")
        return {
            path for path, configuration in answer.policy_map.entries.items()
            if subject_can_unlock(self.policy_base, self.subject,
                                  configuration)}

    def check_completeness(self, answer: VerifiableAnswer) -> None:
        """Raise CompletenessError if an entitled node is missing or was
        delivered stripped of its content (masked behind a content
        filler)."""
        entitled = self.entitled_paths(answer)
        delivered = self._delivered_paths(answer)
        missing = set(entitled) - delivered
        masked = {path for path in entitled
                  if path in answer.fillers.contents}
        problems = sorted(missing | masked)
        if problems:
            raise CompletenessError(
                f"publisher withheld {len(problems)} authorized node(s), "
                f"first: {problems[0]}")

    def _delivered_paths(self, answer: VerifiableAnswer) -> set[str]:
        """Original-document paths of non-marker view nodes."""
        if answer.view is None:
            return set()
        paths = original_paths_of_view(answer.view.root)
        return {paths[id(node)] for node in answer.view.iter()
                if not is_pruned_marker(node)}

    def over_delivered(self, answer: VerifiableAnswer) -> list[str]:
        """Paths delivered with content despite no entitlement."""
        entitled = self.entitled_paths(answer)
        if answer.view is None:
            return []
        paths = original_paths_of_view(answer.view.root)
        leaked: list[str] = []
        for node in answer.view.iter():
            if is_pruned_marker(node):
                continue
            has_content = bool(node.attributes) or bool(node.text)
            if has_content and paths[id(node)] not in entitled:
                leaked.append(paths[id(node)])
        return sorted(leaked)

    # -- the full protocol ---------------------------------------------------

    def verify(self, answer: VerifiableAnswer) -> VerificationReport:
        """Run all checks, returning a report instead of raising."""
        report = VerificationReport(authentic=True, complete=True)
        try:
            self.check_authenticity(answer)
        except (AuthenticationError, IntegrityError) as exc:
            report.authentic = False
            report.detail = str(exc)
        try:
            self.check_completeness(answer)
        except CompletenessError as exc:
            report.complete = False
            entitled = self.entitled_paths(answer)
            report.missing_paths = sorted(
                entitled - self._delivered_paths(answer))
            if report.detail:
                report.detail += "; "
            report.detail += str(exc)
        except AuthenticationError as exc:
            report.complete = False
            report.detail += ("; " if report.detail else "") + str(exc)
        try:
            report.over_delivered_paths = self.over_delivered(answer)
        except AuthenticationError:
            pass
        return report
