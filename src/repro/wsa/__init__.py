"""The Web Service Architecture (§2.2) with message-level security (§4.1):
SOAP envelopes, WSDL-lite contracts, provider/requestor/discovery-agency
actors, an attackable in-process transport, signing/encryption/replay
protection.
"""

from repro.wsa.actors import (
    DiscoveryAgencyActor,
    ServiceProvider,
    ServiceRequestor,
)
from repro.wsa.security import (
    ENCRYPTED_PREFIX,
    SIGNATURE_HEADER,
    SIGNER_HEADER,
    ReplayGuard,
    decrypt_parameters,
    encrypt_parameters,
    is_encrypted,
    sign_envelope,
    verify_envelope,
)
from repro.wsa.soap import (
    FAULT_ACCESS_DENIED,
    FAULT_BAD_SIGNATURE,
    FAULT_PRIVACY,
    FAULT_REPLAY,
    FAULT_UNKNOWN_OPERATION,
    SoapEnvelope,
    SoapFault,
    fresh_message_id,
)
from repro.wsa.reliable import ReliableChannel
from repro.wsa.transport import (
    CHECKSUM_HEADER,
    BusStats,
    MessageBus,
    frame_checksum,
    stamp_checksum,
    verify_checksum,
)
from repro.wsa.wsdl import Operation, ServiceDescription, describe

__all__ = [
    "BusStats", "CHECKSUM_HEADER", "DiscoveryAgencyActor",
    "ENCRYPTED_PREFIX",
    "FAULT_ACCESS_DENIED", "FAULT_BAD_SIGNATURE", "FAULT_PRIVACY",
    "FAULT_REPLAY", "FAULT_UNKNOWN_OPERATION", "MessageBus", "Operation",
    "ReliableChannel", "ReplayGuard", "SIGNATURE_HEADER", "SIGNER_HEADER",
    "ServiceDescription", "ServiceProvider", "ServiceRequestor",
    "SoapEnvelope", "SoapFault", "decrypt_parameters", "describe",
    "encrypt_parameters", "frame_checksum", "fresh_message_id",
    "is_encrypted",
    "sign_envelope", "stamp_checksum", "verify_checksum",
    "verify_envelope",
]
