"""The three WSA actors (§2.2): service provider, service requestor,
discovery agency.

A :class:`ServiceProvider` implements operations behind a WSDL contract
with optional message security (require signatures, encrypt replies,
replay protection) and an optional access-control evaluator; a
:class:`ServiceRequestor` discovers services via a discovery agency,
verifies registry answers, and invokes operations over the bus; the
:class:`DiscoveryAgencyActor` fronts a :class:`ThirdPartyDeployment`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.errors import AccessDenied, AuthenticationError, SecurityError
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action
from repro.core.subjects import Subject
from repro.crypto.hashing import sha256_int
from repro.crypto.rsa import KeyPair, PublicKey, generate_keypair
from repro.uddi.architectures import ThirdPartyDeployment
from repro.uddi.model import BusinessEntity
from repro.uddi.registry import ServiceOverview
from repro.uddi.secure import verify_authenticated_answer
from repro.wsa.soap import (
    FAULT_ACCESS_DENIED,
    FAULT_BAD_SIGNATURE,
    FAULT_REPLAY,
    FAULT_UNKNOWN_OPERATION,
    SoapEnvelope,
)
from repro.wsa.transport import MessageBus
from repro.wsa.security import (
    ReplayGuard,
    decrypt_parameters,
    encrypt_parameters,
    sign_envelope,
    verify_envelope,
)
from repro.wsa.wsdl import ServiceDescription
from repro.core.errors import ServiceFault

OperationImpl = Callable[[Subject | None, dict[str, str]], dict[str, str]]


class ServiceProvider:
    """Hosts one service: WSDL contract + operation implementations."""

    def __init__(self, name: str, description: ServiceDescription,
                 bus: MessageBus, key_seed: int | None = None,
                 require_signatures: bool = False,
                 evaluator: PolicyEvaluator | None = None) -> None:
        self.name = name
        self.description = description
        self.bus = bus
        self.keys: KeyPair = generate_keypair(
            seed=key_seed if key_seed is not None else
            sha256_int(name) % (2 ** 31))
        self.require_signatures = require_signatures
        self.evaluator = evaluator
        self.replay_guard = ReplayGuard()
        self._implementations: dict[str, OperationImpl] = {}
        self._known_keys: dict[str, PublicKey] = {}
        bus.register(name, self._handle)

    @property
    def public_key(self) -> PublicKey:
        return self.keys.public

    def implement(self, operation: str, impl: OperationImpl) -> None:
        self.description.operation(operation)  # must exist in the contract
        self._implementations[operation] = impl

    def trust_requestor(self, name: str, key: PublicKey) -> None:
        self._known_keys[name] = key

    def _handle(self, envelope: SoapEnvelope) -> SoapEnvelope:
        try:
            self.replay_guard.admit(envelope)
        except SecurityError as exc:
            raise ServiceFault(FAULT_REPLAY, str(exc)) from None

        subject: Subject | None = None
        if self.require_signatures:
            signer_name = envelope.headers.get("Security.Signer", "")
            key = self._known_keys.get(signer_name)
            if key is None:
                raise ServiceFault(FAULT_BAD_SIGNATURE,
                                   f"unknown signer {signer_name!r}")
            try:
                verify_envelope(envelope, key)
            except AuthenticationError as exc:
                raise ServiceFault(FAULT_BAD_SIGNATURE, str(exc)) from None
            subject = Subject(signer_name)

        decrypt_parameters(envelope, self.keys.private)

        if not self.description.has_operation(envelope.operation):
            raise ServiceFault(FAULT_UNKNOWN_OPERATION, envelope.operation)
        contract = self.description.operation(envelope.operation)
        problems = contract.validate_call(envelope.parameters)
        if problems:
            raise ServiceFault(FAULT_UNKNOWN_OPERATION,
                               "; ".join(problems))

        if self.evaluator is not None:
            caller = subject or Subject(envelope.sender or "anonymous")
            resource = f"ws/{self.name}/{envelope.operation}"
            try:
                self.evaluator.enforce(caller, Action.READ, resource)
            except AccessDenied as exc:
                raise ServiceFault(FAULT_ACCESS_DENIED, str(exc)) from None

        impl = self._implementations[envelope.operation]
        outputs = impl(subject, dict(envelope.parameters))
        reply = envelope.reply(f"{envelope.operation}Response", outputs)
        sign_envelope(reply, self.name, self.keys.private)
        return reply


class ServiceRequestor:
    """A client: discovers services, verifies answers, invokes securely."""

    def __init__(self, name: str, bus: MessageBus,
                 key_seed: int | None = None) -> None:
        self.name = name
        self.bus = bus
        self.keys: KeyPair = generate_keypair(
            seed=key_seed if key_seed is not None else
            sha256_int(name) % (2 ** 31))
        self._provider_keys: dict[str, PublicKey] = {}

    @property
    def public_key(self) -> PublicKey:
        return self.keys.public

    def trust_provider(self, name: str, key: PublicKey) -> None:
        self._provider_keys[name] = key

    def trust_provider_via(self, xkms, name: str) -> PublicKey:
        """Bootstrap trust through an XKMS service: locate + validate
        the provider's binding instead of exchanging keys pairwise.
        *xkms* is a :class:`repro.xmlsec.xkms.KeyInformationService`."""
        key = xkms.locate_valid(name)
        self._provider_keys[name] = key
        return key

    def discover(self, agency: "DiscoveryAgencyActor", subject: Subject,
                 name_pattern: str = "*",
                 category: str | None = None) -> list[ServiceOverview]:
        return agency.deployment.find_service(subject, name_pattern,
                                              category)

    def verified_service_detail(self, agency: "DiscoveryAgencyActor",
                                subject: Subject, service_key: str,
                                provider: str):
        """Drill-down with client-side Merkle verification ([4])."""
        answer = agency.deployment.get_service_detail(subject, service_key)
        provider_key = agency.deployment.provider_key(provider)
        verify_authenticated_answer(answer, provider_key)
        return answer

    def invoke(self, provider: str, operation: str,
               parameters: dict[str, str],
               sign_request: bool = False,
               encrypt: list[str] | None = None,
               provider_key: PublicKey | None = None) -> dict[str, str]:
        """Call an operation; returns the (verified) reply outputs."""
        envelope = SoapEnvelope(operation, dict(parameters),
                                sender=self.name, receiver=provider)
        if encrypt:
            key = provider_key or self._provider_keys.get(provider)
            if key is None:
                raise SecurityError(
                    f"no public key known for provider {provider!r}")
            encrypt_parameters(envelope, encrypt, key,
                               seed=sha256_int(envelope.message_id) % 977)
        if sign_request:
            sign_envelope(envelope, self.name, self.keys.private)
        reply = self.bus.send(envelope)
        known = provider_key or self._provider_keys.get(provider)
        if known is not None:
            verify_envelope(reply, known)
        return dict(reply.parameters)


@dataclass
class DiscoveryAgencyActor:
    """The discovery agency as a WSA actor: fronts a deployment.

    §4 notes that "a service requestor may want to validate the privacy
    policy of the discovery agency before interacting with this entity"
    — the agency therefore advertises its own P3P policy
    (``privacy_policy``), and :meth:`acceptable_to` lets a requestor
    gate on it before issuing any inquiry.
    """

    name: str
    deployment: ThirdPartyDeployment
    privacy_policy: object = None  # Optional[repro.p3p.P3PPolicy]

    def publish(self, provider: str, entity: BusinessEntity):
        return self.deployment.publish(provider, entity)

    def acceptable_to(self, preferences) -> bool:
        """Does this agency's advertised privacy policy satisfy the
        requestor's preferences?  No advertised policy fails closed.
        *preferences* is a :class:`repro.p3p.PreferenceSet`."""
        if self.privacy_policy is None:
            return False
        from repro.p3p.matching import match
        return bool(match(self.privacy_policy, preferences))
