"""In-process message bus standing in for HTTP transport.

Endpoints register handlers by name; :meth:`MessageBus.send` routes an
envelope and returns the reply.  An optional *interceptor* models a
network attacker (eavesdrop, modify, replay) so the tests and benchmark
E13 can show which message-security mechanism defeats which attack —
the "one cannot just have secure TCP/IP built on untrusted communication
layers" point of §5.

Orthogonally to the attacker, an optional :class:`FaultInjector`
models the *unreliable* network (``repro.faults``): per-delivery
drop/delay/duplicate/reorder/corrupt/crash faults, all scheduled by a
seeded plan.  Faults surface as typed :class:`TransportError`\\ s or as
frame-checksum failures; the attacker is adversarial and silent, faults
are accidental and loud — the distinction §5 draws between security and
reliability layers.

The bus stamps every reply with a frame checksum and verifies the
checksum on any message that carries one (requests stamped by
:class:`ReliableChannel`), so accidental corruption is detected at the
transport layer like a TCP/UDP checksum — while interceptor tampering
deliberately bypasses the check, because defeating an *adversary* is
the job of WS-Security signatures, not checksums.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable

from repro.core.errors import (
    CorruptMessage,
    MessageDropped,
    ReplicaUnavailable,
    ServiceFault,
)
from repro.crypto.hashing import sha256_hex
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind
from repro.wsa.soap import SoapEnvelope

Handler = Callable[[SoapEnvelope], SoapEnvelope]
Interceptor = Callable[[SoapEnvelope], SoapEnvelope | None]

#: Header carrying the transport frame checksum.
CHECKSUM_HEADER = "FrameChecksum"


def frame_checksum(envelope: SoapEnvelope) -> str:
    """Checksum over the canonical body (headers may change in transit)."""
    return sha256_hex("frame:" + envelope.body_canonical())


def stamp_checksum(envelope: SoapEnvelope) -> SoapEnvelope:
    envelope.headers[CHECKSUM_HEADER] = frame_checksum(envelope)
    return envelope


def verify_checksum(envelope: SoapEnvelope) -> bool:
    """True when the frame checksum is present and matches."""
    stamped = envelope.headers.get(CHECKSUM_HEADER)
    return stamped is not None and stamped == frame_checksum(envelope)


@dataclass
class BusStats:
    sent: int = 0
    delivered: int = 0
    intercepted: int = 0
    faults: int = 0
    dropped: int = 0
    corrupted: int = 0
    duplicated: int = 0
    reordered: int = 0
    crashed: int = 0


class MessageBus:
    """Routes envelopes between registered endpoints."""

    def __init__(self, faults: FaultInjector | None = None) -> None:
        self._endpoints: dict[str, Handler] = {}
        self._interceptor: Interceptor | None = None
        self.faults = faults
        self.stats = BusStats()
        self.transcript: list[SoapEnvelope] = []
        self._deferred: dict[str, list[SoapEnvelope]] = {}

    def register(self, name: str, handler: Handler) -> None:
        self._endpoints[name] = handler

    def set_interceptor(self, interceptor: Interceptor | None) -> None:
        """Install (or clear) a network attacker."""
        self._interceptor = interceptor

    def _fault_site(self, receiver: str) -> str:
        return f"transport:{receiver}"

    def _apply_faults(self, envelope: SoapEnvelope
                      ) -> tuple[SoapEnvelope, bool]:
        """Consult the injector for this delivery.

        Returns the (possibly corrupted) envelope and whether delivery
        should happen twice.  Raises the typed error for drop/crash/
        reorder faults.  DELAY is charged to the fault clock inside
        :meth:`FaultInjector.step`.
        """
        site = self._fault_site(envelope.receiver)
        duplicate = False
        for event in self.faults.step(site):
            if event.kind is FaultKind.DROP:
                self.stats.dropped += 1
                raise MessageDropped(
                    f"message {envelope.message_id} to "
                    f"{envelope.receiver!r} lost in transit")
            if event.kind is FaultKind.CRASH:
                self.stats.crashed += 1
                raise ReplicaUnavailable(
                    f"endpoint {envelope.receiver!r} is down")
            if event.kind is FaultKind.REORDER:
                # Delivery defers behind the next message to this
                # endpoint: the current call fails loudly and the
                # envelope will arrive out of order later.
                self.stats.reordered += 1
                self._deferred.setdefault(envelope.receiver, []).append(
                    copy.deepcopy(envelope))  # lint: allow=LINT-HOTCOPY
                raise MessageDropped(
                    f"message {envelope.message_id} overtaken in transit")
            if event.kind is FaultKind.CORRUPT:
                self.stats.corrupted += 1
                envelope = self._corrupt(envelope, site)
            if event.kind is FaultKind.DUPLICATE:
                self.stats.duplicated += 1
                duplicate = True
        return envelope, duplicate

    def _corrupt(self, envelope: SoapEnvelope, site: str) -> SoapEnvelope:
        """Deterministic bit rot in the first parameter value (or the
        operation name when the body has no parameters)."""
        garbled = copy.deepcopy(envelope)
        if garbled.parameters:
            name = sorted(garbled.parameters)[0]
            garbled.parameters[name] = self.faults.corrupt_text(
                garbled.parameters[name], site)
        else:
            garbled.operation = self.faults.corrupt_text(
                garbled.operation, site)
        return garbled

    def send(self, envelope: SoapEnvelope) -> SoapEnvelope:
        """Deliver *envelope* to its receiver and return the reply.

        The interceptor sees the message first and may pass it through,
        modify it, or return its own crafted message; the transcript
        records everything that crossed the wire (eavesdropping).
        """
        self.stats.sent += 1
        self.transcript.append(copy.deepcopy(envelope))
        delivered = envelope
        if self._interceptor is not None:
            tampered = self._interceptor(copy.deepcopy(envelope))
            if tampered is not None:
                self.stats.intercepted += 1
                delivered = tampered
        duplicate = False
        if self.faults is not None:
            delivered, duplicate = self._apply_faults(delivered)
        if (CHECKSUM_HEADER in delivered.headers
                and not verify_checksum(delivered)):
            self.stats.faults += 1
            raise CorruptMessage(
                f"message {delivered.message_id} failed its frame "
                f"checksum")
        handler = self._endpoints.get(delivered.receiver)
        if handler is None:
            self.stats.faults += 1
            raise ServiceFault("env:NoSuchEndpoint",
                               f"no endpoint {delivered.receiver!r}")
        # Reordered messages arrive just before the next in-order one.
        for late in self._deferred.pop(delivered.receiver, []):
            try:
                handler(late)
            except ServiceFault:
                pass  # a late duplicate the endpoint rejected
        try:
            reply = handler(delivered)
            if duplicate:
                reply = handler(copy.deepcopy(delivered))
        except ServiceFault:
            self.stats.faults += 1
            raise
        self.stats.delivered += 1
        stamp_checksum(reply)
        if self.faults is not None:
            reply = self._apply_reply_faults(reply)
        self.transcript.append(copy.deepcopy(reply))
        return reply

    def _apply_reply_faults(self, reply: SoapEnvelope) -> SoapEnvelope:
        """The reply leg can rot too; the stamped checksum catches it
        client-side (:class:`ReliableChannel` re-sends the request)."""
        site = self._fault_site(f"{reply.receiver}<-reply")
        for event in self.faults.step(site):
            if event.kind is FaultKind.DROP:
                self.stats.dropped += 1
                raise MessageDropped(
                    f"reply to {reply.receiver!r} lost in transit")
            if event.kind is FaultKind.CORRUPT:
                self.stats.corrupted += 1
                reply = self._corrupt(reply, site)
        return reply

    def replay_last(self) -> SoapEnvelope:
        """Attacker helper: re-send the last request verbatim."""
        requests = [m for m in self.transcript
                    if m.receiver in self._endpoints]
        if not requests:
            raise ServiceFault("env:NothingToReplay", "empty transcript")
        return self.send(copy.deepcopy(requests[-1]))

    def eavesdropped_values(self) -> list[str]:
        """Every parameter value that crossed the wire, as the attacker
        saw it (cleartext unless encrypted)."""
        values: list[str] = []
        for message in self.transcript:
            values.extend(message.parameters.values())
        return values
