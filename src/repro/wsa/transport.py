"""In-process message bus standing in for HTTP transport.

Endpoints register handlers by name; :meth:`MessageBus.send` routes an
envelope and returns the reply.  An optional *interceptor* models a
network attacker (eavesdrop, modify, replay) so the tests and benchmark
E13 can show which message-security mechanism defeats which attack —
the "one cannot just have secure TCP/IP built on untrusted communication
layers" point of §5.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable

from repro.core.errors import ServiceFault
from repro.wsa.soap import SoapEnvelope

Handler = Callable[[SoapEnvelope], SoapEnvelope]
Interceptor = Callable[[SoapEnvelope], SoapEnvelope | None]


@dataclass
class BusStats:
    sent: int = 0
    delivered: int = 0
    intercepted: int = 0
    faults: int = 0


class MessageBus:
    """Routes envelopes between registered endpoints."""

    def __init__(self) -> None:
        self._endpoints: dict[str, Handler] = {}
        self._interceptor: Interceptor | None = None
        self.stats = BusStats()
        self.transcript: list[SoapEnvelope] = []

    def register(self, name: str, handler: Handler) -> None:
        self._endpoints[name] = handler

    def set_interceptor(self, interceptor: Interceptor | None) -> None:
        """Install (or clear) a network attacker."""
        self._interceptor = interceptor

    def send(self, envelope: SoapEnvelope) -> SoapEnvelope:
        """Deliver *envelope* to its receiver and return the reply.

        The interceptor sees the message first and may pass it through,
        modify it, or return its own crafted message; the transcript
        records everything that crossed the wire (eavesdropping).
        """
        self.stats.sent += 1
        self.transcript.append(copy.deepcopy(envelope))
        delivered = envelope
        if self._interceptor is not None:
            tampered = self._interceptor(copy.deepcopy(envelope))
            if tampered is not None:
                self.stats.intercepted += 1
                delivered = tampered
        handler = self._endpoints.get(delivered.receiver)
        if handler is None:
            self.stats.faults += 1
            raise ServiceFault("env:NoSuchEndpoint",
                               f"no endpoint {delivered.receiver!r}")
        try:
            reply = handler(delivered)
        except ServiceFault:
            self.stats.faults += 1
            raise
        self.stats.delivered += 1
        self.transcript.append(copy.deepcopy(reply))
        return reply

    def replay_last(self) -> SoapEnvelope:
        """Attacker helper: re-send the last request verbatim."""
        requests = [m for m in self.transcript
                    if m.receiver in self._endpoints]
        if not requests:
            raise ServiceFault("env:NothingToReplay", "empty transcript")
        return self.send(copy.deepcopy(requests[-1]))

    def eavesdropped_values(self) -> list[str]:
        """Every parameter value that crossed the wire, as the attacker
        saw it (cleartext unless encrypted)."""
        values: list[str] = []
        for message in self.transcript:
            values.extend(message.parameters.values())
        return values
