"""WSDL-lite service descriptions (§2.2: "the Web Services Description
Language (WSDL) to provide an XML-based description of the service
interface").

A :class:`ServiceDescription` declares the operations a service exposes,
each with named input parameters and output fields.  Descriptions are
what providers register in UDDI (as the technical half of a
businessService) and what requestors use to form valid calls; the
transport checks calls against them, yielding the UnknownOperation fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError
from repro.xmldb.model import Element


@dataclass(frozen=True)
class Operation:
    """One operation: name + declared inputs and outputs."""

    name: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()

    def validate_call(self, parameters: dict[str, str]) -> list[str]:
        """Return problems with a proposed parameter set (empty = ok)."""
        problems: list[str] = []
        for name in self.inputs:
            if name not in parameters:
                problems.append(f"missing input {name!r}")
        for name in parameters:
            if name not in self.inputs:
                problems.append(f"unexpected input {name!r}")
        return problems


@dataclass(frozen=True)
class ServiceDescription:
    """The interface contract of one service."""

    service_name: str
    operations: tuple[Operation, ...]
    endpoint: str = ""

    def operation(self, name: str) -> Operation:
        for operation in self.operations:
            if operation.name == name:
                return operation
        raise ConfigurationError(
            f"service {self.service_name!r} has no operation {name!r}")

    def has_operation(self, name: str) -> bool:
        return any(o.name == name for o in self.operations)

    def to_element(self) -> Element:
        node = Element("definitions", {"name": self.service_name})
        for operation in self.operations:
            op_node = Element("operation", {"name": operation.name})
            for name in operation.inputs:
                op_node.append(Element("input", {"name": name}))
            for name in operation.outputs:
                op_node.append(Element("output", {"name": name}))
            node.append(op_node)
        if self.endpoint:
            node.append(Element("port", {"location": self.endpoint}))
        return node


def describe(service_name: str, endpoint: str = "",
             **operations: tuple[tuple[str, ...], tuple[str, ...]]
             ) -> ServiceDescription:
    """Terse builder::

        describe("Weather", forecast=(("city",), ("temp", "sky")))
    """
    ops = tuple(Operation(name, tuple(inputs), tuple(outputs))
                for name, (inputs, outputs) in operations.items())
    return ServiceDescription(service_name, ops, endpoint)
