"""SOAP message model (§2.2: "the Simple Object Access Protocol (SOAP)
to expose the service functionalities").

A :class:`SoapEnvelope` has a header (where the security blocks of
:mod:`repro.wsa.security` travel, mirroring WS-Security) and a body with
an operation name and named parameters.  Faults follow the SOAP fault
shape (code + reason).  Envelopes convert to canonical XML so they can be
signed, encrypted and hashed with the same machinery as documents.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.errors import ServiceFault
from repro.xmldb.model import Element
from repro.xmldb.serializer import serialize_element

_message_ids = itertools.count(1)


def fresh_message_id() -> str:
    return f"msg:{next(_message_ids):08d}"


@dataclass
class SoapEnvelope:
    """One SOAP message.

    Header entries are free-form string pairs (plus structured security
    blocks added by :mod:`repro.wsa.security`); the body is an operation
    with string parameters — enough for every §4 scenario without a full
    type system.
    """

    operation: str
    parameters: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    message_id: str = field(default_factory=fresh_message_id)
    sender: str = ""
    receiver: str = ""

    def to_element(self) -> Element:
        envelope = Element("Envelope")
        header = Element("Header")
        meta = dict(self.headers)
        meta["MessageID"] = self.message_id
        meta["From"] = self.sender
        meta["To"] = self.receiver
        for name, value in sorted(meta.items()):
            entry = Element("HeaderEntry", {"name": name})
            if value:
                entry.append(value)
            header.append(entry)
        envelope.append(header)
        body = Element("Body")
        operation = Element(self.operation)
        for name, value in sorted(self.parameters.items()):
            parameter = Element("parameter", {"name": name})
            if value:
                parameter.append(value)
            operation.append(parameter)
        body.append(operation)
        envelope.append(body)
        return envelope

    def body_canonical(self) -> str:
        """Canonical serialization of the body — the portion signatures
        cover (headers can legitimately be added in transit)."""
        body = Element("Body")
        operation = Element(self.operation)
        for name, value in sorted(self.parameters.items()):
            parameter = Element("parameter", {"name": name})
            if value:
                parameter.append(value)
            operation.append(parameter)
        body.append(operation)
        return serialize_element(body) + f"|id={self.message_id}"

    def reply(self, operation: str,
              parameters: Mapping[str, str] | None = None) -> "SoapEnvelope":
        return SoapEnvelope(operation, dict(parameters or {}),
                            sender=self.receiver, receiver=self.sender,
                            headers={"InReplyTo": self.message_id})


@dataclass(frozen=True)
class SoapFault:
    """A SOAP fault: code + human-readable reason."""

    code: str
    reason: str

    def raise_(self) -> None:
        raise ServiceFault(self.code, self.reason)


FAULT_ACCESS_DENIED = "env:AccessDenied"
FAULT_BAD_SIGNATURE = "env:BadSignature"
FAULT_REPLAY = "env:Replay"
FAULT_UNKNOWN_OPERATION = "env:UnknownOperation"
FAULT_PRIVACY = "env:PrivacyViolation"
