"""The resilient SOAP client path: retries over the faulty bus.

:class:`ReliableChannel` wraps :class:`~repro.wsa.transport.MessageBus`
with the ``repro.faults`` toolkit: frame checksums on requests, reply
checksum verification, per-call timeouts on the fault clock, capped
seed-jittered retry, and an optional circuit breaker.  Its contract is
the fail-closed invariant the chaos suite enforces: under any bounded
fault plan, :meth:`call` either returns a reply byte-identical to the
fault-free run's reply, or raises a typed error
(:class:`RetryExhausted`, :class:`CircuitOpen`, ...) — it never
returns a garbled or partial reply.

Retries re-send a *fresh copy with the same message id*, so endpoint
replay protection and server-side idempotency keep duplicated
deliveries harmless.
"""

from __future__ import annotations

import copy

from repro.core.errors import CorruptMessage, TransportError
from repro.faults.clock import FaultClock
from repro.faults.resilience import (
    CircuitBreaker,
    RetryPolicy,
    RetryTelemetry,
    call_with_timeout,
    retry_with_backoff,
)
from repro.wsa.soap import SoapEnvelope
from repro.wsa.transport import MessageBus, stamp_checksum, verify_checksum


class ReliableChannel:
    """Retrying, checksum-verifying front end to a message bus."""

    def __init__(self, bus: MessageBus,
                 policy: RetryPolicy | None = None,
                 clock: FaultClock | None = None,
                 timeout_ticks: int | None = None,
                 breaker: CircuitBreaker | None = None) -> None:
        self.bus = bus
        self.policy = policy if policy is not None else RetryPolicy()
        if clock is not None:
            self.clock = clock
        elif bus.faults is not None:
            self.clock = bus.faults.clock
        else:
            self.clock = FaultClock()
        self.timeout_ticks = timeout_ticks
        self.breaker = breaker
        self.telemetry = RetryTelemetry()

    def call(self, envelope: SoapEnvelope) -> SoapEnvelope:
        """Send with retry/timeout/checksum; typed error or clean reply."""
        original = copy.deepcopy(envelope)

        def attempt() -> SoapEnvelope:
            request = stamp_checksum(copy.deepcopy(original))
            reply = self.bus.send(request)
            if not verify_checksum(reply):
                raise CorruptMessage(
                    f"reply to {request.message_id} failed its frame "
                    f"checksum")
            return reply

        def guarded() -> SoapEnvelope:
            if self.timeout_ticks is not None:
                return call_with_timeout(
                    attempt, self.clock, self.timeout_ticks,
                    what=f"call {original.operation!r}")
            return attempt()

        def breakered() -> SoapEnvelope:
            if self.breaker is not None:
                return self.breaker.call(guarded)
            return guarded()

        self.telemetry = RetryTelemetry()
        return retry_with_backoff(
            breakered, self.policy, self.clock,
            key=f"{original.receiver}:{original.message_id}",
            retry_on=(TransportError,),
            telemetry=self.telemetry)
