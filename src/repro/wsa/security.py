"""Message-level security for SOAP (the WS-Security shape the paper's [9]
roadmap sketches): signing, encryption and replay protection.

* :func:`sign_envelope` / :func:`verify_envelope` — RSA signature over the
  canonical body + message id, carried in the header;
* :func:`encrypt_parameters` / :func:`decrypt_parameters` — hybrid
  encryption of selected body parameters for a recipient's public key;
* :class:`ReplayGuard` — message-id freshness window, rejecting replays.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field

from repro.core.errors import AuthenticationError, SecurityError
from repro.crypto.rsa import (
    PrivateKey,
    PublicKey,
    hybrid_decrypt,
    hybrid_encrypt,
    sign,
    verify,
)
from repro.wsa.soap import SoapEnvelope

SIGNATURE_HEADER = "Security.Signature"
SIGNER_HEADER = "Security.Signer"
ENCRYPTED_PREFIX = "enc:"


def sign_envelope(envelope: SoapEnvelope, signer: str,
                  private_key: PrivateKey) -> SoapEnvelope:
    """Attach a signature over the canonical body to the header."""
    signature = sign(private_key, envelope.body_canonical())
    envelope.headers[SIGNATURE_HEADER] = str(signature)
    envelope.headers[SIGNER_HEADER] = signer
    return envelope


def verify_envelope(envelope: SoapEnvelope,
                    public_key: PublicKey) -> str:
    """Verify the body signature; returns the signer name.

    Raises AuthenticationError when the signature is absent, malformed or
    wrong — including when the body was modified after signing.
    """
    signature_text = envelope.headers.get(SIGNATURE_HEADER)
    signer = envelope.headers.get(SIGNER_HEADER, "")
    if signature_text is None:
        raise AuthenticationError("envelope carries no signature")
    try:
        signature = int(signature_text)
    except ValueError:
        raise AuthenticationError("malformed signature header") from None
    if not verify(public_key, envelope.body_canonical(), signature):
        raise AuthenticationError(
            f"envelope signature by {signer!r} does not verify")
    return signer


def encrypt_parameters(envelope: SoapEnvelope, names: list[str],
                       recipient_key: PublicKey,
                       seed: int = 0) -> SoapEnvelope:
    """Encrypt the named body parameters for *recipient_key* in place."""
    for index, name in enumerate(names):
        if name not in envelope.parameters:
            raise SecurityError(f"no parameter {name!r} to encrypt")
        plaintext = envelope.parameters[name].encode("utf-8")
        wrapped, body = hybrid_encrypt(recipient_key, plaintext,
                                       seed=seed + index)
        token = base64.b64encode(body).decode("ascii")
        envelope.parameters[name] = f"{ENCRYPTED_PREFIX}{wrapped:x}:{token}"
    return envelope


def decrypt_parameters(envelope: SoapEnvelope,
                       private_key: PrivateKey) -> SoapEnvelope:
    """Decrypt every encrypted parameter the key can open, in place."""
    for name, value in list(envelope.parameters.items()):
        if not value.startswith(ENCRYPTED_PREFIX):
            continue
        payload = value[len(ENCRYPTED_PREFIX):]
        wrapped_hex, _, token = payload.partition(":")
        body = base64.b64decode(token)
        plaintext = hybrid_decrypt(private_key, int(wrapped_hex, 16), body)
        envelope.parameters[name] = plaintext.decode("utf-8")
    return envelope


def is_encrypted(value: str) -> bool:
    return value.startswith(ENCRYPTED_PREFIX)


@dataclass
class ReplayGuard:
    """Rejects envelopes whose message id was already accepted.

    A bounded window keeps memory finite; ids older than the window
    (by arrival order) are forgotten, matching WS-Security's
    timestamp-window practice without needing wall clocks.
    """

    window: int = 1024
    _seen: dict[str, int] = field(default_factory=dict)
    _tick: int = 0

    def admit(self, envelope: SoapEnvelope) -> None:
        """Raise SecurityError if this message id was seen recently."""
        message_id = envelope.message_id
        if message_id in self._seen:
            raise SecurityError(
                f"replayed message {message_id!r} rejected")
        self._tick += 1
        self._seen[message_id] = self._tick
        if len(self._seen) > self.window:
            horizon = self._tick - self.window
            self._seen = {m: t for m, t in self._seen.items()
                          if t > horizon}
