"""Shared gateway telemetry: stage counters + latency percentiles.

All serving front ends — the threaded
:class:`~repro.scale.gateway.RequestGateway`, the asyncio
:class:`~repro.gateway.core.AsyncRequestGateway`, and the multi-process
:class:`~repro.multicore.dispatcher.MulticoreGateway` — record into the
same :class:`GatewayStats`, so BENCH_scale, BENCH_gateway and
BENCH_multicore report the same shape: per-stage counters plus
:class:`LatencyHistogram` percentiles (p50/p99/p999), not just
throughput.

The histogram is two-tier log-linear: each power-of-two octave from the
1µs floor is split into 16 linear sub-buckets, so relative error is
bounded at ~6% everywhere instead of the 2x a pure log2 scheme gives.
Sub-millisecond latencies — where the async gateway actually lives —
resolve into distinct buckets rather than collapsing into one.
Recording is O(log buckets) with no allocation; percentile reads walk
the cumulative counts and report the bucket's upper bound — a
deliberate overestimate, so a reported p99 is a bound the real p99
respects.  That makes it safe to share between worker threads under the
stats lock and cheap enough to charge on *every* request.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field

#: Smallest resolvable latency (seconds): one microsecond.
_FLOOR_S = 1e-6
#: Linear sub-buckets per power-of-two octave.  16 keeps the worst-case
#: relative overestimate at 1/16 ≈ 6.25% of the value.
_SUBDIV = 16
#: Octaves of doubling above the floor; 35 doublings from 1µs tops out
#: above an hour, which no sane request survives.
_OCTAVES = 35
#: One floor bucket plus 16 sub-buckets per octave.
_BUCKETS = 1 + _OCTAVES * _SUBDIV
#: Upper bounds per bucket.  Bucket 0 is the floor itself; octave *o*
#: sub-bucket *s* tops out at ``floor * 2**o * (1 + (s+1)/16)``.  The
#: final bound is exactly ``floor * 2**35`` (the s=15 term doubles the
#: octave base, and power-of-two scaling is exact in floats).
_BOUNDS = tuple([_FLOOR_S] + [
    _FLOOR_S * 2.0 ** octave * (1.0 + (sub + 1) / _SUBDIV)
    for octave in range(_OCTAVES) for sub in range(_SUBDIV)])


class LatencyHistogram:
    """Fixed-size log-linear histogram of latencies in seconds.

    Two tiers: the octave (power of two above the 1µs floor) picks the
    coarse range, 16 linear sub-buckets inside each octave give ~6%
    resolution.  Values below the floor land in bucket 0, values beyond
    the last bucket saturate into it.  Percentile reads return the
    covering bucket's upper bound, so the estimate errs high (a
    conservative SLO check), never low.
    """

    __slots__ = ("_counts", "_count", "_sum")

    def __init__(self) -> None:
        self._counts = [0] * _BUCKETS
        self._count = 0
        self._sum = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0.0:
            seconds = 0.0
        index = min(bisect_left(_BOUNDS, seconds), _BUCKETS - 1)
        self._counts[index] += 1
        self._count += 1
        self._sum += seconds

    @property
    def count(self) -> int:
        return self._count

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the *q*-quantile (q in
        [0, 1]); 0.0 when nothing was recorded."""
        if not self._count:
            return 0.0
        target = q * self._count
        seen = 0
        for index in range(_BUCKETS):
            seen += self._counts[index]
            if seen >= target:
                return _BOUNDS[index]
        return _BOUNDS[-1]

    def merge(self, other: "LatencyHistogram") -> None:
        for index in range(_BUCKETS):
            self._counts[index] += other._counts[index]
        self._count += other._count
        self._sum += other._sum

    def snapshot(self) -> dict[str, float | int]:
        return {
            "count": self._count,
            "mean_s": round(self.mean(), 6),
            "p50_s": round(self.percentile(0.50), 6),
            "p99_s": round(self.percentile(0.99), 6),
            "p999_s": round(self.percentile(0.999), 6),
        }


@dataclass
class GatewayStats:
    """Per-stage counters + latency percentiles; ``snapshot()`` is what
    the benches record.  Shared by every serving front end."""

    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    queue_wait_s: float = 0.0
    evaluate_s: float = 0.0
    snapshot_reads: int = 0
    writes: int = 0
    epochs_advanced: int = 0
    streams: int = 0
    stream_chunks: int = 0
    replica_reads: int = 0
    replica_writes: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram,
                                      repr=False)
    stages: dict[str, LatencyHistogram] = field(default_factory=dict,
                                                repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self.latency.record(seconds)

    def stage(self, name: str) -> LatencyHistogram:
        """Histogram for a named pipeline stage, created on first use.
        Not locked — callers already inside ``with stats._lock`` blocks
        use this directly; external callers use :meth:`record_stage`."""
        histogram = self.stages.get(name)
        if histogram is None:
            histogram = self.stages[name] = LatencyHistogram()
        return histogram

    def record_stage(self, name: str, seconds: float) -> None:
        with self._lock:
            self.stage(name).record(seconds)

    def snapshot(self) -> dict[str, int | float]:
        with self._lock:
            out: dict[str, int | float] = {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "shed": self.shed,
                "completed": self.completed,
                "failed": self.failed,
                "batches": self.batches,
                "queue_wait_s": round(self.queue_wait_s, 6),
                "evaluate_s": round(self.evaluate_s, 6),
                "snapshot_reads": self.snapshot_reads,
                "writes": self.writes,
                "epochs_advanced": self.epochs_advanced,
                "streams": self.streams,
                "stream_chunks": self.stream_chunks,
                "replica_reads": self.replica_reads,
                "replica_writes": self.replica_writes,
            }
            out.update({f"latency_{k}": v
                        for k, v in self.latency.snapshot().items()})
            # Stage keys appear only once a stage has recorded, so a
            # fresh snapshot's key set stays pinned.
            for name in sorted(self.stages):
                out.update({f"stage_{name}_{k}": v
                            for k, v in self.stages[name].snapshot().items()})
            return out
