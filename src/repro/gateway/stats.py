"""Shared gateway telemetry: stage counters + latency percentiles.

Both serving front ends — the threaded
:class:`~repro.scale.gateway.RequestGateway` and the asyncio
:class:`~repro.gateway.core.AsyncRequestGateway` — record into the same
:class:`GatewayStats`, so BENCH_scale and BENCH_gateway report the same
shape: per-stage counters plus a :class:`LatencyHistogram` giving
p50/p99/p999 end-to-end request latency, not just throughput.

The histogram is log-bucketed (powers of ~2 from 1µs up): recording is
O(1) with no allocation, percentiles are read by walking the cumulative
counts and reporting the bucket's upper bound — a deliberate
overestimate, so a reported p99 is a bound the real p99 respects.  That
makes it safe to share between worker threads under the stats lock and
cheap enough to charge on *every* request.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field

#: Smallest resolvable latency (seconds): one microsecond.
_FLOOR_S = 1e-6
#: Each bucket doubles the previous one's upper bound; 36 doublings
#: from 1µs tops out above an hour, which no sane request survives.
_BUCKETS = 36
#: Upper bounds per bucket (power-of-two scaling is exact in floats,
#: so these equal the doubling loop's values bit for bit).
_BOUNDS = tuple(_FLOOR_S * 2.0 ** i for i in range(_BUCKETS))


class LatencyHistogram:
    """Fixed-size log2 histogram of latencies in seconds.

    Bucket *i* covers ``(2**(i-1)µs, 2**i µs]``; values below the floor
    land in bucket 0, values beyond the last bucket saturate into it.
    Percentile reads return the covering bucket's upper bound, so the
    estimate errs high (a conservative SLO check), never low.
    """

    __slots__ = ("_counts", "_count", "_sum")

    def __init__(self) -> None:
        self._counts = [0] * _BUCKETS
        self._count = 0
        self._sum = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0.0:
            seconds = 0.0
        index = min(bisect_left(_BOUNDS, seconds), _BUCKETS - 1)
        self._counts[index] += 1
        self._count += 1
        self._sum += seconds

    @property
    def count(self) -> int:
        return self._count

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the *q*-quantile (q in
        [0, 1]); 0.0 when nothing was recorded."""
        if not self._count:
            return 0.0
        target = q * self._count
        seen = 0
        bound = _FLOOR_S
        for index in range(_BUCKETS):
            seen += self._counts[index]
            if seen >= target:
                return bound
            bound *= 2.0
        return bound

    def merge(self, other: "LatencyHistogram") -> None:
        for index in range(_BUCKETS):
            self._counts[index] += other._counts[index]
        self._count += other._count
        self._sum += other._sum

    def snapshot(self) -> dict[str, float | int]:
        return {
            "count": self._count,
            "mean_s": round(self.mean(), 6),
            "p50_s": round(self.percentile(0.50), 6),
            "p99_s": round(self.percentile(0.99), 6),
            "p999_s": round(self.percentile(0.999), 6),
        }


@dataclass
class GatewayStats:
    """Per-stage counters + latency percentiles; ``snapshot()`` is what
    the benches record.  Shared by the threaded and asyncio gateways."""

    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    queue_wait_s: float = 0.0
    evaluate_s: float = 0.0
    snapshot_reads: int = 0
    writes: int = 0
    epochs_advanced: int = 0
    streams: int = 0
    stream_chunks: int = 0
    replica_reads: int = 0
    replica_writes: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram,
                                      repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self.latency.record(seconds)

    def snapshot(self) -> dict[str, int | float]:
        with self._lock:
            out: dict[str, int | float] = {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "shed": self.shed,
                "completed": self.completed,
                "failed": self.failed,
                "batches": self.batches,
                "queue_wait_s": round(self.queue_wait_s, 6),
                "evaluate_s": round(self.evaluate_s, 6),
                "snapshot_reads": self.snapshot_reads,
                "writes": self.writes,
                "epochs_advanced": self.epochs_advanced,
                "streams": self.streams,
                "stream_chunks": self.stream_chunks,
                "replica_reads": self.replica_reads,
                "replica_writes": self.replica_writes,
            }
            out.update({f"latency_{k}": v
                        for k, v in self.latency.snapshot().items()})
            return out
