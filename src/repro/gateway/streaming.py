"""Chunked dissemination: async serialization over frozen snapshots.

A streaming response must satisfy the same contract as the serial
serializer — concatenating every chunk yields *byte-identical* output
to :meth:`repro.snap.intern.InternPool.serialize` (itself proven
byte-identical to :func:`repro.xmldb.serializer.serialize_element`) —
while never holding the event loop for the whole document.  The
generator walks the frozen tree iteratively; whenever it reaches a
subtree whose canonical bytes are already interned (shared by
reference across epochs, so the cache key is object identity) it emits
the cached fragment verbatim instead of descending, which is what
makes repeat streams of unchanged documents a sequence of dictionary
hits.  Pieces accumulate into ``chunk_size``-character chunks; each
``yield`` is a suspension point, so writers can publish epochs between
chunks while the reader's pinned epoch keeps its snapshot alive
(property-tested in ``tests/property``).

The functions are pure with respect to the pool: they consult the
fragment cache but never populate it — a stream is a read path, and
interning stays the serializer's job.
"""

from __future__ import annotations

from typing import AsyncIterator, Iterator

from repro.snap.frozen import FrozenDocument, FrozenElement
from repro.xmldb.serializer import escape_attribute, escape_text

#: Default chunk size (characters) — small enough to interleave with
#: writers, large enough that per-chunk overhead stays negligible.
DEFAULT_CHUNK_SIZE = 4096


def serialize_pieces(node: FrozenElement,
                     pool=None) -> Iterator[str]:
    """The serialization of *node* as a piece stream.

    Emits the exact pieces whose concatenation is the canonical
    serialization: interned fragments for already-seen subtrees, and
    open-tag / text / close-tag pieces where the walk must descend.
    *pool* is anything with ``cached_fragment(node) -> str | None``
    (an :class:`~repro.snap.intern.InternPool`), or ``None`` to
    serialize without fragment reuse.
    """
    stack: list[tuple[str, object]] = [("open", node)]
    while stack:
        op, current = stack.pop()
        if op == "close":
            yield f"</{current.tag}>"
            continue
        if op == "text":
            yield escape_text(current)
            continue
        if pool is not None:
            cached = pool.cached_fragment(current)
            if cached is not None:
                yield cached
                continue
        attrs = "".join(
            f' {name}="{escape_attribute(value)}"'
            for name, value in sorted(current.attributes.items()))
        if not current.children:
            yield f"<{current.tag}{attrs}/>"
            continue
        yield f"<{current.tag}{attrs}>"
        stack.append(("close", current))
        for child in reversed(current.children):
            stack.append(("text" if isinstance(child, str) else "open",
                          child))


async def stream_element(node: FrozenElement, pool=None,
                         chunk_size: int = DEFAULT_CHUNK_SIZE
                         ) -> AsyncIterator[str]:
    """Serialize *node* as an async stream of ~*chunk_size* chunks.

    ``"".join([chunk async for chunk in stream_element(n, pool)])`` is
    byte-identical to ``pool.serialize(n)``; every yield suspends, so
    the event loop interleaves other work between chunks.
    """
    buffer: list[str] = []
    buffered = 0
    for piece in serialize_pieces(node, pool):
        buffer.append(piece)
        buffered += len(piece)
        if buffered >= chunk_size:
            yield "".join(buffer)
            buffer.clear()
            buffered = 0
    if buffer:
        yield "".join(buffer)


async def stream_document(document: FrozenDocument, pool=None,
                          chunk_size: int = DEFAULT_CHUNK_SIZE
                          ) -> AsyncIterator[str]:
    """Async chunk stream of a frozen document's canonical bytes."""
    async for chunk in stream_element(document.root, pool,
                                      chunk_size=chunk_size):
        yield chunk


async def collect(chunks: AsyncIterator[str]) -> str:
    """Concatenate an async chunk stream (tests and oracles)."""
    parts: list[str] = []
    async for chunk in chunks:
        parts.append(chunk)
    return "".join(parts)
