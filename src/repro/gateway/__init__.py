"""repro.gateway: the asyncio streaming gateway (A10).

The serving tier rebuilt around an event loop: non-blocking
multi-tenant admission (token buckets + deficit-round-robin fairness +
queue-depth watermarks), per-tick batched authorization against
compiled epoch snapshots, and chunked dissemination streams built from
interned snapshot fragments.  The threaded
:class:`~repro.scale.gateway.RequestGateway` remains as the
compatibility shim; both record into the shared
:class:`~repro.gateway.stats.GatewayStats`.

Equivalence contracts carried over from the threaded gateway and
re-asserted by the gateway bench oracles and chaos battery:

* every decision equals the serial evaluator's (sharding + compilation
  are answer-preserving);
* every streamed document's chunk concatenation is byte-identical to
  the serial serializer's output;
* under injected faults every response is byte-identical to the
  fault-free run or a *typed* transport error — never a silently
  wrong grant, never garbled bytes.
"""

# Import order is load-bearing: ``stats`` must load before ``core`` —
# repro.scale.gateway imports it from here while this package is still
# initializing whenever repro.scale (or repro.snap, via scale.batch)
# is the import entry point.
from repro.gateway.stats import GatewayStats, LatencyHistogram
from repro.gateway.admission import (
    AdmissionController,
    DeficitRoundRobin,
    ManualClock,
    TenantConfig,
    TokenBucket,
)
from repro.gateway.engine import EpochalShardRouter
from repro.gateway.streaming import (
    DEFAULT_CHUNK_SIZE,
    collect,
    serialize_pieces,
    stream_document,
    stream_element,
)
from repro.gateway.core import AsyncRequestGateway
from repro.gateway.resilience import call_with_deadline, retry_async

__all__ = [
    "AdmissionController",
    "AsyncRequestGateway",
    "DEFAULT_CHUNK_SIZE",
    "DeficitRoundRobin",
    "EpochalShardRouter",
    "GatewayStats",
    "LatencyHistogram",
    "ManualClock",
    "ReplicaRouter",
    "ReplicaSession",
    "Request",
    "TenantConfig",
    "TokenBucket",
    "call_with_deadline",
    "collect",
    "retry_async",
    "serialize_pieces",
    "stream_document",
    "stream_element",
]


def __getattr__(name: str):
    # ``Request`` still lives in repro.scale.gateway (its historical
    # home; the async gateway duck-types it).  Re-exported lazily —
    # a module-level import would cycle whenever repro.scale is the
    # import entry point.
    if name == "Request":
        from repro.scale.gateway import Request
        return Request
    # The replica router lives in repro.replica; lazily re-exported so
    # importing the gateway package does not pull the replication
    # stack (and its faults/scale dependencies) until it is used.
    if name in ("ReplicaRouter", "ReplicaSession"):
        from repro.replica.router import ReplicaRouter, ReplicaSession
        return {"ReplicaRouter": ReplicaRouter,
                "ReplicaSession": ReplicaSession}[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
