"""Sharded, epoch-published, *compiled* authorization for the gateway.

:class:`EpochalShardRouter` composes the three layers the async
gateway's pipeline rides on:

* routing — the same literal-head consistent-hash placement as
  :class:`~repro.scale.engine.ShardedPolicyEngine` (glob-headed
  policies broadcast to every shard, a path is decided entirely by its
  head's owner), so ``shard_for_path`` gives the gateway its per-shard
  fault sites and batch groups;
* epochs — each shard is an
  :class:`~repro.snap.policy.EpochalPolicyEngine`: reads pin a
  published snapshot, writes freeze-and-publish a new epoch, so the
  event loop never blocks on a writer lock;
* compilation — with ``compile_policies=True`` (the default) every
  published shard snapshot carries a
  :class:`~repro.compile.engine.CompiledPolicyEngine`: admission
  batches resolve against flat O(1) decision tables, with the
  interpreter transparently covering residual (content-dependent)
  cells.

Answers are identical to a monolithic serial evaluator over the same
policies — the sharding equivalence is the scale layer's property, the
compiled-table equivalence is the compile layer's verified theorem, and
the gateway chaos battery re-asserts the composition end to end.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.audit import AuditLog
from repro.core.evaluator import (
    ConflictResolution,
    Decision,
    DefaultDecision,
)
from repro.core.objects import ResourcePath
from repro.core.policy import Action, Policy
from repro.core.subjects import Subject
from repro.perf.cache import MISS, LRUCache
from repro.scale.engine import is_broadcast, _pattern_head
from repro.scale.router import ConsistentHashRouter


class EpochalShardRouter:
    """N compiled epochal policy engines behind one gateway surface."""

    def __init__(self, shard_count: int = 4,
                 resolution: ConflictResolution =
                 ConflictResolution.DENY_OVERRIDES,
                 default: DefaultDecision = DefaultDecision.CLOSED,
                 audit: AuditLog | None = None,
                 compile_policies: bool = True) -> None:
        # Imported here, not at module top: repro.snap.policy itself
        # imports the scale layer, whose gateway imports this package —
        # a module-level import would deadlock that cycle when the snap
        # package is the entry point.
        from repro.snap.policy import EpochalPolicyEngine

        self.router = ConsistentHashRouter(shard_count)
        self.shard_count = shard_count
        self.compile_policies = compile_policies
        self._engines = tuple(
            EpochalPolicyEngine(resolution=resolution, default=default,
                                audit=audit,
                                compile_policies=compile_policies)
            for _ in range(shard_count))
        # Placement depends only on the ring, which is fixed at
        # construction — path->shard answers never go stale, so a
        # plain LRU memo elides the sha256 ring walk on hot paths.
        self._shard_memo = LRUCache(maxsize=65536)

    # -- routing ----------------------------------------------------------

    def shard_for_path(self, path: ResourcePath | str) -> int:
        text = str(path)
        shard = self._shard_memo.get(text)
        if shard is MISS:
            parsed = ResourcePath(path)
            head = parsed.segments[0] if parsed.segments else ""
            shard = self.router.shard_for(head)
            self._shard_memo.put(text, shard)
        return shard

    def shards_for_policy(self, policy: Policy) -> tuple[int, ...]:
        if is_broadcast(policy):
            return tuple(range(self.shard_count))
        return (self.router.shard_for(_pattern_head(policy)),)

    def engine(self, shard: int):
        return self._engines[shard]

    # -- policy administration (writer side) ------------------------------

    def add(self, policy: Policy) -> Policy:
        for shard in self.shards_for_policy(policy):
            self._engines[shard].add_policy(policy)
        return policy

    def load(self, policies: Iterable[Policy]) -> int:
        """Bulk-load: route every policy, publish one epoch per shard.

        Publication compiles, so seeding N policies through
        :meth:`add` would compile each shard N times; this compiles
        each shard exactly once.
        """
        per_shard: list[list[Policy]] = [[] for _ in
                                         range(self.shard_count)]
        count = 0
        for policy in policies:
            count += 1
            for shard in self.shards_for_policy(policy):
                per_shard[shard].append(policy)
        for shard, batch in enumerate(per_shard):
            self._engines[shard].add_policies(batch)
        return count

    def remove(self, policy: Policy) -> None:
        for shard in self.shards_for_policy(policy):
            self._engines[shard].remove_policy(policy)

    def policies(self) -> Iterator[Policy]:
        seen: set[int] = set()
        collected: list[Policy] = []
        for engine in self._engines:
            for policy in engine.base:
                if policy.policy_id not in seen:
                    seen.add(policy.policy_id)
                    collected.append(policy)
        return iter(sorted(collected, key=lambda p: p.policy_id))

    def __len__(self) -> int:
        return sum(1 for _ in self.policies())

    # -- evaluation (reader side) -----------------------------------------

    def decide(self, subject: Subject, action: Action,
               path: ResourcePath | str,
               payload: object = None) -> Decision:
        shard = self.shard_for_path(path)
        return self._engines[shard].decide(subject, action, path, payload)

    def decide_batch(self, requests: Sequence[tuple]) -> list[Decision]:
        """Partition by shard, decide each sub-batch against that
        shard's pinned snapshot, reassemble in input order."""
        by_shard: dict[int, list[int]] = {}
        for index, request in enumerate(requests):
            by_shard.setdefault(
                self.shard_for_path(request[2]), []).append(index)
        results: list[Decision | None] = [None] * len(requests)
        for shard in sorted(by_shard):
            indices = by_shard[shard]
            decisions = self._engines[shard].decide_batch(
                [requests[i] for i in indices])
            for index, decision in zip(indices, decisions):
                results[index] = decision
        return [d for d in results if d is not None]

    # -- telemetry --------------------------------------------------------

    def epoch_stats(self) -> list[dict[str, int]]:
        return [engine.epochs.stats.snapshot()
                for engine in self._engines]

    @classmethod
    def from_policies(cls, policies: Iterable[Policy],
                      shard_count: int = 4,
                      **kwargs) -> "EpochalShardRouter":
        router = cls(shard_count=shard_count, **kwargs)
        router.load(policies)
        return router
