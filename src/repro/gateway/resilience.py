"""Async resilience: retry and deadlines that never block the loop.

The sync toolkit in :mod:`repro.faults.resilience` "sleeps" by charging
the :class:`~repro.faults.clock.FaultClock` — logical ticks, no wall
time.  These wrappers keep that determinism on an event loop: a backoff
charges the same seed-jittered ticks as the sync version *and* yields
control (``await asyncio.sleep(0)``), so concurrent tenants interleave
at exactly the points a real server would context-switch, while a chaos
run with the same seed still produces the same tick sequence on any
machine.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, TypeVar

from repro.core.errors import CallTimeout, RetryExhausted, TransportError
from repro.faults.clock import FaultClock
from repro.faults.resilience import RetryPolicy, RetryTelemetry

T = TypeVar("T")


async def retry_async(operation: Callable[[], Awaitable[T]],
                      policy: RetryPolicy, clock: FaultClock,
                      key: str = "",
                      retry_on: tuple[type[BaseException], ...]
                      = (TransportError,),
                      telemetry: RetryTelemetry | None = None) -> T:
    """Async :func:`~repro.faults.resilience.retry_with_backoff`.

    Identical semantics — non-retryable errors propagate immediately,
    exhaustion raises :class:`~repro.core.errors.RetryExhausted`
    wrapping the last error — but each backoff charges the fault clock
    and yields the loop instead of blocking a thread.
    """
    last_error: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        if telemetry is not None:
            telemetry.attempts = attempt
        try:
            return await operation()
        except retry_on as exc:
            last_error = exc
            if telemetry is not None:
                telemetry.errors.append(f"{type(exc).__name__}: {exc}")
            if attempt == policy.max_attempts:
                break
            pause = policy.delay_before(attempt, key)
            clock.sleep(pause)
            if telemetry is not None:
                telemetry.backoff_ticks += pause
            await asyncio.sleep(0)
    assert last_error is not None
    raise RetryExhausted(policy.max_attempts, last_error)


async def call_with_deadline(operation: Callable[[], Awaitable[T]],
                             clock: FaultClock, timeout_ticks: int,
                             what: str = "call") -> T:
    """Run *operation* under a fault-clock deadline.

    Delay faults charge the clock while the awaitable runs; if they
    charged more than *timeout_ticks*, the (already computed) late
    result is discarded and :class:`~repro.core.errors.CallTimeout`
    raised — fail closed, deterministically.
    """
    deadline = clock.deadline(timeout_ticks)
    result = await operation()
    if deadline.expired():
        raise CallTimeout(
            f"{what} exceeded {timeout_ticks} ticks "
            f"(overran by {clock.now() - deadline.expires_at})")
    return result
